//! Experiment sanity: the paper's qualitative claims must hold on every
//! run of the reproduction harness (exact numbers live in EXPERIMENTS.md).

use aipow::netsim::fig2::{run_paper_policies, Fig2Config};
use aipow::netsim::profile::SolverProfile;
use aipow::netsim::scenario::{self, AttackStrategy, DdosConfig};
use aipow::prelude::*;

/// Figure 2, claim C1: on the calibrated testbed the cheapest point
/// (Policy 1, reputation 0 → 1-difficult) sits at ≈ 31 ms.
#[test]
fn f2_anchor_31ms() {
    let table = run_paper_policies(&Fig2Config::default());
    let anchor = table.median_ms("policy1", 0).unwrap();
    assert!(
        (25.0..40.0).contains(&anchor),
        "1-difficult anchor {anchor:.1} ms, paper says 31 ms"
    );
}

/// Figure 2: all three policies are (weakly) monotone from band 0 to 10
/// and strictly increasing over the top half where difficulty dominates
/// the fixed overhead.
#[test]
fn f2_monotone_latency() {
    let table = run_paper_policies(&Fig2Config {
        trials: 200, // tighter medians than the paper's 30 for a CI check
        ..Default::default()
    });
    for policy in ["policy1", "policy2", "policy3"] {
        for band in 5..10u8 {
            let lo = table.median_ms(policy, band).unwrap();
            let hi = table.median_ms(policy, band + 1).unwrap();
            assert!(
                hi > lo * 0.95,
                "{policy}: band {band}→{} regressed {lo:.1}→{hi:.1}",
                band + 1
            );
        }
        let overall_lo = table.median_ms(policy, 0).unwrap();
        let overall_hi = table.median_ms(policy, 10).unwrap();
        assert!(overall_hi > overall_lo, "{policy} not increasing overall");
    }
}

/// Claims C3 + C4: Policy 1 grows mildly, Policy 2 sharply, Policy 3's
/// rate of increase lies between them. The C4 ordering is a mean-scale
/// property: Policy 3's symmetric ±ϵ difficulty draws cost asymmetrically
/// (exponential in bits), lifting its mean above Policy 1's line while the
/// median stays on it (EXPERIMENTS.md §F2 discusses the nuance).
#[test]
fn f2_policy_ordering() {
    let table = run_paper_policies(&Fig2Config {
        trials: 300,
        ..Default::default()
    });
    let s1 = table.mean_slope_ms_per_band("policy1").unwrap();
    let s2 = table.mean_slope_ms_per_band("policy2").unwrap();
    let s3 = table.mean_slope_ms_per_band("policy3").unwrap();
    assert!(s1 < s3, "policy3 slope {s3:.1} not above policy1 {s1:.1}");
    assert!(s3 < s2, "policy3 slope {s3:.1} not below policy2 {s2:.1}");
    assert!(s2 > 5.0 * s1, "policy2 must dominate policy1");
}

/// The shape survives a change of hardware: the native profile shrinks the
/// scale (~1000×) but preserves ordering and growth factors.
#[test]
fn f2_shape_invariant_under_profile() {
    let calibrated = run_paper_policies(&Fig2Config {
        trials: 100,
        ..Default::default()
    });
    let native = run_paper_policies(&Fig2Config {
        trials: 100,
        profile: SolverProfile::native(20_000_000.0),
        ..Default::default()
    });
    // Growth factors are dimensionless; policy2's must dominate policy1's
    // in both worlds. (Native growth is larger because the fixed overhead
    // shrinks relative to solve time.)
    for table in [&calibrated, &native] {
        let g1 = table.growth_factor("policy1").unwrap();
        let g2 = table.growth_factor("policy2").unwrap();
        assert!(g2 > g1, "ordering violated: g1={g1:.1} g2={g2:.1}");
    }
    // And the absolute scale differs by orders of magnitude.
    let cal = calibrated.median_ms("policy2", 10).unwrap();
    let nat = native.median_ms("policy2", 10).unwrap();
    assert!(cal / nat > 100.0, "calibrated {cal:.1} vs native {nat:.4}");
}

/// Claim C5: under attack, enabling the framework multiplies benign
/// goodput and suppresses bot goodput.
#[test]
fn c5_throttling_holds() {
    let base = DdosConfig {
        duration_s: 30.0,
        ..Default::default()
    };
    let policy = LinearPolicy::policy2();
    let undefended = scenario::run(
        &policy,
        &DdosConfig {
            pow_enabled: false,
            ..base
        },
    );
    let defended = scenario::run(&policy, &base);

    assert!(defended.benign_goodput_rps > 2.0 * undefended.benign_goodput_rps);
    assert!(defended.bot_goodput_rps < undefended.bot_goodput_rps);
    assert!(defended.benign_share > undefended.benign_share);
}

/// Claim C5, flood variant: attackers who refuse to solve get nothing and
/// cost almost nothing.
#[test]
fn c5_flood_attackers_starve() {
    let outcome = scenario::run(
        &LinearPolicy::policy2(),
        &DdosConfig {
            duration_s: 30.0,
            strategy: AttackStrategy::Flood,
            ..Default::default()
        },
    );
    assert_eq!(outcome.bot_granted, 0);
    assert!(outcome.server_utilization < 0.6);
    assert!(outcome.benign_latency_ms.median < 100.0);
}

/// Ablation A2: wider ϵ widens the latency spread without moving the
/// center much.
#[test]
fn a2_epsilon_widens_interval() {
    let score = ReputationScore::new(5.0).unwrap();
    let narrow = ErrorRangePolicy::new(0.5, 3);
    let wide = ErrorRangePolicy::new(3.0, 3);
    let (nlo, nhi) = narrow.interval(score);
    let (wlo, whi) = wide.interval(score);
    assert!(whi - wlo > nhi - nlo);
    // Both intervals bracket the deterministic mapping d=6.
    assert!((nlo..=nhi).contains(&6));
    assert!((wlo..=whi).contains(&6));
}

/// Deterministic reproduction: the committed experiment artifacts can be
/// regenerated bit-for-bit.
#[test]
fn experiments_are_deterministic() {
    let a = run_paper_policies(&Fig2Config::default());
    let b = run_paper_policies(&Fig2Config::default());
    assert_eq!(a, b);

    let config = DdosConfig {
        duration_s: 10.0,
        ..Default::default()
    };
    let p = LinearPolicy::policy2();
    assert_eq!(scenario::run(&p, &config), scenario::run(&p, &config));
}
