//! Cross-crate integration: the full admission pipeline with the real
//! DAbR model, the paper's three policies, and live metrics/audit/ledger.

use aipow::framework::FrameworkBuilder;
use aipow::prelude::*;
use aipow::reputation::eval;
use aipow::reputation::synth::ClassLabel;
use std::net::IpAddr;
use std::sync::Arc;

fn parse_ip(s: &str) -> IpAddr {
    s.parse().expect("valid test ip")
}

/// Builds a framework around a freshly trained DAbR model; returns the
/// framework plus one benign and one malicious test feature vector.
fn dabr_framework(policy: impl Policy + 'static) -> (Framework, FeatureVector, FeatureVector) {
    let dataset = DatasetSpec::default().with_seed(77).generate();
    let (train, test) = dataset.split(0.8, 77);
    let model = DabrModel::fit(&train, &Default::default());

    // Pick unambiguous representatives so the test is stable: the most
    // benign-scored benign sample and the most malicious-scored bot.
    let mut benign = (f64::INFINITY, FeatureVector::zeros());
    let mut hostile = (f64::NEG_INFINITY, FeatureVector::zeros());
    for s in test.samples() {
        let score = model.score(&s.features).value();
        if s.label == ClassLabel::Benign && score < benign.0 {
            benign = (score, s.features);
        }
        if s.label == ClassLabel::Malicious && score > hostile.0 {
            hostile = (score, s.features);
        }
    }

    let framework = FrameworkBuilder::new()
        .master_key([0x55; 32])
        .model(model)
        .policy(policy)
        .build()
        .expect("valid framework");
    (framework, benign.1, hostile.1)
}

#[test]
fn dabr_driven_difficulties_order_clients() {
    let (framework, benign, hostile) = dabr_framework(LinearPolicy::policy2());
    let benign_issued = framework
        .handle_request(parse_ip("10.0.0.1"), &benign)
        .challenge()
        .unwrap();
    let hostile_issued = framework
        .handle_request(parse_ip("10.0.0.2"), &hostile)
        .challenge()
        .unwrap();
    assert!(
        hostile_issued.difficulty.bits() >= benign_issued.difficulty.bits() + 4,
        "benign d={} hostile d={}",
        benign_issued.difficulty.bits(),
        hostile_issued.difficulty.bits()
    );
}

#[test]
fn end_to_end_with_each_paper_policy() {
    let policies: Vec<Box<dyn Policy>> = vec![
        Box::new(LinearPolicy::policy1()),
        Box::new(LinearPolicy::policy2()),
        Box::new(ErrorRangePolicy::new(2.0, 5)),
    ];
    for policy in policies {
        let name = policy.name().to_string();
        let (framework, benign, _) = dabr_framework(policy);
        let ip = parse_ip("10.1.0.1");
        let issued = framework.handle_request(ip, &benign).challenge().unwrap();
        let report = solve(&issued.challenge, ip, &SolverOptions::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        framework
            .handle_solution(&report.solution, ip)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let snap = framework.metrics().snapshot();
        assert_eq!(snap.solutions_accepted, 1, "{name}");
    }
}

#[test]
fn hostile_clients_accumulate_more_cost() {
    let (framework, benign, hostile) = dabr_framework(LinearPolicy::policy2());
    let benign_ip = parse_ip("10.2.0.1");
    let hostile_ip = parse_ip("10.2.0.2");

    for (ip, features) in [(benign_ip, &benign), (hostile_ip, &hostile)] {
        for _ in 0..3 {
            let issued = framework.handle_request(ip, features).challenge().unwrap();
            let report = solve(&issued.challenge, ip, &SolverOptions::default()).unwrap();
            framework.handle_solution(&report.solution, ip).unwrap();
        }
    }

    let ledger = framework.ledger();
    assert!(
        ledger.total(hostile_ip) > 10.0 * ledger.total(benign_ip),
        "hostile cost {} vs benign cost {}",
        ledger.total(hostile_ip),
        ledger.total(benign_ip)
    );
    // The hostile client tops the ledger.
    assert_eq!(ledger.top(1)[0].0, hostile_ip);
}

#[test]
fn audit_log_tells_the_whole_story() {
    let (framework, benign, _) = dabr_framework(LinearPolicy::policy1());
    let ip = parse_ip("10.3.0.1");
    let issued = framework.handle_request(ip, &benign).challenge().unwrap();
    let report = solve(&issued.challenge, ip, &SolverOptions::default()).unwrap();
    framework.handle_solution(&report.solution, ip).unwrap();
    // Replay it: rejected and audited.
    let _ = framework.handle_solution(&report.solution, ip);

    let events = framework.audit().snapshot();
    assert_eq!(events.len(), 3);
    use aipow::framework::AuditKind;
    assert!(matches!(events[0].kind, AuditKind::SolutionRejected { .. }));
    assert!(matches!(events[1].kind, AuditKind::SolutionAccepted { .. }));
    assert!(matches!(events[2].kind, AuditKind::ChallengeIssued { .. }));
}

#[test]
fn policy3_uses_measured_epsilon() {
    // The intended deployment loop: estimate ϵ on held-out data, feed it
    // to Policy 3, and verify issued difficulties stay inside the paper's
    // interval for a known score.
    let dataset = DatasetSpec::default().with_seed(31).generate();
    let (train, test) = dataset.split(0.8, 31);
    let model = DabrModel::fit(&train, &Default::default());
    let epsilon = eval::estimate_epsilon(&model, &test);
    assert!(epsilon > 0.0);

    let policy = ErrorRangePolicy::from_estimated_epsilon(epsilon, 8);
    let score = ReputationScore::new(6.0).unwrap();
    let (lo, hi) = policy.interval(score);
    let ctx = aipow::policy::PolicyContext::default();
    for _ in 0..100 {
        let d = policy.difficulty_for(score, &ctx).bits();
        assert!((lo..=hi).contains(&d));
    }
}

#[test]
fn framework_is_shareable_across_threads() {
    let (framework, benign, _) = dabr_framework(LinearPolicy::policy1());
    let framework = Arc::new(framework);
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let framework = Arc::clone(&framework);
            std::thread::spawn(move || {
                let ip = parse_ip(&format!("10.4.0.{}", t + 1));
                for _ in 0..5 {
                    let issued = framework.handle_request(ip, &benign).challenge().unwrap();
                    let report = solve(&issued.challenge, ip, &SolverOptions::default()).unwrap();
                    framework.handle_solution(&report.solution, ip).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(framework.metrics().snapshot().solutions_accepted, 20);
}
