//! Cold-start semantics of the online behavioral feature source.
//!
//! The contract under test (see `aipow-online`'s `source` module):
//!
//! 1. a never-seen IP scores **exactly** the prior — byte-for-byte, for
//!    any IP and any prior;
//! 2. under constant observed behaviour, every behavioral lane converges
//!    **monotonically** from the prior toward the observed value as
//!    evidence accumulates (confidence only ever grows while a client
//!    stays active).

use aipow::framework::{BehaviorSink, OnlineSettings, StaticFeatureSource};
use aipow::online::{BehaviorRecorder, BehavioralFeatureSource};
use aipow::pow::{Difficulty, ManualClock};
use aipow::prelude::*;
use aipow::reputation::ReputationScore;
use proptest::prelude::*;
use std::net::{IpAddr, Ipv4Addr};
use std::sync::Arc;

fn source_with_prior(
    prior: FeatureVector,
    half_life_ms: u64,
    prior_strength: f64,
) -> (Arc<BehaviorRecorder>, BehavioralFeatureSource) {
    let settings = OnlineSettings {
        half_life_ms,
        prior_strength,
        shard_count: Some(4),
        ..Default::default()
    };
    let recorder = Arc::new(BehaviorRecorder::new(&settings));
    let source = BehavioralFeatureSource::new(
        Arc::clone(&recorder),
        Arc::new(StaticFeatureSource::new(prior)),
        &settings,
        Arc::new(ManualClock::at(0)),
    );
    (recorder, source)
}

proptest! {
    /// Never-seen IPs score exactly the prior, whatever the prior is.
    #[test]
    fn cold_start_equals_prior(octets in proptest::collection::vec(0u32..256, 4),
                               lane0 in 0.0f64..50.0,
                               lane1 in 0.0f64..1.0,
                               strength in 0.0f64..64.0) {
        let prior = FeatureVector::zeros().with(0, lane0).with(1, lane1);
        let (_recorder, source) = source_with_prior(prior, 10_000, strength);
        let ip = IpAddr::V4(Ipv4Addr::new(
            octets[0] as u8, octets[1] as u8, octets[2] as u8, octets[3] as u8,
        ));
        prop_assert_eq!(source.features_at(ip, 5_000), prior);
    }

    /// A client flooding at a constant rate: the rate and abandon lanes
    /// move monotonically from the prior toward the observed behaviour,
    /// and end close to it.
    #[test]
    fn convergence_is_monotone(gap_ms in 5u64..500,
                               strength in 1.0f64..64.0,
                               events in 50usize..200) {
        let prior = FeatureVector::zeros().with(0, 2.0).with(1, 0.05);
        let (recorder, source) = source_with_prior(prior, 60_000, strength);
        let ip = IpAddr::V4(Ipv4Addr::new(203, 0, 113, 77));
        let observed_rate = 1_000.0 / gap_ms as f64;

        let mut last_rate = f64::NEG_INFINITY;
        let mut last_abandon = f64::NEG_INFINITY;
        for i in 0..events {
            let now = i as u64 * gap_ms;
            recorder.on_request(
                ip,
                now,
                ReputationScore::MAX,
                Some(Difficulty::new(5).unwrap()),
            );
            let f = source.features_at(ip, now);
            // Monotone toward the observed values (which sit above the
            // prior for a flooder), within float tolerance.
            prop_assert!(f.get(0) >= last_rate - 1e-9);
            prop_assert!(f.get(1) >= last_abandon - 1e-9);
            // Never overshoots what was observed.
            prop_assert!(f.get(0) <= observed_rate + 1e-9);
            prop_assert!(f.get(1) <= 1.0 + 1e-9);
            last_rate = f.get(0);
            last_abandon = f.get(1);
        }

        // The decayed event weight after n arrivals at a fixed gap is the
        // geometric sum (1 − qⁿ) / (1 − q) with q = 2^(−gap/half_life);
        // confidence follows exactly, so the final blend is pinned.
        let final_f = source.features_at(ip, (events as u64 - 1) * gap_ms);
        let q = 0.5f64.powf(gap_ms as f64 / 60_000.0);
        let n_eff = (1.0 - q.powi(events as i32)) / (1.0 - q);
        let confidence = n_eff / (n_eff + strength);
        let expected = 0.05 + confidence * (1.0 - 0.05);
        prop_assert!(
            (final_f.get(1) - expected).abs() < 1e-6,
            "abandon lane {} after {} events, expected {:.4}",
            final_f.get(1), events, expected,
        );
    }
}

/// Full convergence: with overwhelming evidence the behavioral lanes are
/// within a few percent of the observed behaviour.
#[test]
fn converged_lanes_match_observed_behavior() {
    let prior = FeatureVector::zeros().with(0, 2.0).with(1, 0.05);
    let (recorder, source) = source_with_prior(prior, 60_000, 8.0);
    let ip = IpAddr::V4(Ipv4Addr::new(203, 0, 113, 78));
    for i in 0..2_000u64 {
        recorder.on_request(
            ip,
            i * 10,
            ReputationScore::MAX,
            Some(Difficulty::new(5).unwrap()),
        );
    }
    let f = source.features_at(ip, 2_000 * 10);
    assert!((f.get(0) - 100.0).abs() < 5.0, "rate lane {}", f.get(0));
    assert!(f.get(1) > 0.95, "abandon lane {}", f.get(1));
}
