//! Workspace smoke test: the full Figure 1 pipeline — model scores the
//! client, policy maps score to difficulty, issuer mints a challenge, the
//! solver pays for it, the verifier admits exactly once — exercised from
//! the facade crate at every difficulty from 1 to 12.

use aipow::prelude::*;
use std::net::{IpAddr, Ipv4Addr};

/// One Figure 1 round trip per difficulty. A `LinearPolicy` with base `d`
/// at reputation 0 pins the issued difficulty to exactly `d` bits, so each
/// iteration checks the whole pipeline at a known price point.
#[test]
fn figure1_pipeline_at_difficulties_1_through_12() {
    let trusted = ReputationScore::new(0.0).unwrap();

    for bits in 1u8..=12 {
        let framework = FrameworkBuilder::new()
            .master_key([bits; 32])
            .model(FixedScoreModel::new(trusted))
            .policy(LinearPolicy::new(format!("smoke-d{bits}"), bits))
            .build()
            .unwrap();
        let client = IpAddr::V4(Ipv4Addr::new(198, 51, 100, bits));

        // Model → policy → issue.
        let issued = framework
            .handle_request(client, &FeatureVector::zeros())
            .challenge()
            .unwrap_or_else(|| panic!("difficulty {bits}: challenge expected"));
        assert_eq!(issued.difficulty.bits(), bits, "policy mapping at {bits}");

        // Solve.
        let report = solve(&issued.challenge, client, &SolverOptions::default())
            .unwrap_or_else(|e| panic!("difficulty {bits}: solve failed: {e}"));
        assert!(report.attempts >= 1);

        // Verify: admitted exactly once, at the difficulty that was paid.
        let token = framework
            .handle_solution(&report.solution, client)
            .unwrap_or_else(|e| panic!("difficulty {bits}: verify failed: {e}"));
        assert_eq!(token.difficulty, issued.difficulty);
        assert_eq!(token.client_ip, client);

        // Replay-reject: the same solution must not be admitted twice.
        assert!(
            framework.handle_solution(&report.solution, client).is_err(),
            "difficulty {bits}: replay was accepted"
        );

        // The ledger charged the expected work for this difficulty.
        let charged = framework.ledger().total(client);
        assert!(
            (charged - issued.difficulty.expected_attempts()).abs() < 1e-6,
            "difficulty {bits}: charged {charged}"
        );
    }
}
