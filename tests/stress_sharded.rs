//! Multi-thread stress tests for the sharded per-client structures.
//!
//! Each test runs ≥ 8 threads × ≥ 10k operations against one shared
//! structure and checks an exact invariant at the end — sharding must
//! never trade correctness (double redemption, token inflation, lost
//! counts) for throughput. CI runs these with `RUST_TEST_THREADS` unset
//! so the OS actually interleaves the workers.

use aipow::framework::sharded::ShardedMap;
use aipow::framework::RateLimiter;
use aipow::pow::ReplayGuard;
use std::net::{IpAddr, Ipv4Addr};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const THREADS: usize = 8;
const OPS: usize = 10_000;

fn ip(n: u32) -> IpAddr {
    IpAddr::V4(Ipv4Addr::from(n))
}

/// Interleaved inserts/reads/removes over a shared key space must keep
/// the global length counter exact and lose no entry.
#[test]
fn sharded_map_mixed_ops_keep_len_exact() {
    let map: Arc<ShardedMap<u64, u64>> = Arc::new(ShardedMap::new(16));
    let removed = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..THREADS as u64 {
            let map = Arc::clone(&map);
            let removed = Arc::clone(&removed);
            scope.spawn(move || {
                for i in 0..OPS as u64 {
                    let key = t * OPS as u64 + i;
                    map.insert(key, t);
                    // Read someone else's slice to force cross-shard traffic.
                    let _ = map.get_cloned(&(key / 2));
                    if i % 4 == 0 && map.remove(&key).is_some() {
                        removed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let inserted = (THREADS * OPS) as u64;
    let removed = removed.load(Ordering::Relaxed);
    assert_eq!(map.len() as u64, inserted - removed);
    // The atomic counter must agree with an exhaustive shard walk.
    assert_eq!(map.fold(0u64, |acc, _, _| acc + 1), inserted - removed);
}

/// `with_or_insert_with` must run exactly one init per key and serialize
/// all increments, even when every thread hammers the same hot keys.
#[test]
fn sharded_map_entry_api_counts_exactly_under_contention() {
    let map: Arc<ShardedMap<u64, u64>> = Arc::new(ShardedMap::new(16));
    const HOT_KEYS: u64 = 32;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let map = Arc::clone(&map);
            scope.spawn(move || {
                for i in 0..OPS as u64 {
                    map.with_or_insert_with(i % HOT_KEYS, || 0, |v| *v += 1);
                }
            });
        }
    });
    assert_eq!(map.len() as u64, HOT_KEYS);
    let total = map.fold(0u64, |acc, _, v| acc + v);
    assert_eq!(total, (THREADS * OPS) as u64, "increments were lost");
}

/// Racing redemptions of the same seed set across many shards must admit
/// each seed exactly once (no double redemption across shard boundaries).
#[test]
fn replay_guard_admits_each_seed_exactly_once_across_shards() {
    let guard = Arc::new(ReplayGuard::with_shards(1 << 18, 16));
    assert_eq!(guard.shard_count(), 16);
    let accepted = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let guard = Arc::clone(&guard);
            let accepted = Arc::clone(&accepted);
            scope.spawn(move || {
                for i in 0..OPS as u64 {
                    let mut seed = [0u8; 16];
                    seed[..8].copy_from_slice(&i.to_be_bytes());
                    if guard.check_and_insert(&seed, u64::MAX, 0) {
                        accepted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(
        accepted.load(Ordering::Relaxed),
        OPS as u64,
        "a seed was redeemed more than once"
    );
    assert_eq!(guard.len(), OPS);
    assert_eq!(guard.live_evictions(), 0);
}

/// Concurrent inserts far beyond capacity must respect the per-shard
/// eviction bound: the guard never holds more than its capacity.
#[test]
fn replay_guard_eviction_bound_holds_under_contention() {
    const CAPACITY: usize = 8 * 1_024; // 16 shards × 512 slots
    let guard = Arc::new(ReplayGuard::with_shards(CAPACITY, 16));
    std::thread::scope(|scope| {
        for t in 0..THREADS as u64 {
            let guard = Arc::clone(&guard);
            scope.spawn(move || {
                for i in 0..OPS as u64 {
                    let mut seed = [0u8; 16];
                    seed[..8].copy_from_slice(&(t * OPS as u64 + i).to_be_bytes());
                    assert!(guard.check_and_insert(&seed, u64::MAX, 0));
                }
            });
        }
    });
    assert!(
        guard.len() <= CAPACITY,
        "guard holds {} entries, capacity {CAPACITY}",
        guard.len()
    );
    // 80k distinct live seeds through an 8k-slot guard: the overflow is
    // exactly the live-eviction count.
    assert_eq!(guard.live_evictions(), (THREADS * OPS - guard.len()) as u64);
}

/// All threads draining one hot bucket must be granted exactly the burst
/// capacity — sharding must not let racing refills mint extra tokens.
#[test]
fn rate_limiter_no_token_inflation_under_contention() {
    const BURST: f64 = 10_000.0;
    let limiter = Arc::new(RateLimiter::with_shards(BURST, 0.001, 1 << 16, 16));
    let granted = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let limiter = Arc::clone(&limiter);
            let granted = Arc::clone(&granted);
            scope.spawn(move || {
                for _ in 0..OPS {
                    // Fixed timestamp: no refill can occur, so grants are
                    // bounded by the burst alone.
                    if limiter.allow(ip(0x0A00_0001), 0) {
                        granted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(
        granted.load(Ordering::Relaxed),
        BURST as u64,
        "token inflation: more grants than the burst capacity"
    );
}

/// A full ledger with threads racing to create the *same* new account
/// must never evict that account's in-flight charges: the per-shard
/// eviction runs scan, eviction, insert, and charge under one shard
/// lock, so the key being charged can never be the victim and the hot
/// client's total stays exact. (Regression test for an
/// evict-then-insert race.)
#[test]
fn cost_ledger_racing_charges_to_new_client_at_capacity_sum_exactly() {
    use aipow::framework::CostLedger;
    let ledger = Arc::new(CostLedger::with_shards(4, 8));
    // Fill to capacity with expensive accounts.
    for i in 0..4 {
        ledger.charge(ip(0x0B00_0000 + i), 1_000_000.0);
    }
    let hot = ip(0x0B00_00FF);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let ledger = Arc::clone(&ledger);
            scope.spawn(move || {
                for _ in 0..OPS {
                    ledger.charge(hot, 1.0);
                }
            });
        }
    });
    assert_eq!(
        ledger.total(hot),
        (THREADS * OPS) as f64,
        "a racing eviction erased charges for the client being charged"
    );
}

/// A full limiter with threads racing to create the *same* new bucket —
/// whose timestamp makes it the stalest eviction candidate everywhere —
/// must never evict that bucket and refund its debits: the
/// refill-timestamp (eviction score) update is atomic with the upsert
/// under the single shard lock, so no retry window exists in which a
/// racing admission could evict-then-reinsert the client being charged.
/// (Regression test for an evict-then-insert race.)
#[test]
fn rate_limiter_racing_inserts_never_refund_own_bucket() {
    const BURST: f64 = 100.0;
    let limiter = Arc::new(RateLimiter::with_shards(BURST, 0.001, 4, 8));
    // Fill to capacity with buckets refilled *later* than the hot client
    // will be, so the hot bucket is always the stalest candidate.
    for i in 0..4 {
        assert!(limiter.allow(ip(0x0C00_0000 + i), 1_000));
    }
    let hot = ip(0x0C00_00FF);
    let granted = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let limiter = Arc::clone(&limiter);
            let granted = Arc::clone(&granted);
            scope.spawn(move || {
                for _ in 0..OPS {
                    if limiter.allow(hot, 0) {
                        granted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(
        granted.load(Ordering::Relaxed),
        BURST as u64,
        "evicting the bucket being charged refunded its token debits"
    );
}

/// Distinct clients hammering different shards must each get exactly
/// their own burst — no cross-client interference, exact accounting.
/// The burst is *half* the per-client attempts, so both inflation
/// (extra grants) and lost grants shift the total.
#[test]
fn rate_limiter_distinct_clients_account_exactly() {
    const BURST: f64 = 50.0;
    let limiter = Arc::new(RateLimiter::with_shards(BURST, 0.001, 1 << 16, 16));
    let granted = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..THREADS as u32 {
            let limiter = Arc::clone(&limiter);
            let granted = Arc::clone(&granted);
            scope.spawn(move || {
                // 100 clients per thread, OPS/100 attempts each at t=0:
                // exactly BURST grants per client.
                for i in 0..OPS as u32 {
                    let client = ip(0x0A00_0000 + t * 100 + (i % 100));
                    if limiter.allow(client, 0) {
                        granted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(
        granted.load(Ordering::Relaxed),
        (THREADS * 100) as u64 * BURST as u64,
        "per-client burst accounting drifted under contention"
    );
    assert_eq!(limiter.len(), THREADS * 100);
}

/// Eight threads address-cycling through a full limiter — the flood
/// worst case the bounded-eviction migration exists for. The per-shard
/// bound is enforced under the shard lock, so the population must never
/// exceed `max_clients` (not even transiently, unlike the retired
/// global-scan protocol), no admission may fold over the whole table,
/// and the per-admission scan must stay within the per-shard capacity.
#[test]
fn rate_limiter_flood_stays_bounded_without_global_scans() {
    const MAX_CLIENTS: usize = 4_096;
    let limiter = Arc::new(RateLimiter::with_shards(5.0, 1.0, MAX_CLIENTS, 16));
    std::thread::scope(|scope| {
        for t in 0..THREADS as u32 {
            let limiter = Arc::clone(&limiter);
            scope.spawn(move || {
                for i in 0..OPS as u32 {
                    // A fresh address per request, distinct across threads.
                    let _ = limiter.allow(ip((t << 24) | i), i as u64);
                    assert!(
                        limiter.len() <= MAX_CLIENTS,
                        "population exceeded max_clients mid-flood"
                    );
                }
            });
        }
    });
    assert!(limiter.len() <= MAX_CLIENTS);
    assert_eq!(
        limiter.global_eviction_folds(),
        0,
        "an admission used the retired global victim scan"
    );
    let admissions = (THREADS * OPS) as u64;
    assert_eq!(limiter.evictions() + limiter.len() as u64, admissions);
    assert!(
        limiter.eviction_scan_steps() <= admissions * limiter.per_shard_clients() as u64,
        "a victim scan exceeded the per-shard bound"
    );
}

/// The same flood through the cost ledger (the solution-path eviction
/// site): population hard-bounded, cheapest-account eviction, no global
/// folds, heavy hitters retained.
#[test]
fn cost_ledger_flood_stays_bounded_and_keeps_heavy_hitters() {
    const CAPACITY: usize = 4_096;
    let ledger = Arc::new(aipow::framework::CostLedger::with_shards(CAPACITY, 16));
    // Heavy hitters first: large accounts that cheap flood entries must
    // never displace (the flood inserts score 1.0; victims are always
    // the shard-local cheapest).
    let heavy: Vec<IpAddr> = (0..64u32).map(|i| ip(0xFF00_0000 + i)).collect();
    for &hh in &heavy {
        ledger.charge(hh, 1_000_000.0);
    }
    std::thread::scope(|scope| {
        for t in 0..THREADS as u32 {
            let ledger = Arc::clone(&ledger);
            scope.spawn(move || {
                for i in 0..OPS as u32 {
                    ledger.charge(ip((t << 24) | i), 1.0);
                }
            });
        }
    });
    assert!(
        ledger.len() <= CAPACITY,
        "ledger population {} over capacity",
        ledger.len()
    );
    assert_eq!(ledger.global_eviction_folds(), 0);
    for &hh in &heavy {
        assert_eq!(
            ledger.total(hh),
            1_000_000.0,
            "a heavy hitter was displaced by cheap flood accounts"
        );
    }
}
