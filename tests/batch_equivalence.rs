//! Batch/sequential equivalence of the admission pipeline.
//!
//! The contract under test (see `aipow_core::pipeline`): for **any**
//! interleaving of resource requests, solution submissions (valid,
//! wrong-IP, replayed), and clock advances, driving the batch entry
//! points (`handle_request_batch` / `handle_solution_batch`) over
//! consecutive same-kind runs of the schedule produces **exactly** the
//! sequential path's
//!
//! - admission decisions (bypass flag, score, difficulty), in order;
//! - verification outcomes (tokens and error variants), in order;
//! - per-client cost-ledger balances (and the population count);
//! - audit records, in order, timestamps included;
//! - pipeline counters (issued / bypassed / accepted / per-reason
//!   rejections).
//!
//! Challenge seeds and solver nonces are *not* compared: seeds are
//! random per framework instance by design, and every derived quantity
//! that matters (difficulty, charge, audit text) is seed-independent.
//! Both frameworks run on lockstep manual clocks, which realizes the
//! documented batching invariant that a batch shares one clock reading —
//! on a fixed clock the paths must be bit-equivalent.

use aipow::framework::{AdmissionDecision, Framework, FrameworkBuilder};
use aipow::pow::solver::{self, SolverOptions};
use aipow::pow::{ManualClock, Solution, TimeSource, VerifiedToken, VerifyError};
use aipow::prelude::*;
use aipow::reputation::model::FixedScoreModel;
use aipow::reputation::ReputationScore;
use proptest::prelude::*;
use std::collections::VecDeque;
use std::net::{IpAddr, Ipv4Addr};
use std::sync::Arc;

/// One step of a schedule.
#[derive(Debug, Clone)]
enum Op {
    /// `client` asks for the resource.
    Request { client: u8 },
    /// `client` solves its oldest pending challenge and submits it.
    GoodSolution { client: u8 },
    /// `client` solves its oldest pending challenge but submits it from
    /// a different address (→ `ClientMismatch`, seed not consumed; the
    /// schedule drops the challenge either way, identically on both
    /// paths).
    WrongIpSolution { client: u8 },
    /// `client` resubmits its most recently accepted solution
    /// (→ `Replayed`).
    Replay { client: u8 },
    /// Both clocks advance by `ms` (also flushes the current run).
    Advance { ms: u16 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored prop_oneof! weighs branches equally; weighting is
    // emulated by repeating the hot branches (4:3:1:1:1).
    prop_oneof![
        (0u8..4).prop_map(|client| Op::Request { client }),
        (0u8..4).prop_map(|client| Op::Request { client }),
        (0u8..4).prop_map(|client| Op::Request { client }),
        (0u8..4).prop_map(|client| Op::Request { client }),
        (0u8..4).prop_map(|client| Op::GoodSolution { client }),
        (0u8..4).prop_map(|client| Op::GoodSolution { client }),
        (0u8..4).prop_map(|client| Op::GoodSolution { client }),
        (0u8..4).prop_map(|client| Op::WrongIpSolution { client }),
        (0u8..4).prop_map(|client| Op::Replay { client }),
        (0u16..5_000).prop_map(|ms| Op::Advance { ms }),
    ]
}

fn client_ip(client: u8) -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(203, 0, 113, client))
}

fn wrong_ip() -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(198, 51, 100, 200))
}

/// Routes every client to one fixed puzzle backend, so the equivalence
/// schedules can be replayed per registered backend.
#[derive(Debug)]
struct FixedRouter(aipow::pow::BackendId);

impl aipow::policy::BackendRouter for FixedRouter {
    fn name(&self) -> &str {
        "fixed"
    }
    fn route(
        &self,
        _score: ReputationScore,
        _ctx: &aipow::policy::PolicyContext,
    ) -> aipow::pow::BackendId {
        self.0
    }
}

/// Builds one framework (fixed low score → tiny puzzles, solver cost
/// negligible) with its lockstep clock.
fn build(max_batch: usize) -> (Framework, ManualClock) {
    build_with(max_batch, None, None)
}

/// As [`build`], with an explicit verifier lane width (`None` keeps the
/// hardware-detected default) and an optional fixed puzzle backend
/// (`None` keeps the default SHA-256 routing).
fn build_with(
    max_batch: usize,
    lanes: Option<usize>,
    backend: Option<aipow::pow::BackendId>,
) -> (Framework, ManualClock) {
    let (mut builder, clock) = FrameworkBuilder::new()
        .master_key([0x11u8; 32])
        .model(FixedScoreModel::new(ReputationScore::new(0.0).unwrap()))
        .policy(LinearPolicy::policy1()) // score 0 → 1 bit
        .ttl_ms(2_000) // short TTL so Advance can expire challenges
        .max_batch(max_batch)
        // Smallest arena so memory-hard schedules stay test-fast.
        .memory_hard_arena_mib(1)
        .manual_clock(1_000_000);
    if let Some(lanes) = lanes {
        builder = builder.lanes(lanes);
    }
    if let Some(backend) = backend {
        builder = builder.backend_router(Arc::new(FixedRouter(backend)));
    }
    (builder.build().unwrap(), clock)
}

/// Per-framework driver state: pending challenges and accepted
/// solutions per client. Evolves identically on both paths because the
/// decision *shapes* are identical.
#[derive(Default)]
struct ClientState {
    pending: VecDeque<aipow::pow::Challenge>,
    accepted: Vec<Solution>,
}

/// What one op resolved to, in comparable (seed-free) form.
#[derive(Debug, Clone, PartialEq)]
enum Observed {
    Decision {
        bypass: bool,
        score: f64,
        difficulty: Option<u8>,
    },
    Outcome(Result<(IpAddr, u8, u64), VerifyError>),
    Skipped,
}

fn observe_decision(decision: &AdmissionDecision) -> Observed {
    match decision {
        AdmissionDecision::Admit { score } => Observed::Decision {
            bypass: true,
            score: score.value(),
            difficulty: None,
        },
        AdmissionDecision::Challenge(issued) => Observed::Decision {
            bypass: false,
            score: issued.score.value(),
            difficulty: Some(issued.difficulty.bits()),
        },
    }
}

fn observe_outcome(outcome: &Result<VerifiedToken, VerifyError>) -> Observed {
    Observed::Outcome(
        outcome
            .as_ref()
            .map(|t| (t.client_ip, t.difficulty.bits(), t.verified_at_ms))
            .map_err(|e| *e),
    )
}

/// A solution op ready to submit: the solution and the address it is
/// submitted from.
struct Submission {
    solution: Solution,
    from: IpAddr,
}

/// Resolves one op against a framework's driver state, producing the
/// submission to make (for solution-like ops) or `None` for a skip.
/// Mutates the state exactly as the op demands; both paths call this
/// with identical state, so skips align.
fn prepare_submission(
    op: &Op,
    states: &mut [ClientState; 4],
    clock: &ManualClock,
) -> Option<Submission> {
    match op {
        Op::GoodSolution { client } | Op::WrongIpSolution { client } => {
            let state = &mut states[*client as usize];
            let challenge = state.pending.pop_front()?;
            let report = solver::solve(&challenge, client_ip(*client), &SolverOptions::default())
                .expect("1-bit puzzle solves");
            let from = match op {
                Op::GoodSolution { .. } => client_ip(*client),
                _ => wrong_ip(),
            };
            if matches!(op, Op::GoodSolution { .. }) && !challenge.is_expired(clock.now_ms()) {
                state.accepted.push(report.solution.clone());
            }
            Some(Submission {
                solution: report.solution,
                from,
            })
        }
        Op::Replay { client } => {
            let state = &states[*client as usize];
            let solution = state.accepted.last()?.clone();
            Some(Submission {
                solution,
                from: client_ip(*client),
            })
        }
        _ => None,
    }
}

/// Drives the schedule sequentially.
fn run_sequential(ops: &[Op]) -> (Vec<Observed>, Framework) {
    run_sequential_backend(ops, None)
}

/// As [`run_sequential`], with an optional fixed puzzle backend.
fn run_sequential_backend(
    ops: &[Op],
    backend: Option<aipow::pow::BackendId>,
) -> (Vec<Observed>, Framework) {
    let (fw, clock) = build_with(4, None, backend);
    let mut states: [ClientState; 4] = Default::default();
    let features = FeatureVector::zeros();
    let mut observed = Vec::with_capacity(ops.len());
    for op in ops {
        match op {
            Op::Request { client } => {
                let decision = fw.handle_request(client_ip(*client), &features);
                observed.push(observe_decision(&decision));
                if let AdmissionDecision::Challenge(issued) = decision {
                    states[*client as usize].pending.push_back(issued.challenge);
                }
            }
            Op::Advance { ms } => {
                clock.advance(u64::from(*ms));
                observed.push(Observed::Skipped);
            }
            solution_op => match prepare_submission(solution_op, &mut states, &clock) {
                Some(sub) => {
                    let outcome = fw.handle_solution(&sub.solution, sub.from);
                    observed.push(observe_outcome(&outcome));
                }
                None => observed.push(Observed::Skipped),
            },
        }
    }
    (observed, fw)
}

/// Drives the schedule through the batch entry points: consecutive
/// requests form one `handle_request_batch` call, consecutive
/// solution-like ops one `handle_solution_batch` call; `Advance`
/// flushes.
fn run_batched(ops: &[Op]) -> (Vec<Observed>, Framework) {
    run_batched_with(ops, None, None)
}

/// As [`run_batched`], with an explicit verifier lane width and an
/// optional fixed puzzle backend.
fn run_batched_with(
    ops: &[Op],
    lanes: Option<usize>,
    backend: Option<aipow::pow::BackendId>,
) -> (Vec<Observed>, Framework) {
    let (fw, clock) = build_with(4, lanes, backend);
    let mut states: [ClientState; 4] = Default::default();
    let features = FeatureVector::zeros();
    let mut observed: Vec<Observed> = Vec::with_capacity(ops.len());

    // The accumulating run: request clients, or prepared submissions.
    let mut request_run: Vec<u8> = Vec::new();
    let mut solution_run: Vec<Submission> = Vec::new();

    fn flush_requests(
        fw: &Framework,
        features: &FeatureVector,
        states: &mut [ClientState; 4],
        run: &mut Vec<u8>,
        observed: &mut Vec<Observed>,
    ) {
        if run.is_empty() {
            return;
        }
        let requests: Vec<(IpAddr, &FeatureVector)> =
            run.iter().map(|&c| (client_ip(c), features)).collect();
        let decisions = fw.handle_request_batch(&requests);
        for (client, decision) in run.drain(..).zip(decisions) {
            observed.push(observe_decision(&decision));
            if let AdmissionDecision::Challenge(issued) = decision {
                states[client as usize].pending.push_back(issued.challenge);
            }
        }
    }
    fn flush_solutions(fw: &Framework, run: &mut Vec<Submission>, observed: &mut Vec<Observed>) {
        if run.is_empty() {
            return;
        }
        let submissions: Vec<(&Solution, IpAddr)> =
            run.iter().map(|s| (&s.solution, s.from)).collect();
        let outcomes = fw.handle_solution_batch(&submissions);
        for outcome in &outcomes {
            observed.push(observe_outcome(outcome));
        }
        run.clear();
    }

    for op in ops {
        match op {
            Op::Request { client } => {
                // A kind switch flushes the other run first, preserving
                // framework-side processing order.
                flush_solutions(&fw, &mut solution_run, &mut observed);
                request_run.push(*client);
            }
            Op::Advance { ms } => {
                flush_requests(&fw, &features, &mut states, &mut request_run, &mut observed);
                flush_solutions(&fw, &mut solution_run, &mut observed);
                clock.advance(u64::from(*ms));
                observed.push(Observed::Skipped);
            }
            solution_op => {
                // Solution ops consume challenges issued earlier in the
                // same run window — flush requests first so the pending
                // queues are current (a real pipelining client likewise
                // can only submit challenges it has received).
                flush_requests(&fw, &features, &mut states, &mut request_run, &mut observed);
                match prepare_submission(solution_op, &mut states, &clock) {
                    Some(sub) => solution_run.push(sub),
                    None => {
                        // Skips must land in slot order: flush what is
                        // queued, then record the skip.
                        flush_solutions(&fw, &mut solution_run, &mut observed);
                        observed.push(Observed::Skipped);
                    }
                }
            }
        }
    }
    flush_requests(&fw, &features, &mut states, &mut request_run, &mut observed);
    flush_solutions(&fw, &mut solution_run, &mut observed);
    (observed, fw)
}

/// Seed-free audit view.
fn audit_view(fw: &Framework) -> Vec<String> {
    fw.audit()
        .snapshot()
        .iter()
        .map(|e| format!("{} {} {:?}", e.at_ms, e.client_ip, e.kind))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline equivalence: any interleaving, identical results.
    #[test]
    fn batch_path_is_observationally_identical_to_sequential(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        let (seq_observed, seq_fw) = run_sequential(&ops);
        let (batch_observed, batch_fw) = run_batched(&ops);

        // Decisions, outcomes, and skips, in op order.
        prop_assert_eq!(&seq_observed, &batch_observed);

        // Ledger balances and population.
        prop_assert_eq!(seq_fw.ledger().len(), batch_fw.ledger().len());
        for client in 0..4u8 {
            prop_assert_eq!(
                seq_fw.ledger().total(client_ip(client)),
                batch_fw.ledger().total(client_ip(client)),
                "ledger diverged for client {}", client
            );
        }

        // Audit records, in order, timestamps included.
        prop_assert_eq!(audit_view(&seq_fw), audit_view(&batch_fw));

        // Pipeline counters.
        let seq_snap = seq_fw.metrics_snapshot();
        let batch_snap = batch_fw.metrics_snapshot();
        prop_assert_eq!(seq_snap.challenges_issued, batch_snap.challenges_issued);
        prop_assert_eq!(seq_snap.bypassed, batch_snap.bypassed);
        prop_assert_eq!(seq_snap.solutions_accepted, batch_snap.solutions_accepted);
        prop_assert_eq!(seq_snap.solutions_rejected, batch_snap.solutions_rejected);
        prop_assert_eq!(seq_snap.rejected_by_reason, batch_snap.rejected_by_reason);
        prop_assert_eq!(
            seq_snap.median_issued_difficulty,
            batch_snap.median_issued_difficulty
        );
    }

    /// The multi-buffer verification kernel is a pure perf knob: the
    /// batch path at every wide lane width produces exactly what the
    /// scalar-forced (lanes = 1) batch path produces — decisions,
    /// outcomes, skips, audit records, and counters.
    #[test]
    fn verify_lane_width_is_observationally_invisible(
        ops in proptest::collection::vec(op_strategy(), 1..40)
    ) {
        let (scalar_observed, scalar_fw) = run_batched_with(&ops, Some(1), None);
        for lanes in [2usize, 4, 8] {
            let (wide_observed, wide_fw) = run_batched_with(&ops, Some(lanes), None);
            prop_assert_eq!(&scalar_observed, &wide_observed, "lanes {}", lanes);
            prop_assert_eq!(audit_view(&scalar_fw), audit_view(&wide_fw));
            prop_assert_eq!(scalar_fw.ledger().len(), wide_fw.ledger().len());
            let scalar_snap = scalar_fw.metrics_snapshot();
            let wide_snap = wide_fw.metrics_snapshot();
            prop_assert_eq!(scalar_snap.solutions_accepted, wide_snap.solutions_accepted);
            prop_assert_eq!(scalar_snap.solutions_rejected, wide_snap.solutions_rejected);
            prop_assert_eq!(scalar_snap.rejected_by_reason, wide_snap.rejected_by_reason);
        }
    }

    /// Chunking ceilings never change results, only group sizes: the
    /// same schedule at max_batch 1 (degenerate batching) and a large
    /// ceiling produce what the sequential path produces.
    #[test]
    fn max_batch_ceiling_is_semantically_invisible(
        ops in proptest::collection::vec(op_strategy(), 1..30)
    ) {
        let (seq_observed, _) = run_sequential(&ops);
        for max_batch in [1usize, 3, 64] {
            let run = |ops: &[Op]| {
                // Rebuild run_batched's framework with this ceiling by
                // reusing its machinery: requests all at once.
                let (fw, clock) = build(max_batch);
                let mut states: [ClientState; 4] = Default::default();
                let features = FeatureVector::zeros();
                let mut observed = Vec::new();
                for op in ops {
                    match op {
                        Op::Request { client } => {
                            let requests = vec![(client_ip(*client), &features)];
                            let decision =
                                fw.handle_request_batch(&requests).pop().unwrap();
                            observed.push(observe_decision(&decision));
                            if let AdmissionDecision::Challenge(issued) = decision {
                                states[*client as usize].pending.push_back(issued.challenge);
                            }
                        }
                        Op::Advance { ms } => {
                            clock.advance(u64::from(*ms));
                            observed.push(Observed::Skipped);
                        }
                        solution_op => {
                            match prepare_submission(solution_op, &mut states, &clock) {
                                Some(sub) => {
                                    let outcome = fw
                                        .handle_solution_batch(&[(&sub.solution, sub.from)])
                                        .pop()
                                        .unwrap();
                                    observed.push(observe_outcome(&outcome));
                                }
                                None => observed.push(Observed::Skipped),
                            }
                        }
                    }
                }
                observed
            };
            prop_assert_eq!(&seq_observed, &run(&ops), "max_batch {}", max_batch);
        }
    }
}

proptest! {
    // Fewer cases than the SHA-only properties: each case replays the
    // schedule four ways per registered backend, and memory-hard solves
    // touch a real (1 MiB) arena.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The batch/sequential equivalence holds through the backend seam
    /// for **every** registered puzzle backend, and the verifier's lane
    /// width stays observationally invisible under each of them.
    #[test]
    fn batch_equivalence_holds_for_every_registered_backend(
        ops in proptest::collection::vec(op_strategy(), 1..20)
    ) {
        for id in aipow::pow::BackendRegistry::standard().ids() {
            let (seq_observed, seq_fw) = run_sequential_backend(&ops, Some(id));
            let (batch_observed, batch_fw) = run_batched_with(&ops, None, Some(id));
            prop_assert_eq!(&seq_observed, &batch_observed, "backend {}", id);
            prop_assert_eq!(audit_view(&seq_fw), audit_view(&batch_fw));
            let seq_snap = seq_fw.metrics_snapshot();
            let batch_snap = batch_fw.metrics_snapshot();
            prop_assert_eq!(seq_snap.solutions_accepted, batch_snap.solutions_accepted);
            prop_assert_eq!(seq_snap.solutions_rejected, batch_snap.solutions_rejected);
            prop_assert_eq!(seq_snap.rejected_by_reason, batch_snap.rejected_by_reason);

            // Lane width is a pure perf knob under this backend too.
            let (scalar_observed, _) = run_batched_with(&ops, Some(1), Some(id));
            let (wide_observed, _) = run_batched_with(&ops, Some(8), Some(id));
            prop_assert_eq!(&batch_observed, &scalar_observed, "backend {} scalar", id);
            prop_assert_eq!(&scalar_observed, &wide_observed, "backend {} wide", id);
        }
    }
}

// ---------------------------------------------------------------------
// Wire-path equivalence: the reactor's frame assembly and per-readiness
// dispatch grouping are invisible. TCP may deliver a pipelined burst in
// any byte-level fragmentation or coalescing; the reactor must produce
// the same replies in the same order as whole-frame delivery.
// ---------------------------------------------------------------------

use aipow::net::reactor::{dispatch_frames, FrameAssembler};
use aipow::wire::Message;

/// One frame of a pipelined burst (no solutions: their replies embed
/// per-instance challenge seeds, covered seed-free by the schedule
/// properties above; the wire property targets the framing layer).
#[derive(Debug, Clone)]
enum WireOp {
    Ping(u64),
    Request,
    Missing,
    Hello,
}

fn wire_op_strategy() -> impl Strategy<Value = WireOp> {
    prop_oneof![
        (0u64..u64::MAX).prop_map(WireOp::Ping),
        Just(WireOp::Request),
        Just(WireOp::Request),
        Just(WireOp::Missing),
        Just(WireOp::Hello),
    ]
}

fn wire_op_message(op: &WireOp) -> Message {
    match op {
        WireOp::Ping(token) => Message::Ping { token: *token },
        WireOp::Request => Message::RequestResource { path: "/r".into() },
        WireOp::Missing => Message::RequestResource {
            path: "/missing".into(),
        },
        WireOp::Hello => Message::Hello {
            version: aipow::wire::PROTOCOL_VERSION,
        },
    }
}

/// Seed-free view of a reply (challenge bytes are random per framework
/// instance; everything decision-shaped is not).
fn observe_reply(reply: &Message) -> String {
    match reply {
        Message::Pong { token } => format!("pong {token}"),
        Message::Hello { version } => format!("hello {version}"),
        Message::ChallengeIssued { challenge, path } => {
            format!("challenge {path} bits={}", challenge.difficulty().bits())
        }
        Message::ResourceGranted { path, body } => {
            format!("granted {path} len={}", body.len())
        }
        Message::Rejected { code, .. } => format!("rejected {code:?}"),
        other => format!("other {other:?}"),
    }
}

/// Splits `bytes` into fragments whose lengths cycle through `cuts`
/// (1-based; arbitrary small fragments exercise every partial-header and
/// partial-payload state).
fn fragments<'a>(bytes: &'a [u8], cuts: &[u16]) -> Vec<&'a [u8]> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut i = 0;
    while start < bytes.len() {
        let len = (cuts[i % cuts.len()] as usize).max(1);
        let end = (start + len).min(bytes.len());
        out.push(&bytes[start..end]);
        start = end;
        i += 1;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pure framing: any fragmentation/coalescing of a back-to-back
    /// frame stream reassembles to exactly the original frame sequence.
    #[test]
    fn arbitrary_fragmentation_reassembles_the_exact_frame_sequence(
        ops in proptest::collection::vec(wire_op_strategy(), 1..20),
        cuts in proptest::collection::vec(1u16..64, 1..8),
    ) {
        let messages: Vec<Message> = ops.iter().map(wire_op_message).collect();
        let mut bytes = Vec::new();
        for msg in &messages {
            bytes.extend(aipow::wire::encode(msg));
        }
        let mut assembler = FrameAssembler::new();
        let mut reassembled = Vec::new();
        for fragment in fragments(&bytes, &cuts) {
            assembler.ingest(fragment);
            while let Some(frame) = assembler.next_frame().expect("valid stream") {
                reassembled.push(frame);
            }
        }
        prop_assert_eq!(reassembled, messages);
        prop_assert_eq!(assembler.buffered(), 0, "no bytes left behind");
    }

    /// Full wire path: fragment-driven dispatch (frames dispatched as
    /// each "readiness event" completes them, in max_batch groups — the
    /// reactor's exact drain discipline) produces the same replies in
    /// the same order as whole-frame single-batch delivery.
    #[test]
    fn fragmented_delivery_replies_match_whole_frame_delivery(
        ops in proptest::collection::vec(wire_op_strategy(), 1..20),
        cuts in proptest::collection::vec(1u16..48, 1..8),
        max_batch in 1usize..6,
    ) {
        let peer: IpAddr = client_ip(0);
        let mut resources = std::collections::HashMap::new();
        resources.insert("/r".to_string(), b"payload".to_vec());
        let limiter = None;

        let messages: Vec<Message> = ops.iter().map(wire_op_message).collect();
        let mut bytes = Vec::new();
        for msg in &messages {
            bytes.extend(aipow::wire::encode(msg));
        }

        // Whole-frame delivery: every frame in one dispatch batch.
        let (whole_fw, _clock) = build(4);
        let whole: Vec<String> = dispatch_frames(
            messages.clone(), peer, &whole_fw,
            &aipow::framework::StaticFeatureSource::new(FeatureVector::zeros()),
            &resources, &limiter,
        ).iter().map(observe_reply).collect();

        // Fragmented delivery on an identically built framework: each
        // fragment completes zero or more frames; completed frames are
        // dispatched immediately in groups of at most max_batch.
        let (frag_fw, _clock) = build(4);
        let features = aipow::framework::StaticFeatureSource::new(FeatureVector::zeros());
        let mut assembler = FrameAssembler::new();
        let mut fragged: Vec<String> = Vec::new();
        for fragment in fragments(&bytes, &cuts) {
            assembler.ingest(fragment);
            loop {
                let mut batch = Vec::new();
                while batch.len() < max_batch {
                    match assembler.next_frame().expect("valid stream") {
                        Some(frame) => batch.push(frame),
                        None => break,
                    }
                }
                if batch.is_empty() {
                    break;
                }
                let full = batch.len() == max_batch;
                fragged.extend(
                    dispatch_frames(batch, peer, &frag_fw, &features, &resources, &limiter)
                        .iter()
                        .map(observe_reply),
                );
                if !full {
                    break;
                }
            }
        }
        prop_assert_eq!(whole, fragged);
    }
}

/// Arc is referenced so the facade prelude import stays exercised even
/// if the proptest bodies change.
#[allow(dead_code)]
fn assert_framework_shareable(fw: Framework) -> Arc<Framework> {
    Arc::new(fw)
}
