//! End-to-end over real TCP on loopback: the deployment shape the paper
//! describes (server = issuer + verifier, client = solver), with the
//! trained DAbR model in the scoring seat.

use aipow::framework::{FrameworkBuilder, StaticFeatureSource};
use aipow::net::{ClientError, PowClient, PowServer, ServerConfig};
use aipow::prelude::*;
use aipow::reputation::synth::ClassLabel;
use aipow::wire::RejectCode;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Every socket read in this suite is bounded so a wedged peer fails the
/// test instead of hanging CI. Generous relative to loopback latency.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Test servers reap connections idle past the suite's bound (the
/// event-driven replacement for the old per-connection read timeout);
/// everything else is the production default.
fn test_server_config() -> ServerConfig {
    ServerConfig {
        idle_timeout: READ_TIMEOUT,
        ..ServerConfig::default()
    }
}

/// Connects with the suite's bounded read timeout.
fn connect(addr: SocketAddr) -> PowClient {
    PowClient::connect(addr)
        .unwrap()
        .with_read_timeout(Some(READ_TIMEOUT))
        .unwrap()
}

struct Deployment {
    server: PowServer,
    framework: Arc<Framework>,
    features: Arc<StaticFeatureSource>,
}

fn deploy(policy: impl Policy + 'static) -> Deployment {
    let dataset = DatasetSpec::default().with_seed(123).generate();
    let (train, test) = dataset.split(0.8, 123);
    let model = DabrModel::fit(&train, &Default::default());

    // Loopback is a benign client by default.
    let benign = test
        .samples()
        .iter()
        .find(|s| s.label == ClassLabel::Benign)
        .expect("benign sample")
        .features;
    let features = Arc::new(StaticFeatureSource::new(benign));

    let framework = Arc::new(
        FrameworkBuilder::new()
            .master_key([0xE2; 32])
            .model(model)
            .policy(policy)
            .build()
            .unwrap(),
    );

    let mut resources = HashMap::new();
    resources.insert("/page".to_string(), b"content".to_vec());
    resources.insert("/big".to_string(), vec![7u8; 64 * 1024]);

    let server = PowServer::start(
        "127.0.0.1:0",
        Arc::clone(&framework),
        Arc::clone(&features) as Arc<dyn aipow::framework::FeatureSource>,
        resources,
        test_server_config(),
    )
    .unwrap();

    Deployment {
        server,
        framework,
        features,
    }
}

#[test]
fn full_protocol_roundtrip_with_dabr() {
    let deployment = deploy(LinearPolicy::policy2());
    let mut client = connect(deployment.server.local_addr());

    let report = client.fetch("/page").unwrap();
    assert_eq!(report.body, b"content");
    let difficulty = report.difficulty.expect("puzzle required");
    assert!(
        difficulty.bits() >= 5,
        "policy2 floor is 5 bits, got {}",
        difficulty.bits()
    );
    assert!(report.attempts >= 1);

    let snap = deployment.framework.metrics().snapshot();
    assert_eq!(snap.challenges_issued, 1);
    assert_eq!(snap.solutions_accepted, 1);
    deployment.server.shutdown();
}

#[test]
fn large_resource_transfers_intact() {
    let deployment = deploy(LinearPolicy::policy1());
    let mut client = connect(deployment.server.local_addr());
    let report = client.fetch("/big").unwrap();
    assert_eq!(report.body.len(), 64 * 1024);
    assert!(report.body.iter().all(|&b| b == 7));
    deployment.server.shutdown();
}

#[test]
fn hostile_features_raise_the_price_on_the_wire() {
    let deployment = deploy(LinearPolicy::policy2());

    // First fetch with benign features.
    let mut client = connect(deployment.server.local_addr());
    let cheap = client.fetch("/page").unwrap().difficulty.unwrap();

    // Reclassify loopback as hostile (as a flow monitor would after
    // observing attack traffic), reconnect, fetch again.
    let hostile = FeatureVector::zeros()
        .with(0, 45.0) // request_rate
        .with(1, 0.9) // syn_ratio
        .with(6, 4.0) // blacklist_hits
        .with(7, 0.6); // tls_anomaly
    deployment
        .features
        .insert("127.0.0.1".parse().unwrap(), hostile);
    let expensive = client.fetch("/page").unwrap().difficulty.unwrap();

    assert!(
        expensive.bits() > cheap.bits(),
        "hostile {} !> benign {}",
        expensive.bits(),
        cheap.bits()
    );
    deployment.server.shutdown();
}

#[test]
fn many_sequential_fetches_never_replay() {
    let deployment = deploy(LinearPolicy::policy1());
    let mut client = connect(deployment.server.local_addr());
    for i in 0..10 {
        let report = client.fetch("/page").unwrap();
        assert_eq!(report.body, b"content", "fetch {i}");
    }
    let snap = deployment.framework.metrics().snapshot();
    assert_eq!(snap.solutions_accepted, 10);
    assert_eq!(snap.solutions_rejected, 0);
    deployment.server.shutdown();
}

#[test]
fn concurrent_clients_with_dabr_model() {
    let deployment = deploy(LinearPolicy::policy1());
    let addr = deployment.server.local_addr();
    let handles: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = connect(addr);
                client.fetch("/page").unwrap().body
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), b"content");
    }
    deployment.server.shutdown();
}

#[test]
fn stale_challenge_rejected_after_policy_is_irrelevant() {
    // A solution for a nonexistent path still verifies (the puzzle was
    // real) but the resource lookup fails cleanly.
    let deployment = deploy(LinearPolicy::policy1());
    let mut client = connect(deployment.server.local_addr());
    match client.fetch("/does-not-exist") {
        Err(ClientError::Rejected { code, .. }) => assert_eq!(code, RejectCode::NotFound),
        other => panic!("expected not-found, got {other:?}"),
    }
    deployment.server.shutdown();
}

#[test]
fn bypass_threshold_admits_benign_without_work_over_tcp() {
    let dataset = DatasetSpec::default().with_seed(321).generate();
    let (train, test) = dataset.split(0.8, 321);
    let model = DabrModel::fit(&train, &Default::default());
    // Find a sample scoring under 2 to guarantee the bypass fires.
    let trusted = test
        .samples()
        .iter()
        .find(|s| model.score(&s.features).value() < 2.0)
        .expect("a trusted sample exists")
        .features;

    let framework = Arc::new(
        FrameworkBuilder::new()
            .master_key([0xE3; 32])
            .model(model)
            .policy(LinearPolicy::policy2())
            .bypass_threshold(2.0)
            .build()
            .unwrap(),
    );
    let features = Arc::new(StaticFeatureSource::new(trusted));
    let mut resources = HashMap::new();
    resources.insert("/fast".to_string(), b"no work".to_vec());
    let server = PowServer::start(
        "127.0.0.1:0",
        Arc::clone(&framework),
        features,
        resources,
        test_server_config(),
    )
    .unwrap();

    let mut client = connect(server.local_addr());
    let report = client.fetch("/fast").unwrap();
    assert_eq!(report.difficulty, None);
    assert_eq!(report.attempts, 0);
    assert_eq!(framework.metrics().snapshot().bypassed, 1);
    server.shutdown();
}
