//! Cross-crate property tests through the facade: for arbitrary valid
//! inputs, the composed pipeline upholds its end-to-end invariants.

use aipow::prelude::*;
use proptest::prelude::*;
use std::net::{IpAddr, Ipv4Addr};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any score in [0, 10] under any paper policy issues a challenge that
    /// solves and verifies exactly once, and the charged cost equals the
    /// difficulty's expected attempts.
    #[test]
    fn pipeline_invariant(score_x10 in 0u32..=100, policy_id in 0u8..3, octets in any::<[u8; 4]>()) {
        let score = ReputationScore::new(score_x10 as f64 / 10.0).unwrap();
        let policy: Box<dyn Policy> = match policy_id {
            0 => Box::new(LinearPolicy::policy1()),
            1 => Box::new(LinearPolicy::policy2()),
            _ => Box::new(ErrorRangePolicy::new(1.5, 42)),
        };
        let framework = FrameworkBuilder::new()
            .master_key([0x77; 32])
            .model(FixedScoreModel::new(score))
            .policy_boxed(policy)
            .build()
            .unwrap();
        let ip = IpAddr::V4(Ipv4Addr::from(octets));

        let issued = framework
            .handle_request(ip, &FeatureVector::zeros())
            .challenge()
            .unwrap();
        // Paper policies at score ≤ 10 stay ≤ 15 bits (+ϵ for policy 3):
        // always solvable in-test.
        prop_assert!(issued.difficulty.bits() <= 17);

        let report = solve(&issued.challenge, ip, &SolverOptions::default()).unwrap();
        let token = framework.handle_solution(&report.solution, ip).unwrap();
        prop_assert_eq!(token.difficulty, issued.difficulty);

        // Exactly-once: replay rejected.
        prop_assert!(framework.handle_solution(&report.solution, ip).is_err());

        // Cost accounting: expected attempts of the paid difficulty.
        let charged = framework.ledger().total(ip);
        prop_assert!((charged - issued.difficulty.expected_attempts()).abs() < 1e-6);
    }

    /// Whatever the model score, the issued-challenge wire roundtrip is
    /// lossless through the real codec.
    #[test]
    fn issued_challenges_roundtrip_on_the_wire(score_x10 in 0u32..=100) {
        let score = ReputationScore::new(score_x10 as f64 / 10.0).unwrap();
        let framework = FrameworkBuilder::new()
            .master_key([0x78; 32])
            .model(FixedScoreModel::new(score))
            .policy(LinearPolicy::policy2())
            .build()
            .unwrap();
        let ip = IpAddr::V4(Ipv4Addr::new(192, 0, 2, 200));
        let issued = framework
            .handle_request(ip, &FeatureVector::zeros())
            .challenge()
            .unwrap();
        let msg = aipow::wire::Message::ChallengeIssued {
            challenge: issued.challenge.clone(),
            path: "/p".into(),
        };
        let decoded = aipow::wire::decode(&aipow::wire::encode(&msg)).unwrap();
        prop_assert_eq!(decoded, msg);
    }
}
