//! Failure injection at the wire/TCP layer: a hostile peer sends
//! malformed, out-of-order, stolen, or replayed protocol traffic, and the
//! server must reject it cheaply and keep serving honest clients.

use aipow::framework::{FrameworkBuilder, StaticFeatureSource};
use aipow::net::{PowClient, PowServer, ServerConfig};
use aipow::prelude::*;
use aipow::wire::{read_message, write_message, Message, RejectCode};
use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

fn deploy() -> (PowServer, Arc<Framework>) {
    let framework = Arc::new(
        FrameworkBuilder::new()
            .master_key([0xAB; 32])
            .model(FixedScoreModel::new(ReputationScore::new(4.0).unwrap()))
            .policy(LinearPolicy::policy1())
            .build()
            .unwrap(),
    );
    let mut resources = HashMap::new();
    resources.insert("/r".to_string(), b"guarded".to_vec());
    let server = PowServer::start(
        "127.0.0.1:0",
        Arc::clone(&framework),
        Arc::new(StaticFeatureSource::new(FeatureVector::zeros())),
        resources,
        ServerConfig::default(),
    )
    .unwrap();
    (server, framework)
}

#[test]
fn http_request_on_pow_port_is_rejected() {
    let (server, _) = deploy();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .write_all(b"POST /login HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    match read_message(&mut stream) {
        Ok(Message::Rejected { code, .. }) => assert_eq!(code, RejectCode::Malformed),
        other => panic!("expected malformed rejection, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn solution_without_request_is_still_verified_on_its_merits() {
    // A client may solve a previously issued challenge on a *new*
    // connection (stateless server). A fabricated challenge, though, fails
    // the MAC.
    let (server, _) = deploy();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();

    let foreign_issuer = Issuer::new(&[0xFF; 32]);
    let ip = "127.0.0.1".parse().unwrap();
    let fake = foreign_issuer.issue(ip, Difficulty::new(1).unwrap());
    let solved = solve(&fake, ip, &SolverOptions::default())
        .unwrap()
        .solution;

    write_message(
        &mut stream,
        &Message::SubmitSolution {
            backend: solved.backend,
            challenge: solved.challenge,
            nonce: solved.nonce,
            width: solved.width,
            path: "/r".into(),
        },
    )
    .unwrap();
    match read_message(&mut stream).unwrap() {
        Message::Rejected { code, detail } => {
            assert_eq!(code, RejectCode::InvalidSolution);
            assert!(detail.contains("authentication"), "{detail}");
        }
        other => panic!("expected rejection, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn replayed_solution_on_second_connection_rejected() {
    let (server, framework) = deploy();
    let addr = server.local_addr();

    // Honest client fetches once.
    let mut client = PowClient::connect(addr).unwrap();
    client.fetch("/r").unwrap();

    // Attacker captures the audit trail? They cannot: but even replaying
    // the exact same solved challenge (simulated via a second framework
    // pass) is refused. Reconstruct the replay through raw messages.
    let mut stream = TcpStream::connect(addr).unwrap();
    write_message(&mut stream, &Message::RequestResource { path: "/r".into() }).unwrap();
    let challenge = match read_message(&mut stream).unwrap() {
        Message::ChallengeIssued { challenge, .. } => challenge,
        other => panic!("expected challenge, got {other:?}"),
    };
    let ip = challenge.client_ip();
    let solved = solve(&challenge, ip, &SolverOptions::default())
        .unwrap()
        .solution;

    for attempt in 0..2 {
        write_message(
            &mut stream,
            &Message::SubmitSolution {
                backend: solved.backend,
                challenge: solved.challenge.clone(),
                nonce: solved.nonce,
                width: solved.width,
                path: "/r".into(),
            },
        )
        .unwrap();
        match (attempt, read_message(&mut stream).unwrap()) {
            (0, Message::ResourceGranted { .. }) => {}
            (1, Message::Rejected { code, detail }) => {
                assert_eq!(code, RejectCode::InvalidSolution);
                assert!(detail.contains("redeemed"), "{detail}");
            }
            (i, other) => panic!("attempt {i}: unexpected {other:?}"),
        }
    }

    let snap = framework.metrics().snapshot();
    assert_eq!(snap.solutions_accepted, 2); // honest fetch + first submit
    assert_eq!(snap.rejected_by_reason["replayed"], 1);
    server.shutdown();
}

#[test]
fn server_to_client_messages_sent_by_client_are_malformed() {
    let (server, _) = deploy();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    write_message(
        &mut stream,
        &Message::ResourceGranted {
            path: "/r".into(),
            body: vec![1, 2, 3],
        },
    )
    .unwrap();
    match read_message(&mut stream).unwrap() {
        Message::Rejected { code, .. } => assert_eq!(code, RejectCode::Malformed),
        other => panic!("expected malformed rejection, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn abuse_does_not_disturb_honest_clients() {
    let (server, framework) = deploy();
    let addr = server.local_addr();

    // Background abuse: garbage and fabricated solutions.
    let abuse = std::thread::spawn(move || {
        for i in 0..10 {
            if let Ok(mut s) = TcpStream::connect(addr) {
                if i % 2 == 0 {
                    let _ = s.write_all(&[0u8; 64]);
                } else {
                    let _ = write_message(
                        &mut s,
                        &Message::RequestResource {
                            path: "/missing".into(),
                        },
                    );
                }
            }
        }
    });

    let mut client = PowClient::connect(addr).unwrap();
    for _ in 0..3 {
        assert_eq!(client.fetch("/r").unwrap().body, b"guarded");
    }
    abuse.join().unwrap();

    assert_eq!(framework.metrics().snapshot().solutions_accepted, 3);
    server.shutdown();
}

/// With the online reputation loop attached, invalid-solution spam raises
/// the spammer's difficulty while a concurrent well-behaved client from a
/// different IP keeps its baseline. (Driven at the framework layer so the
/// two clients can present distinct IPs — every TCP connection in this
/// suite is 127.0.0.1.)
#[test]
fn invalid_solution_spam_raises_only_the_spammers_difficulty() {
    use aipow::framework::OnlineSettings;
    use aipow::online::OnlineLoop;
    use aipow::pow::ManualClock;
    use aipow::reputation::baseline::BlocklistHeuristic;

    let clock = ManualClock::at(0);
    let framework = Arc::new(
        FrameworkBuilder::new()
            .master_key([0xCD; 32])
            .model(BlocklistHeuristic)
            .policy(LinearPolicy::policy2())
            .clock(Arc::new(clock.clone()))
            .build()
            .unwrap(),
    );
    let online = OnlineLoop::attach(
        Arc::clone(&framework),
        Arc::new(StaticFeatureSource::new(FeatureVector::zeros())),
        OnlineSettings {
            prior_strength: 4.0,
            ..Default::default()
        },
    )
    .expect("fresh framework has no sink");
    let source = online.source();

    let spammer: std::net::IpAddr = "198.51.100.66".parse().unwrap();
    let honest: std::net::IpAddr = "198.51.100.7".parse().unwrap();
    let foreign = Issuer::new(&[0xFF; 32]);

    let request = |ip: &std::net::IpAddr| {
        framework
            .handle_request(*ip, &source.features_for(*ip))
            .challenge()
            .unwrap()
    };

    let spammer_before = request(&spammer).difficulty.bits();
    let honest_before = request(&honest).difficulty.bits();

    // Interleave: the spammer submits fabricated solutions (MAC failures)
    // while the honest client keeps fetching and solving.
    for round in 0..30u64 {
        clock.set(round * 200);
        let fake = foreign.issue(spammer, Difficulty::new(1).unwrap());
        let garbage = solve(&fake, spammer, &SolverOptions::default())
            .unwrap()
            .solution;
        assert!(framework.handle_solution(&garbage, spammer).is_err());

        let issued = request(&honest);
        let report = solve(&issued.challenge, honest, &SolverOptions::default()).unwrap();
        framework.handle_solution(&report.solution, honest).unwrap();
    }

    clock.set(30 * 200);
    let spammer_after = request(&spammer).difficulty.bits();
    let honest_after = request(&honest).difficulty.bits();

    assert!(
        spammer_after >= spammer_before + 4,
        "spam must raise the spammer's difficulty: {spammer_before} → {spammer_after}"
    );
    assert!(
        honest_after <= honest_before + 1,
        "honest client must be unaffected: {honest_before} → {honest_after}"
    );
    // The rejections were tallied and both clients are tracked.
    let snap = framework.metrics_snapshot();
    assert_eq!(snap.rejected_by_reason["bad_mac"], 30);
    assert_eq!(online.recorder().len(), 2);
}

#[test]
fn oversized_frame_header_is_refused() {
    let (server, _) = deploy();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Valid magic/version/type but an absurd declared length.
    let mut frame = Vec::new();
    frame.extend_from_slice(&0xA1F0u16.to_be_bytes());
    frame.push(aipow::wire::PROTOCOL_VERSION);
    frame.push(6); // ping
    frame.extend_from_slice(&u32::MAX.to_be_bytes());
    stream.write_all(&frame).unwrap();
    match read_message(&mut stream) {
        Ok(Message::Rejected { code, .. }) => assert_eq!(code, RejectCode::Malformed),
        other => panic!("expected malformed rejection, got {other:?}"),
    }
    server.shutdown();
}
