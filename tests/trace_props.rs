//! Cross-crate properties of the tracing layer through the facade: for
//! arbitrary batch shapes, every sampled request gets its own trace and
//! every trace's spans walk the stage chain in order.

use aipow::prelude::*;
use aipow::trace::{TraceConfig, Tracer};
use proptest::prelude::*;
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};
use std::sync::Arc;

fn traced_framework(sample_every: u64) -> (Framework, Arc<Tracer>) {
    let tracer = Arc::new(Tracer::new(TraceConfig {
        sample_every,
        ..TraceConfig::default()
    }));
    let framework = FrameworkBuilder::new()
        .master_key([0x42; 32])
        .model(FixedScoreModel::new(ReputationScore::new(5.0).unwrap()))
        .policy(LinearPolicy::policy2())
        .tracer(Arc::clone(&tracer))
        .build()
        .unwrap();
    (framework, tracer)
}

/// The request chain's stage slots, in pipeline order.
const REQUEST_SLOTS: [u8; 5] = [0, 1, 2, 3, 4];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// At 1-in-1 sampling, N batched requests produce exactly N distinct
    /// trace IDs, each with one complete request chain whose slots run
    /// `score → bypass → policy → issue → request_telemetry` in order.
    #[test]
    fn batched_requests_carry_distinct_ordered_traces(
        n in 1usize..=96,
        chunking in 1usize..=8,
        base_octet in 1u8..=200,
    ) {
        let (framework, tracer) = traced_framework(1);
        let features = FeatureVector::zeros();
        let ips: Vec<IpAddr> = (0..n)
            .map(|i| IpAddr::V4(Ipv4Addr::new(10, base_octet, (i / 256) as u8, (i % 256) as u8)))
            .collect();

        // Arbitrary chunking must not change the per-request guarantees.
        for chunk in ips.chunks(chunking) {
            let requests: Vec<(IpAddr, &FeatureVector)> =
                chunk.iter().map(|&ip| (ip, &features)).collect();
            let decisions = framework.handle_request_batch(&requests);
            prop_assert_eq!(decisions.len(), chunk.len());
        }

        let spans = tracer.spans();
        let mut chains: HashMap<u64, Vec<u8>> = HashMap::new();
        for span in &spans {
            prop_assert!(span.trace_id != 0, "recorded span without a trace");
            chains.entry(span.trace_id).or_default().push(span.slot);
        }

        // Exactly N distinct trace IDs: one per request, no sharing, no
        // dropped assignments at default ring capacity.
        prop_assert_eq!(chains.len(), n);

        // Every chain is the full request chain, in stage order.
        for (trace_id, slots) in &chains {
            prop_assert_eq!(
                slots.as_slice(),
                REQUEST_SLOTS.as_slice(),
                "trace {} walked slots {:?}",
                trace_id,
                slots
            );
        }
    }

    /// Sampling 1-in-N traces roughly n/N of a batch and never corrupts
    /// the chains it does record.
    #[test]
    fn sampled_traces_stay_complete(sample_every in 2u64..=16) {
        let (framework, tracer) = traced_framework(sample_every);
        let features = FeatureVector::zeros();
        let requests: Vec<(IpAddr, &FeatureVector)> = (0..64u32)
            .map(|i| {
                (
                    IpAddr::V4(Ipv4Addr::from(0x0A64_0000 + i)),
                    &features,
                )
            })
            .collect();
        framework.handle_request_batch(&requests);

        let spans = tracer.spans();
        let mut chains: HashMap<u64, Vec<u8>> = HashMap::new();
        for span in &spans {
            chains.entry(span.trace_id).or_default().push(span.slot);
        }
        let expected = 64 / sample_every as usize;
        // The deterministic 1-in-N tick makes the count exact modulo the
        // phase of the first tick.
        prop_assert!(
            chains.len() >= expected.saturating_sub(1) && chains.len() <= expected + 1,
            "{} chains at 1-in-{} sampling of 64",
            chains.len(),
            sample_every
        );
        for slots in chains.values() {
            prop_assert_eq!(slots.as_slice(), REQUEST_SLOTS.as_slice());
        }
    }
}
