//! Equivalence properties for the multi-buffer SHA-256/HMAC kernel: at
//! every lane count the wide path must be byte-identical to the scalar
//! reference — across ragged tails, multi-block messages, midstate
//! continuations, and the official NIST/RFC test vectors.

use aipow_crypto::hmac::{HmacKey, HmacSha256};
use aipow_crypto::sha256::Sha256;
use aipow_crypto::sha256_wide::{digest_batch, digest_batch_from, digest_wide, MAX_LANES};
use proptest::collection::vec;
use proptest::prelude::*;

/// FIPS 180-4 / NIST CAVS SHA-256 vectors (message, expected digest).
const NIST_VECTORS: [(&[u8], &str); 4] = [
    (
        b"",
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
    ),
    (
        b"abc",
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
    ),
    (
        b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
    ),
    (
        b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
          ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
        "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
    ),
];

/// RFC 4231 HMAC-SHA-256 vectors (key, message, expected tag).
const RFC4231_VECTORS: [(&[u8], &[u8], &str); 3] = [
    (
        &[0x0b; 20],
        b"Hi There",
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
    ),
    (
        b"Jefe",
        b"what do ya want for nothing?",
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
    ),
    (
        &[0xaa; 20],
        &[0xdd; 50],
        "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe",
    ),
];

#[test]
fn nist_vectors_pass_through_the_wide_path_at_every_lane_count() {
    for (msg, want) in NIST_VECTORS {
        for lanes in 1..=MAX_LANES {
            // A full batch of copies exercises real wide lanes; a batch
            // shorter than the lane width exercises the scalar fallback.
            for copies in [1, lanes, 2 * lanes + 1] {
                let msgs: Vec<&[u8]> = std::iter::repeat_n(msg, copies).collect();
                for digest in digest_batch(&msgs, lanes) {
                    assert_eq!(digest.to_hex(), want, "lanes {lanes}, copies {copies}");
                }
            }
        }
    }
    // The fixed-width entry points too.
    let eight: [&[u8]; 8] = [b"abc"; 8];
    for digest in digest_wide(eight) {
        assert_eq!(digest.to_hex(), NIST_VECTORS[1].1);
    }
    let four: [&[u8]; 4] = [b"abc"; 4];
    for digest in digest_wide(four) {
        assert_eq!(digest.to_hex(), NIST_VECTORS[1].1);
    }
}

#[test]
fn rfc4231_vectors_pass_through_the_batched_mac_at_every_lane_count() {
    for (key, msg, want) in RFC4231_VECTORS {
        let hoisted = HmacKey::new(key);
        assert_eq!(HmacSha256::mac(key, msg).to_hex(), want);
        for lanes in 1..=MAX_LANES {
            let msgs: Vec<&[u8]> = std::iter::repeat_n(msg, lanes + 3).collect();
            for tag in hoisted.mac_batch(&msgs, lanes) {
                assert_eq!(tag.to_hex(), want, "lanes {lanes}");
            }
        }
    }
}

#[test]
fn block_boundary_lengths_match_scalar_at_every_lane_count() {
    // Lengths straddling the 64-byte block and 56-byte padding
    // boundaries, including multi-block messages.
    let lengths = [
        0usize, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128, 129, 300,
    ];
    let messages: Vec<Vec<u8>> = lengths
        .iter()
        .map(|&len| (0..len).map(|i| (i * 31 % 251) as u8).collect())
        .collect();
    let refs: Vec<&[u8]> = messages.iter().map(Vec::as_slice).collect();
    let want: Vec<String> = refs.iter().map(|m| Sha256::digest(m).to_hex()).collect();
    for lanes in 1..=MAX_LANES {
        // Duplicate each length `lanes` times so full lanes actually form.
        let wide_input: Vec<&[u8]> = refs
            .iter()
            .flat_map(|&m| std::iter::repeat_n(m, lanes))
            .collect();
        let got = digest_batch(&wide_input, lanes);
        for (i, digest) in got.iter().enumerate() {
            assert_eq!(digest.to_hex(), want[i / lanes], "lanes {lanes}, item {i}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A batch of arbitrary (ragged) messages digests identically to the
    /// scalar hasher at every lane count, in input order.
    #[test]
    fn ragged_batches_match_scalar(
        msgs in vec(vec(any::<u8>(), 0..200), 0..24),
        lanes in 1usize..=MAX_LANES,
    ) {
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let got = digest_batch(&refs, lanes);
        prop_assert_eq!(got.len(), refs.len());
        for (digest, msg) in got.iter().zip(&refs) {
            let want = Sha256::digest(msg);
            prop_assert_eq!(digest.as_bytes(), want.as_bytes());
        }
    }

    /// Continuing from an arbitrary midstate (the solver's hoisted
    /// prefix) is identical to scalar hashing of prefix ‖ suffix.
    #[test]
    fn midstate_continuation_matches_scalar(
        prefix in vec(any::<u8>(), 0..150),
        suffixes in vec(vec(any::<u8>(), 0..100), 1..20),
        lanes in 1usize..=MAX_LANES,
    ) {
        let mut base = Sha256::new();
        base.update(&prefix);
        let refs: Vec<&[u8]> = suffixes.iter().map(Vec::as_slice).collect();
        let got = digest_batch_from(&base, &refs, lanes);
        for (digest, suffix) in got.iter().zip(&suffixes) {
            let mut whole = prefix.clone();
            whole.extend_from_slice(suffix);
            let want = Sha256::digest(&whole);
            prop_assert_eq!(digest.as_bytes(), want.as_bytes());
        }
    }

    /// Batched HMAC under a hoisted key schedule equals the one-shot
    /// RFC 2104 reference for arbitrary keys (short, block-sized, and
    /// longer-than-block) and ragged messages, at every lane count.
    #[test]
    fn batched_hmac_matches_scalar(
        key in vec(any::<u8>(), 0..100),
        msgs in vec(vec(any::<u8>(), 0..150), 0..20),
        lanes in 1usize..=MAX_LANES,
    ) {
        let hoisted = HmacKey::new(&key);
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let tags = hoisted.mac_batch(&refs, lanes);
        prop_assert_eq!(tags.len(), refs.len());
        for (tag, msg) in tags.iter().zip(&refs) {
            let want = HmacSha256::mac(&key, msg);
            prop_assert_eq!(tag.as_bytes(), want.as_bytes());
        }
    }

    /// `verify_batch` accepts exactly the genuine tags and rejects
    /// corrupted ones, independent of lane width.
    #[test]
    fn batched_verify_flags_corruption(
        key in vec(any::<u8>(), 1..64),
        msgs in vec(vec(any::<u8>(), 0..80), 1..12),
        corrupt_mask in any::<u16>(),
        lanes in 1usize..=MAX_LANES,
    ) {
        let hoisted = HmacKey::new(&key);
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let mut tags: Vec<[u8; 32]> = hoisted
            .mac_batch(&refs, lanes)
            .iter()
            .map(|d| *d.as_bytes())
            .collect();
        for (i, tag) in tags.iter_mut().enumerate() {
            if corrupt_mask & (1 << (i % 16)) != 0 {
                tag[i % 32] ^= 0x40;
            }
        }
        let tag_refs: Vec<&[u8]> = tags.iter().map(|t| t.as_slice()).collect();
        let verdicts = hoisted.verify_batch(&refs, &tag_refs, lanes);
        for (i, ok) in verdicts.iter().enumerate() {
            prop_assert_eq!(*ok, corrupt_mask & (1 << (i % 16)) == 0, "item {}", i);
        }
    }
}
