//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so
//! they are ready for real serialization once the genuine crates.io serde
//! is available, but no code path in the workspace performs serialization
//! today. This stand-in therefore ships marker traits with blanket impls
//! plus no-op derive macros, keeping every `#[derive(...)]` and trait
//! bound compiling without network access.

#![forbid(unsafe_code)]

/// Marker for serializable types. Blanket-implemented for every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types. Blanket-implemented for every type.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Owned-deserialization marker, mirroring serde's `DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};
