//! The one unsafe module in the workspace: raw readiness syscalls.
//!
//! Everything here is a thin, total wrapper over four kernel interfaces —
//! `epoll_create1`/`epoll_ctl`/`epoll_wait`, `poll(2)`, `eventfd(2)`, and
//! `close(2)` — with `-1` mapped to [`io::Error::last_os_error`] and file
//! descriptors owned by RAII guards. No pointer outlives its call, every
//! buffer is a stack array or caller-provided slice whose length is passed
//! alongside it, and no fd is used after its guard drops. The safe
//! [`Poller`](crate::Poller) API above this module is the only consumer.

#![allow(unsafe_code)]

use std::io;
use std::os::raw::{c_int, c_uint, c_void};

// x86-64 Linux packs `epoll_event` to 12 bytes; other 64-bit targets use
// natural (8-aligned, 16-byte) layout. Getting this wrong corrupts the
// event key on one arch or the other, so both layouts are spelled out.
/// The kernel's `struct epoll_event` (x86-64 packed layout).
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness mask (`EPOLL*` bits).
    pub events: u32,
    /// The caller's registration key.
    pub data: u64,
}

/// The kernel's `struct epoll_event` (naturally aligned layout).
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness mask (`EPOLL*` bits).
    pub events: u32,
    /// The caller's registration key.
    pub data: u64,
}

/// The kernel's `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct PollFd {
    /// The descriptor to watch.
    pub fd: c_int,
    /// Requested readiness (`POLL*` bits).
    pub events: i16,
    /// Delivered readiness, written by the kernel.
    pub revents: i16,
}

/// `EPOLLIN`: the fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// `EPOLLOUT`: the fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// `EPOLLERR`: the fd errored (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// `EPOLLHUP`: both ends closed (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;
/// `EPOLLRDHUP`: the peer closed its write half.
pub const EPOLLRDHUP: u32 = 0x2000;

/// `POLLIN`: the fd is readable.
pub const POLLIN: i16 = 0x001;
/// `POLLOUT`: the fd is writable.
pub const POLLOUT: i16 = 0x004;
/// `POLLERR`: the fd errored.
pub const POLLERR: i16 = 0x008;
/// `POLLHUP`: the peer hung up.
pub const POLLHUP: i16 = 0x010;

const EPOLL_CLOEXEC: c_int = 0x80000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EFD_CLOEXEC: c_int = 0x80000;
const EFD_NONBLOCK: c_int = 0x800;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

/// An fd owned by this module: closed exactly once, on drop.
#[derive(Debug)]
pub struct OwnedFd(c_int);

impl OwnedFd {
    /// The raw fd number, for passing to syscalls; ownership stays here.
    pub fn raw(&self) -> c_int {
        self.0
    }
}

impl Drop for OwnedFd {
    fn drop(&mut self) {
        // Errors from close on a valid owned fd are unrecoverable and
        // unreportable from Drop; the fd is gone either way.
        unsafe {
            let _ = close(self.0);
        }
    }
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// `epoll_create1(EPOLL_CLOEXEC)`, returning an owned epoll fd.
pub fn epoll_create() -> io::Result<OwnedFd> {
    // SAFETY: no pointers; the returned fd is immediately owned.
    let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
    Ok(OwnedFd(fd))
}

/// One `epoll_ctl` op. `event` is read by the kernel before returning;
/// passing it by value keeps the pointer's lifetime to this call.
fn epoll_ctl_op(epfd: &OwnedFd, op: c_int, fd: c_int, mut event: EpollEvent) -> io::Result<()> {
    // SAFETY: `&mut event` is a valid, properly laid out (repr C)
    // pointer for the duration of the call; the kernel does not retain it.
    cvt(unsafe { epoll_ctl(epfd.raw(), op, fd, &mut event) })?;
    Ok(())
}

/// Registers `fd` with the epoll set under `key`.
pub fn epoll_add(epfd: &OwnedFd, fd: c_int, events: u32, key: u64) -> io::Result<()> {
    epoll_ctl_op(epfd, EPOLL_CTL_ADD, fd, EpollEvent { events, data: key })
}

/// Rewrites the interest/key of an fd already in the epoll set.
pub fn epoll_modify(epfd: &OwnedFd, fd: c_int, events: u32, key: u64) -> io::Result<()> {
    epoll_ctl_op(epfd, EPOLL_CTL_MOD, fd, EpollEvent { events, data: key })
}

/// Removes an fd from the epoll set.
pub fn epoll_delete(epfd: &OwnedFd, fd: c_int) -> io::Result<()> {
    // Pre-2.6.9 kernels demanded a non-null event for DEL; passing one
    // is harmless everywhere.
    epoll_ctl_op(epfd, EPOLL_CTL_DEL, fd, EpollEvent { events: 0, data: 0 })
}

/// `epoll_wait` into the caller's buffer; returns the filled prefix.
pub fn epoll_wait_into<'a>(
    epfd: &OwnedFd,
    buf: &'a mut [EpollEvent],
    timeout_ms: c_int,
) -> io::Result<&'a [EpollEvent]> {
    // SAFETY: `buf` is a valid writable region of exactly `buf.len()`
    // `EpollEvent`s; the kernel writes at most that many and the return
    // value bounds the initialized prefix.
    let n = cvt(unsafe {
        epoll_wait(
            epfd.raw(),
            buf.as_mut_ptr(),
            buf.len().min(c_int::MAX as usize) as c_int,
            timeout_ms,
        )
    })?;
    Ok(&buf[..n as usize])
}

/// `poll(2)` over the caller's pollfd set; returns the ready count.
pub fn poll_set(fds: &mut [PollFd], timeout_ms: c_int) -> io::Result<usize> {
    // SAFETY: `fds` is a valid mutable region of exactly `fds.len()`
    // pollfds, and the length is passed alongside the pointer.
    let n = cvt(unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) })?;
    Ok(n as usize)
}

/// A nonblocking, close-on-exec eventfd for cross-thread wakeups.
pub fn eventfd_create() -> io::Result<OwnedFd> {
    // SAFETY: no pointers; the returned fd is immediately owned.
    let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
    Ok(OwnedFd(fd))
}

/// Adds 1 to the eventfd counter (the wakeup signal). A full counter
/// (`WouldBlock`) means a wakeup is already pending, which is success.
pub fn eventfd_signal(fd: &OwnedFd) -> io::Result<()> {
    let one: u64 = 1;
    // SAFETY: the buffer is a stack u64 passed with its exact size.
    let n = unsafe { write(fd.raw(), (&one as *const u64).cast(), 8) };
    if n == 8 {
        return Ok(());
    }
    let err = io::Error::last_os_error();
    if err.kind() == io::ErrorKind::WouldBlock {
        Ok(())
    } else {
        Err(err)
    }
}

/// Drains the eventfd counter so the next wait blocks again.
pub fn eventfd_drain(fd: &OwnedFd) {
    let mut buf: u64 = 0;
    // SAFETY: the buffer is a stack u64 passed with its exact size. A
    // failed read (empty counter) needs no handling: drained is drained.
    let _ = unsafe { read(fd.raw(), (&mut buf as *mut u64).cast(), 8) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_event_layout_matches_kernel_abi() {
        // 12 bytes packed on x86-64, 16 elsewhere; a mismatch would shear
        // every delivered key.
        #[cfg(target_arch = "x86_64")]
        assert_eq!(core::mem::size_of::<EpollEvent>(), 12);
        #[cfg(not(target_arch = "x86_64"))]
        assert_eq!(core::mem::size_of::<EpollEvent>(), 16);
        assert_eq!(core::mem::size_of::<PollFd>(), 8);
    }

    #[test]
    fn eventfd_signal_then_drain() {
        let fd = eventfd_create().unwrap();
        eventfd_signal(&fd).unwrap();
        eventfd_signal(&fd).unwrap();
        eventfd_drain(&fd);
        // Drained: a second drain is a harmless no-op.
        eventfd_drain(&fd);
    }

    #[test]
    fn epoll_roundtrip_on_eventfd() {
        let ep = epoll_create().unwrap();
        let ev = eventfd_create().unwrap();
        epoll_add(&ep, ev.raw(), EPOLLIN, 7).unwrap();
        let mut buf = [EpollEvent { events: 0, data: 0 }; 4];
        // Nothing signalled: zero-timeout wait returns empty.
        assert!(epoll_wait_into(&ep, &mut buf, 0).unwrap().is_empty());
        eventfd_signal(&ev).unwrap();
        let ready = epoll_wait_into(&ep, &mut buf, 1000).unwrap();
        assert_eq!(ready.len(), 1);
        let (events, data) = (ready[0].events, ready[0].data);
        assert_ne!(events & EPOLLIN, 0);
        assert_eq!(data, 7);
        epoll_delete(&ep, ev.raw()).unwrap();
    }
}
