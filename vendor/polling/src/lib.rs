//! Vendored offline stand-in for the `polling` crate (API subset).
//!
//! A minimal readiness poller: register file descriptors with a `u64`
//! key and a read/write interest, then [`Poller::wait`] for the kernel
//! to report which are ready. Two backends:
//!
//! - **Epoll** (the default on Linux): `O(ready)` wakeups — the kernel
//!   hands back only the descriptors with pending readiness, so one
//!   reactor thread can watch hundreds of thousands of connections.
//! - **Poll** (`poll(2)`): the portable fallback. `O(registered)` per
//!   wait, kept for non-Linux targets and as a differential oracle for
//!   the epoll path in tests.
//!
//! Both are level-triggered: a readiness condition is re-reported on
//! every wait until it is consumed (read to `WouldBlock` / written until
//! full). [`Poller::notify`] wakes a blocked `wait` from any thread via
//! an internal eventfd, which is never surfaced as a caller event.
//!
//! Unlike the real crate, registration is not `unsafe`: the caller
//! contract (deregister before closing the fd) is documented rather than
//! typed, which suffices for the single consumer in `aipow-net`. All
//! syscall surface is confined to the [`mod@sys`] module.

// The sys module is the workspace's one sanctioned unsafe boundary:
// FFI to epoll/poll/eventfd cannot be expressed without it. `deny`
// (not `forbid`) at the root lets that module opt in explicitly while
// every other line of this crate stays checked.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod sys;

use std::collections::HashMap;
use std::io;
use std::sync::Mutex;
use std::time::Duration;

/// Which readiness conditions a registration subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only — the steady state of an idle connection.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Readable and writable — a connection with queued outbound bytes.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The key the fd was registered with.
    pub key: u64,
    /// Readable now (includes peer hangup: a read will not block).
    pub readable: bool,
    /// Writable now.
    pub writable: bool,
    /// The peer closed or the fd errored; the connection is done.
    pub hangup: bool,
}

/// Which kernel interface a [`Poller`] drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// `epoll(7)` — O(ready) wakeups.
    Epoll,
    /// `poll(2)` — O(registered) wakeups, portable.
    Poll,
}

/// The key space reserved for the poller itself; user keys must stay
/// below this. (The internal eventfd registers here.)
pub const RESERVED_KEY: u64 = u64::MAX;

struct PollBackendState {
    /// fd → (key, interest); rebuilt into a pollfd array per wait.
    registered: HashMap<i32, (u64, Interest)>,
}

enum Imp {
    Epoll { epfd: sys::OwnedFd },
    Poll { state: Mutex<PollBackendState> },
}

/// A readiness poller over raw file descriptors. See the crate docs.
pub struct Poller {
    imp: Imp,
    waker: sys::OwnedFd,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller")
            .field("backend", &self.backend())
            .finish()
    }
}

fn epoll_mask(interest: Interest) -> u32 {
    let mut mask = sys::EPOLLRDHUP;
    if interest.readable {
        mask |= sys::EPOLLIN;
    }
    if interest.writable {
        mask |= sys::EPOLLOUT;
    }
    mask
}

fn poll_mask(interest: Interest) -> i16 {
    let mut mask = 0;
    if interest.readable {
        mask |= sys::POLLIN;
    }
    if interest.writable {
        mask |= sys::POLLOUT;
    }
    mask
}

fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        // Round up so a 100µs timeout does not become a busy spin.
        Some(d) => d
            .as_millis()
            .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
            .min(i32::MAX as u128) as i32,
    }
}

impl Poller {
    /// A poller on the platform's best backend (epoll on Linux).
    ///
    /// # Errors
    ///
    /// Propagates backend-fd or eventfd creation failure.
    pub fn new() -> io::Result<Poller> {
        if cfg!(target_os = "linux") {
            Poller::with_backend(Backend::Epoll)
        } else {
            Poller::with_backend(Backend::Poll)
        }
    }

    /// A poller on an explicit backend (tests use this to run both).
    ///
    /// # Errors
    ///
    /// Propagates backend-fd or eventfd creation failure.
    pub fn with_backend(backend: Backend) -> io::Result<Poller> {
        let waker = sys::eventfd_create()?;
        let imp = match backend {
            Backend::Epoll => {
                let epfd = sys::epoll_create()?;
                sys::epoll_add(&epfd, waker.raw(), sys::EPOLLIN, RESERVED_KEY)?;
                Imp::Epoll { epfd }
            }
            Backend::Poll => Imp::Poll {
                state: Mutex::new(PollBackendState {
                    registered: HashMap::new(),
                }),
            },
        };
        Ok(Poller { imp, waker })
    }

    /// The backend this poller runs on.
    pub fn backend(&self) -> Backend {
        match self.imp {
            Imp::Epoll { .. } => Backend::Epoll,
            Imp::Poll { .. } => Backend::Poll,
        }
    }

    /// Registers `fd` under `key`. The fd must stay open until
    /// [`delete`](Self::delete); `key` must be below [`RESERVED_KEY`].
    ///
    /// # Errors
    ///
    /// Propagates the kernel's registration error (e.g. an fd already
    /// registered), or `InvalidInput` for a reserved key.
    pub fn add(&self, fd: i32, key: u64, interest: Interest) -> io::Result<()> {
        if key == RESERVED_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "key collides with the poller's reserved key space",
            ));
        }
        match &self.imp {
            Imp::Epoll { epfd } => sys::epoll_add(epfd, fd, epoll_mask(interest), key),
            Imp::Poll { state } => {
                let mut state = state.lock().expect(
                    "poller mutex poisoned: a panic mid-registration leaves no valid recovery",
                );
                if state.registered.insert(fd, (key, interest)).is_some() {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        "fd already registered",
                    ));
                }
                Ok(())
            }
        }
    }

    /// Replaces the key/interest of a registered fd.
    ///
    /// # Errors
    ///
    /// `NotFound` (poll backend) or the kernel's `ENOENT` (epoll) when
    /// the fd is not registered.
    pub fn modify(&self, fd: i32, key: u64, interest: Interest) -> io::Result<()> {
        if key == RESERVED_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "key collides with the poller's reserved key space",
            ));
        }
        match &self.imp {
            Imp::Epoll { epfd } => sys::epoll_modify(epfd, fd, epoll_mask(interest), key),
            Imp::Poll { state } => {
                let mut state = state.lock().expect(
                    "poller mutex poisoned: a panic mid-registration leaves no valid recovery",
                );
                match state.registered.get_mut(&fd) {
                    Some(slot) => {
                        *slot = (key, interest);
                        Ok(())
                    }
                    None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
                }
            }
        }
    }

    /// Deregisters an fd. Call before closing it.
    ///
    /// # Errors
    ///
    /// `NotFound`/`ENOENT` when the fd is not registered.
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        match &self.imp {
            Imp::Epoll { epfd } => sys::epoll_delete(epfd, fd),
            Imp::Poll { state } => {
                let mut state = state.lock().expect(
                    "poller mutex poisoned: a panic mid-registration leaves no valid recovery",
                );
                match state.registered.remove(&fd) {
                    Some(_) => Ok(()),
                    None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
                }
            }
        }
    }

    /// Blocks until at least one registered fd is ready, the timeout
    /// lapses, or [`notify`](Self::notify) is called; appends the ready
    /// events to `events` and returns how many were appended. A
    /// notification wakes the wait but adds no event.
    ///
    /// # Errors
    ///
    /// Propagates the backend syscall error. `EINTR` is retried
    /// internally with the original timeout.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let before = events.len();
        let ms = timeout_ms(timeout);
        match &self.imp {
            Imp::Epoll { epfd } => {
                const CAP: usize = 1024;
                let mut buf = [sys::EpollEvent { events: 0, data: 0 }; CAP];
                let ready = loop {
                    match sys::epoll_wait_into(epfd, &mut buf, ms) {
                        Ok(ready) => break ready,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) => return Err(e),
                    }
                };
                for ev in ready {
                    // Copy out of the (possibly packed) kernel struct
                    // before touching the fields.
                    let (mask, key) = (ev.events, ev.data);
                    if key == RESERVED_KEY {
                        sys::eventfd_drain(&self.waker);
                        continue;
                    }
                    events.push(Event {
                        key,
                        readable: mask & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0,
                        writable: mask & sys::EPOLLOUT != 0,
                        hangup: mask & (sys::EPOLLHUP | sys::EPOLLERR | sys::EPOLLRDHUP) != 0,
                    });
                }
            }
            Imp::Poll { state } => {
                // Snapshot the registration table into a pollfd array.
                // O(registered) per wait is the documented cost of the
                // fallback backend.
                let mut fds: Vec<sys::PollFd> = Vec::new();
                let mut keys: Vec<u64> = Vec::new();
                {
                    let state = state.lock().expect(
                        "poller mutex poisoned: a panic mid-registration leaves no valid recovery",
                    );
                    fds.reserve(state.registered.len() + 1);
                    keys.reserve(state.registered.len() + 1);
                    fds.push(sys::PollFd {
                        fd: self.waker.raw(),
                        events: sys::POLLIN,
                        revents: 0,
                    });
                    keys.push(RESERVED_KEY);
                    for (&fd, &(key, interest)) in &state.registered {
                        fds.push(sys::PollFd {
                            fd,
                            events: poll_mask(interest),
                            revents: 0,
                        });
                        keys.push(key);
                    }
                }
                loop {
                    match sys::poll_set(&mut fds, ms) {
                        Ok(_) => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) => return Err(e),
                    }
                }
                for (pollfd, &key) in fds.iter().zip(&keys) {
                    let revents = pollfd.revents;
                    if revents == 0 {
                        continue;
                    }
                    if key == RESERVED_KEY {
                        sys::eventfd_drain(&self.waker);
                        continue;
                    }
                    events.push(Event {
                        key,
                        readable: revents & (sys::POLLIN | sys::POLLHUP) != 0,
                        writable: revents & sys::POLLOUT != 0,
                        hangup: revents & (sys::POLLHUP | sys::POLLERR) != 0,
                    });
                }
            }
        }
        Ok(events.len() - before)
    }

    /// Wakes a concurrent [`wait`](Self::wait) from any thread. Coalesces:
    /// many notifies before the next wait produce one wakeup.
    ///
    /// # Errors
    ///
    /// Propagates an eventfd write failure (never `WouldBlock`, which
    /// means a wakeup is already pending and is success).
    pub fn notify(&self) -> io::Result<()> {
        sys::eventfd_signal(&self.waker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn backends() -> Vec<Backend> {
        vec![Backend::Epoll, Backend::Poll]
    }

    /// A connected localhost socket pair.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn readable_after_peer_write() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let (mut a, b) = pair();
            b.set_nonblocking(true).unwrap();
            poller.add(b.as_raw_fd(), 3, Interest::READABLE).unwrap();

            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(0)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}: spurious readiness");

            a.write_all(b"hi").unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}");
            assert_eq!(events[0].key, 3);
            assert!(events[0].readable);
            poller.delete(b.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn writable_interest_and_modify() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let (a, _b) = pair();
            a.set_nonblocking(true).unwrap();
            // Read-only interest on an idle socket: nothing.
            poller.add(a.as_raw_fd(), 9, Interest::READABLE).unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(0)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}");
            // Adding write interest: an empty socket buffer is writable.
            poller.modify(a.as_raw_fd(), 9, Interest::BOTH).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}");
            assert!(events[0].writable);
            poller.delete(a.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn hangup_reported_on_peer_close() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let (mut a, mut b) = pair();
            a.set_nonblocking(true).unwrap();
            poller.add(a.as_raw_fd(), 1, Interest::READABLE).unwrap();
            drop(b.write_all(b"bye"));
            drop(b);
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}");
            // Level-triggered semantics guarantee readable; the hangup
            // flag may arrive on this event or once the data is drained.
            assert!(events[0].readable, "{backend:?}");
            let mut sink = Vec::new();
            let _ = a.read_to_end(&mut sink);
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            // EOF stays readable on both backends (a read returns 0 —
            // the signal the reactor acts on); only epoll's RDHUP also
            // names it a hangup. poll(2) reserves POLLHUP for full
            // closes, so the flag is advisory there.
            assert!(events[0].readable, "{backend:?}: close not reported");
            if backend == Backend::Epoll {
                assert!(events[0].hangup, "epoll must flag the half-close");
            }
            poller.delete(a.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn notify_wakes_wait_without_events() {
        for backend in backends() {
            let poller = std::sync::Arc::new(Poller::with_backend(backend).unwrap());
            let waker = std::sync::Arc::clone(&poller);
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                waker.notify().unwrap();
            });
            let mut events = Vec::new();
            let start = std::time::Instant::now();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(30)))
                .unwrap();
            assert_eq!(n, 0, "{backend:?}: notify must not surface an event");
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "{backend:?}: notify failed to interrupt the wait"
            );
            handle.join().unwrap();
            // Coalescing: two notifies, one drained wakeup, next wait
            // times out promptly.
            poller.notify().unwrap();
            poller.notify().unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(1)))
                .unwrap();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(1)))
                .unwrap();
            assert_eq!(n, 0, "{backend:?}: stale wakeup");
        }
    }

    #[test]
    fn reserved_key_rejected() {
        let poller = Poller::new().unwrap();
        let (a, _b) = pair();
        let err = poller
            .add(a.as_raw_fd(), RESERVED_KEY, Interest::READABLE)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn delete_unregistered_errors() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let (a, _b) = pair();
            assert!(poller.delete(a.as_raw_fd()).is_err(), "{backend:?}");
        }
    }

    #[test]
    fn many_registrations_deliver_only_ready_keys() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let pairs: Vec<_> = (0..64).map(|_| pair()).collect();
            for (i, (_, b)) in pairs.iter().enumerate() {
                b.set_nonblocking(true).unwrap();
                poller
                    .add(b.as_raw_fd(), i as u64, Interest::READABLE)
                    .unwrap();
            }
            // Write on three of them.
            for i in [5usize, 17, 63] {
                (&pairs[i].0).write_all(b"x").unwrap();
            }
            let mut events = Vec::new();
            // Level-triggered: everything ready arrives within one or
            // two waits.
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            let mut keys: Vec<u64> = events.iter().map(|e| e.key).collect();
            keys.sort_unstable();
            assert_eq!(keys, vec![5, 17, 63], "{backend:?}");
            for (_, b) in &pairs {
                poller.delete(b.as_raw_fd()).unwrap();
            }
        }
    }

    #[test]
    fn timeout_rounds_up_not_down() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(5))), 5);
        assert_eq!(timeout_ms(Some(Duration::from_micros(100))), 1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
    }
}
