//! Offline stand-in for `bytes`.
//!
//! Big-endian `Buf`/`BufMut` accessors plus a `Vec<u8>`-backed `BytesMut`,
//! covering the wire codec's needs. Reads panic on underflow exactly like
//! the real crate, so callers must check `remaining()` first.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// Read cursor over a contiguous byte source (big-endian accessors).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes. Panics if fewer remain.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte. Panics on underflow.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian `u16`. Panics on underflow.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(raw)
    }

    /// Reads a big-endian `u32`. Panics on underflow.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`. Panics on underflow.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }

    /// Copies `dst.len()` bytes out. Panics on underflow.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }
}

/// Write cursor over a growable byte sink (big-endian accessors).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable byte buffer (Vec-backed).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Reserves space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Consumes the buffer, returning the underlying vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Freezes into an immutable byte vector (the stand-in's `Bytes` is
    /// just `Vec<u8>`).
    pub fn freeze(self) -> Vec<u8> {
        self.inner
    }

    /// Splits off and returns the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.inner.split_off(at);
        let head = std::mem::replace(&mut self.inner, rest);
        BytesMut { inner: head }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> Self {
        Self { inner }
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Self {
        b.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut buf = BytesMut::new();
        buf.put_u8(0xAB);
        buf.put_u16(0xA1F0);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(42);
        buf.put_slice(b"hi");

        let mut rd: &[u8] = &buf;
        assert_eq!(rd.remaining(), 1 + 2 + 4 + 8 + 2);
        assert_eq!(rd.get_u8(), 0xAB);
        assert_eq!(rd.get_u16(), 0xA1F0);
        assert_eq!(rd.get_u32(), 0xDEAD_BEEF);
        assert_eq!(rd.get_u64(), 42);
        let mut tail = [0u8; 2];
        rd.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"hi");
        assert!(!rd.has_remaining());
    }
}
