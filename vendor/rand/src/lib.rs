//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset this workspace uses: `StdRng` (SplitMix64 core —
//! statistically fine for simulation and test workloads, not a CSPRNG),
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer and float
//! ranges, and `rand::random()` seeded from OS time for one-off keys.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform random source.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// User-facing random-value methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Samples a value of type `T` from all its bit patterns.
    fn r#gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avoid the all-zero fixed point and decorrelate small seeds.
            Self {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Types sampleable uniformly over their whole domain.
pub trait Standard {
    /// Draws one value from `rng`.
    fn generate<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn generate<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn generate<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn generate<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn generate<R: RngCore>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value; panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128).wrapping_add(rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                (lo as u128).wrapping_add(rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // u in [0, 1): 53 uniform bits scaled down.
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                // Guard against rounding up to the excluded endpoint —
                // in the target type, since the narrowing cast itself
                // can round up to the bound (e.g. f64 0.99999997 → f32 1.0).
                let v = (self.start as f64 + u * (self.end as f64 - self.start as f64)) as $t;
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                (lo as f64 + u * (hi as f64 - lo as f64)) as $t
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// An OS-entropy generator: every word is read from `/dev/urandom`.
///
/// Falls back to a time/pid-seeded SplitMix64 only if the OS source
/// cannot be opened (non-Unix or sandboxed environments).
pub struct OsRng {
    source: Option<std::fs::File>,
    fallback: rngs::StdRng,
}

impl Default for OsRng {
    fn default() -> Self {
        Self::new()
    }
}

impl OsRng {
    /// Opens the OS entropy source.
    pub fn new() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::time::{SystemTime, UNIX_EPOCH};

        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        OsRng {
            source: std::fs::File::open("/dev/urandom").ok(),
            fallback: <rngs::StdRng as SeedableRng>::seed_from_u64(
                nanos ^ n.rotate_left(32) ^ (std::process::id() as u64).rotate_left(48),
            ),
        }
    }
}

impl RngCore for OsRng {
    fn next_u64(&mut self) -> u64 {
        use std::io::Read;
        if let Some(f) = &mut self.source {
            let mut word = [0u8; 8];
            if f.read_exact(&mut word).is_ok() {
                return u64::from_le_bytes(word);
            }
            self.source = None;
        }
        self.fallback.next_u64()
    }
}

/// Draws one value of type `T` from OS entropy (`/dev/urandom`), matching
/// real rand's `random()` being backed by a CSPRNG. Only if the OS source
/// is unavailable does it degrade to a time-seeded generator.
pub fn random<T: Standard>() -> T {
    T::generate(&mut OsRng::new())
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }
}
