//! No-op `Serialize`/`Deserialize` derives.
//!
//! The vendored [`serde`](../serde) crate implements its traits for every
//! type via blanket impls, so the derive macros have nothing to generate.
//! They exist so `#[derive(Serialize, Deserialize)]` continues to compile
//! exactly as it would against real serde.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Derives `serde::Serialize` (a no-op: the trait has a blanket impl).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives `serde::Deserialize` (a no-op: the trait has a blanket impl).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
