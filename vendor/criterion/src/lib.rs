//! Offline stand-in for `criterion`.
//!
//! Implements the macro and builder API this workspace's benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups, throughput
//! annotations, `iter`/`iter_batched` — with a simple median-of-samples
//! timer instead of criterion's full statistical machinery. Reports one
//! line per benchmark to stdout.
//!
//! # Machine-readable output
//!
//! When the environment variable `AIPOW_BENCH_JSON` names a file, every
//! benchmark result is *additionally* appended to it as one JSON object
//! per line (JSON Lines):
//!
//! ```text
//! {"group":"contended_admission","id":"threads/4","median_ns":38117.2,"throughput":{"unit":"elements","per_iter":8000,"per_sec":209878234.1}}
//! ```
//!
//! The file is appended to, never truncated, so a caller that wants a
//! fresh file removes it first. This is how the repo's perf trajectory
//! (`BENCH_contended.json`, see EXPERIMENTS.md) accumulates across PRs.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::io::Write;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the default measurement window for subsequent benchmarks.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the default sample count for subsequent benchmarks.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the default warm-up window for subsequent benchmarks.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function("", f_adapter(&mut f));
        group.finish();
        self
    }
}

fn f_adapter<'a, F: FnMut(&mut Bencher)>(f: &'a mut F) -> impl FnMut(&mut Bencher) + 'a {
    move |b| f(b)
}

/// Units for reporting benchmark throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup cost. The stand-in treats all
/// variants identically (one setup per timed invocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
    /// A fixed number of batches.
    NumBatches(u64),
    /// A fixed number of iterations per batch.
    NumIterations(u64),
}

/// Identifier combining a function name and a parameter value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a name plus a parameter, e.g. `solve/12`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// A named collection of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up window per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Annotates subsequent benchmarks with a throughput unit.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            median_ns: 0.0,
        };
        f(&mut bencher);
        self.report(&id.id, bencher.median_ns);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            median_ns: 0.0,
        };
        f(&mut bencher, input);
        self.report(&id.id, bencher.median_ns);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}

    fn report(&self, id: &str, median_ns: f64) {
        let label = if id.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id)
        };
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if median_ns > 0.0 => {
                format!(
                    "  {:.1} MiB/s",
                    n as f64 / median_ns * 1e9 / (1024.0 * 1024.0)
                )
            }
            Some(Throughput::Elements(n)) if median_ns > 0.0 => {
                format!("  {:.1} Melem/s", n as f64 / median_ns * 1e9 / 1e6)
            }
            _ => String::new(),
        };
        println!("bench {label:<40} median {}{rate}", fmt_ns(median_ns));
        if let Ok(path) = std::env::var("AIPOW_BENCH_JSON") {
            if !path.is_empty() {
                // Best-effort: an unwritable path must not fail the bench.
                let _ = append_json_line(&path, &self.name, id, median_ns, self.throughput);
            }
        }
    }
}

/// Appends one JSON-Lines record for a finished benchmark.
fn append_json_line(
    path: &str,
    group: &str,
    id: &str,
    median_ns: f64,
    throughput: Option<Throughput>,
) -> std::io::Result<()> {
    let throughput_json = match throughput {
        Some(Throughput::Bytes(n)) => format!(
            ",\"throughput\":{{\"unit\":\"bytes\",\"per_iter\":{n},\"per_sec\":{:.1}}}",
            if median_ns > 0.0 {
                n as f64 / median_ns * 1e9
            } else {
                0.0
            }
        ),
        Some(Throughput::Elements(n)) => format!(
            ",\"throughput\":{{\"unit\":\"elements\",\"per_iter\":{n},\"per_sec\":{:.1}}}",
            if median_ns > 0.0 {
                n as f64 / median_ns * 1e9
            } else {
                0.0
            }
        ),
        None => String::new(),
    };
    let line = format!(
        "{{\"group\":\"{}\",\"id\":\"{}\",\"median_ns\":{:.1}{}}}\n",
        json_escape(group),
        json_escape(id),
        median_ns,
        throughput_json,
    );
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    file.write_all(line.as_bytes())
}

/// Escapes the characters benchmark names could plausibly contain.
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    median_ns: f64,
}

impl Bencher {
    /// Times `routine`, running it repeatedly inside the measurement
    /// window.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: also estimates per-iteration cost to size batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;

        let budget_ns = self.measurement_time.as_nanos() as f64;
        let per_sample_ns = budget_ns / self.sample_size as f64;
        let batch = ((per_sample_ns / per_iter.max(1.0)) as u64).clamp(1, 1 << 24);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2];
    }

    /// Times `routine` over fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        let deadline = Instant::now() + self.warm_up_time + self.measurement_time;
        for i in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            samples.push(t.elapsed().as_nanos() as f64);
            if i >= 1 && Instant::now() > deadline {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2];
    }

    /// `iter_batched` variant taking inputs by reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(&mut setup, |mut input| routine(&mut input), size);
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs every group, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_are_well_formed() {
        let path = std::env::temp_dir().join(format!(
            "aipow_bench_json_test_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let path_str = path.to_str().unwrap();
        append_json_line(
            path_str,
            "group",
            "id/1",
            123.45,
            Some(Throughput::Elements(10)),
        )
        .unwrap();
        append_json_line(path_str, "grp\"2", "", 0.0, None).unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"group\":\"group\",\"id\":\"id/1\",\"median_ns\":123.5,\
             \"throughput\":{\"unit\":\"elements\",\"per_iter\":10,\"per_sec\":81004455.2}}"
        );
        assert!(lines[1].starts_with("{\"group\":\"grp\\\"2\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bencher_records_positive_median() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1))
            .sample_size(3);
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(1));
        group.bench_function("iter", |b| b.iter(|| black_box(2u64 + 2)));
        group.bench_with_input(BenchmarkId::new("batched", 1), &1u64, |b, &x| {
            b.iter_batched(|| x, |v| black_box(v + 1), BatchSize::SmallInput)
        });
        group.finish();
    }
}
