//! Model-checked atomic integers and booleans.
//!
//! Each operation is a single schedule point, so the scheduler
//! explores every interleaving of atomic accesses while the operation
//! itself stays indivisible (delegated to the real `std` atomic). The
//! memory model is sequentially consistent: `Ordering` arguments are
//! accepted for API compatibility but never weakened — see the crate
//! docs for why, and what the `aipow-analyze` lint covers instead.

pub use std::sync::atomic::Ordering;

use crate::rt;

macro_rules! atomic_int {
    ($name:ident, $std:ty, $int:ty, $op:literal) => {
        /// Model-checked drop-in for the `std` atomic of the same
        /// name: every access is a schedule point inside a model and a
        /// plain delegation outside one.
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            /// Creates an atomic with the given initial value.
            pub const fn new(value: $int) -> Self {
                Self {
                    inner: <$std>::new(value),
                }
            }

            /// Loads the current value.
            pub fn load(&self, order: Ordering) -> $int {
                rt::schedule_op(concat!($op, "-load"));
                self.inner.load(order)
            }

            /// Stores `value`.
            pub fn store(&self, value: $int, order: Ordering) {
                rt::schedule_op(concat!($op, "-store"));
                self.inner.store(value, order)
            }

            /// Replaces the value, returning the previous one.
            pub fn swap(&self, value: $int, order: Ordering) -> $int {
                rt::schedule_op(concat!($op, "-swap"));
                self.inner.swap(value, order)
            }

            /// Adds, returning the previous value.
            pub fn fetch_add(&self, value: $int, order: Ordering) -> $int {
                rt::schedule_op(concat!($op, "-fetch_add"));
                self.inner.fetch_add(value, order)
            }

            /// Subtracts, returning the previous value.
            pub fn fetch_sub(&self, value: $int, order: Ordering) -> $int {
                rt::schedule_op(concat!($op, "-fetch_sub"));
                self.inner.fetch_sub(value, order)
            }

            /// Stores the maximum of the current and given values,
            /// returning the previous value.
            pub fn fetch_max(&self, value: $int, order: Ordering) -> $int {
                rt::schedule_op(concat!($op, "-fetch_max"));
                self.inner.fetch_max(value, order)
            }

            /// Stores `new` if the current value is `current`.
            pub fn compare_exchange(
                &self,
                current: $int,
                new: $int,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$int, $int> {
                rt::schedule_op(concat!($op, "-cas"));
                self.inner.compare_exchange(current, new, success, failure)
            }

            /// Mutable access without synchronization (requires
            /// `&mut self`).
            pub fn get_mut(&mut self) -> &mut $int {
                self.inner.get_mut()
            }

            /// Consumes the atomic, returning the value.
            pub fn into_inner(self) -> $int {
                self.inner.into_inner()
            }
        }
    };
}

atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64, "u64");
atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize, "usize");
atomic_int!(AtomicU32, std::sync::atomic::AtomicU32, u32, "u32");
atomic_int!(AtomicI64, std::sync::atomic::AtomicI64, i64, "i64");

/// Model-checked drop-in for `std::sync::atomic::AtomicBool`.
#[derive(Debug, Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// Creates an atomic with the given initial value.
    pub const fn new(value: bool) -> Self {
        Self {
            inner: std::sync::atomic::AtomicBool::new(value),
        }
    }

    /// Loads the current value.
    pub fn load(&self, order: Ordering) -> bool {
        rt::schedule_op("bool-load");
        self.inner.load(order)
    }

    /// Stores `value`.
    pub fn store(&self, value: bool, order: Ordering) {
        rt::schedule_op("bool-store");
        self.inner.store(value, order)
    }

    /// Replaces the value, returning the previous one.
    pub fn swap(&self, value: bool, order: Ordering) -> bool {
        rt::schedule_op("bool-swap");
        self.inner.swap(value, order)
    }

    /// Stores `new` if the current value is `current`.
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        rt::schedule_op("bool-cas");
        self.inner.compare_exchange(current, new, success, failure)
    }

    /// Mutable access without synchronization (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut bool {
        self.inner.get_mut()
    }

    /// Consumes the atomic, returning the value.
    pub fn into_inner(self) -> bool {
        self.inner.into_inner()
    }
}
