//! The execution engine behind [`crate::model`].
//!
//! One *execution* runs the model closure once under a cooperative
//! scheduler: every shimmed operation (atomic access, lock acquire,
//! thread spawn/join) is a *schedule point* where the scheduler decides
//! which registered thread runs next. Threads are real OS threads, but
//! exactly one is ever released at a time, so the interleaving of
//! visible operations is fully determined by the sequence of scheduling
//! choices. The driver in `lib.rs` re-runs the closure, depth-first
//! enumerating every choice sequence (up to the preemption bound), so a
//! failing interleaving is found deterministically rather than by luck.
//!
//! Threads that are not registered with an execution (no model running
//! on this thread) fall through every shim unchanged, so code compiled
//! with the `loom-model` feature still behaves normally outside
//! `loom::model`.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Thread id of the thread that calls [`crate::model`].
pub(crate) const MAIN_TID: usize = 0;

/// Panic payload used to unwind model threads out of user code when the
/// execution is aborted (first failure wins; everyone else gets this).
pub(crate) const ABORT_MSG: &str = "loom-model: execution aborted";

thread_local! {
    static CTX: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

/// The calling thread's registration with a running execution.
#[derive(Clone)]
pub(crate) struct ThreadCtx {
    pub(crate) exec: Arc<Execution>,
    pub(crate) tid: usize,
}

pub(crate) fn current_ctx() -> Option<ThreadCtx> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_ctx(ctx: Option<ThreadCtx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// Whether the calling thread is registered with a model execution.
/// Used by the panic hook: panics inside a model are caught, recorded
/// with their interleaving trace, and re-reported by the checker, so
/// the default printer would only duplicate them.
pub(crate) fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Schedule point for a plain visible operation (atomic access,
/// `OnceLock::get`, `yield_now`). No-op outside a model or during a
/// panic unwind (shim guards may touch primitives while unwinding).
pub(crate) fn schedule_op(op: &'static str) {
    if std::thread::panicking() {
        return;
    }
    if let Some(ctx) = current_ctx() {
        ctx.exec.schedule(ctx.tid, op);
    }
}

/// Model-level exclusive acquire (mutex, rwlock writer, oncelock init).
pub(crate) fn acquire_exclusive(addr: usize, op: &'static str) {
    if std::thread::panicking() {
        return;
    }
    if let Some(ctx) = current_ctx() {
        ctx.exec.acquire(ctx.tid, addr, false, op);
    }
}

/// Model-level shared acquire (rwlock reader).
pub(crate) fn acquire_shared(addr: usize, op: &'static str) {
    if std::thread::panicking() {
        return;
    }
    if let Some(ctx) = current_ctx() {
        ctx.exec.acquire(ctx.tid, addr, true, op);
    }
}

/// Model-level release. Must never panic: it runs from guard `Drop`
/// impls, possibly during unwinding.
pub(crate) fn release(addr: usize, shared: bool) {
    if let Some(ctx) = current_ctx() {
        ctx.exec.release(addr, shared);
    }
}

/// Best-effort extraction of a panic payload message.
pub(crate) fn payload_msg(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// What a registered thread is currently allowed to do.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    Runnable,
    Blocked(Resource),
    Finished,
}

/// What a blocked thread is waiting for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Resource {
    /// A model-level lock, keyed by the primitive's address.
    Lock(usize),
    /// Another thread's termination.
    Join(usize),
}

/// Model-level state of one lock (mutex: `writer` only; rwlock: both).
#[derive(Default)]
struct LockState {
    writer: Option<usize>,
    readers: usize,
}

/// One scheduling decision: the threads that were explorable at this
/// point and which of them the current run takes.
#[derive(Clone, Debug)]
pub(crate) struct Choice {
    explorable: Vec<usize>,
    next: usize,
}

impl Choice {
    /// Advances to this node's next unexplored alternative, if any.
    pub(crate) fn advance(&mut self) -> bool {
        if self.next + 1 < self.explorable.len() {
            self.next += 1;
            true
        } else {
            false
        }
    }
}

struct SchedState {
    runs: Vec<Run>,
    current: usize,
    /// The exploration path: replayed prefix plus this run's extensions.
    path: Vec<Choice>,
    /// Index of the next path node to consume.
    depth: usize,
    /// Preemptive (away-from-a-runnable-thread) switches taken so far.
    preemptions: usize,
    locks: HashMap<usize, LockState>,
    /// `(tid, op)` per schedule point, for failure reports.
    trace: Vec<(usize, &'static str)>,
    failure: Option<String>,
    aborted: bool,
    /// Registered threads not yet finished.
    live: usize,
}

impl SchedState {
    fn enabled(&self) -> Vec<usize> {
        self.runs
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == Run::Runnable)
            .map(|(t, _)| t)
            .collect()
    }

    fn format_trace(&self) -> String {
        let steps: Vec<String> = self
            .trace
            .iter()
            .map(|(tid, op)| format!("t{tid}:{op}"))
            .collect();
        steps.join(" -> ")
    }

    fn fail(&mut self, message: String) {
        if self.failure.is_none() {
            let trace = self.format_trace();
            self.failure = Some(format!("{message}\n  interleaving: [{trace}]"));
        }
        self.aborted = true;
    }
}

/// One run of the model closure under the scheduler.
pub(crate) struct Execution {
    state: Mutex<SchedState>,
    cv: Condvar,
    preemption_bound: usize,
}

impl Execution {
    pub(crate) fn new(path: Vec<Choice>, preemption_bound: usize) -> Arc<Self> {
        Arc::new(Execution {
            state: Mutex::new(SchedState {
                runs: vec![Run::Runnable],
                current: MAIN_TID,
                path,
                depth: 0,
                preemptions: 0,
                locks: HashMap::new(),
                trace: Vec::new(),
                failure: None,
                aborted: false,
                live: 1,
            }),
            cv: Condvar::new(),
            preemption_bound,
        })
    }

    fn lock_state(&self) -> MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until this thread is the scheduled one (or the execution
    /// aborts, in which case it unwinds with [`ABORT_MSG`]).
    fn wait_for_turn<'a>(
        &'a self,
        mut st: MutexGuard<'a, SchedState>,
        tid: usize,
    ) -> MutexGuard<'a, SchedState> {
        loop {
            if st.aborted {
                drop(st);
                panic!("{ABORT_MSG}");
            }
            if st.current == tid {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// The set of threads explorable at a fresh decision point: the
    /// running thread first (so depth-first search tries the
    /// switch-free schedule before any preemption), then every other
    /// runnable thread — unless the preemption budget is spent, in
    /// which case the running thread must continue.
    fn explorable(&self, st: &SchedState, me: usize, enabled: &[usize]) -> Vec<usize> {
        let me_enabled = enabled.contains(&me);
        if me_enabled && st.preemptions >= self.preemption_bound {
            vec![me]
        } else if me_enabled {
            let mut v = vec![me];
            v.extend(enabled.iter().copied().filter(|&t| t != me));
            v
        } else {
            enabled.to_vec()
        }
    }

    /// Consumes (or creates) the decision node for this schedule point
    /// and returns the chosen thread.
    fn choose(&self, st: &mut SchedState, me: usize, op: &'static str) -> usize {
        let enabled = st.enabled();
        let explorable = self.explorable(st, me, &enabled);
        let chosen = if explorable.len() == 1 {
            // No alternative: not a branching node, consume no depth.
            explorable[0]
        } else {
            let d = st.depth;
            st.depth += 1;
            if d < st.path.len() {
                let node = &st.path[d];
                if node.explorable != explorable {
                    let expected = node.explorable.clone();
                    st.fail(format!(
                        "nondeterministic execution: replay expected choices \
                         {expected:?} at step {d} but found {explorable:?} — \
                         model closures must be deterministic (no wall clocks, \
                         no random hashing)"
                    ));
                    self.cv.notify_all();
                    // Unwinds with the guard held; the poison is cleared by
                    // every other locker via `into_inner`.
                    panic!("{ABORT_MSG}");
                }
                st.path[d].explorable[st.path[d].next]
            } else {
                let first = explorable[0];
                st.path.push(Choice {
                    explorable,
                    next: 0,
                });
                first
            }
        };
        st.trace.push((chosen, op));
        chosen
    }

    /// Schedule point for a runnable thread: decide who runs next, and
    /// if it is not the caller, hand over and wait to be rescheduled.
    pub(crate) fn schedule(&self, tid: usize, op: &'static str) {
        let mut st = self.lock_state();
        if st.aborted {
            drop(st);
            panic!("{ABORT_MSG}");
        }
        let chosen = self.choose(&mut st, tid, op);
        if chosen != tid {
            // The caller could have continued: this is a preemption.
            st.preemptions += 1;
            st.current = chosen;
            self.cv.notify_all();
            st = self.wait_for_turn(st, tid);
        }
        drop(st);
    }

    /// Parks the caller on `res` and schedules another thread. Returns
    /// once the caller has been woken *and* scheduled again.
    fn block(&self, tid: usize, res: Resource, op: &'static str) {
        let mut st = self.lock_state();
        if st.aborted {
            drop(st);
            panic!("{ABORT_MSG}");
        }
        st.runs[tid] = Run::Blocked(res);
        if st.enabled().is_empty() {
            st.fail("deadlock: every live thread is blocked".to_string());
            self.cv.notify_all();
            drop(st);
            panic!("{ABORT_MSG}");
        }
        let chosen = self.choose(&mut st, tid, op);
        st.current = chosen;
        self.cv.notify_all();
        st = self.wait_for_turn(st, tid);
        drop(st);
    }

    fn wake(st: &mut SchedState, res: Resource) {
        for run in st.runs.iter_mut() {
            if *run == Run::Blocked(res) {
                *run = Run::Runnable;
            }
        }
    }

    /// Model-level lock acquire: a schedule point, then take the lock
    /// or park until its holder releases it.
    pub(crate) fn acquire(&self, tid: usize, addr: usize, shared: bool, op: &'static str) {
        loop {
            self.schedule(tid, op);
            let mut st = self.lock_state();
            let entry = st.locks.entry(addr).or_default();
            if entry.writer == Some(tid) {
                st.fail(format!(
                    "thread {tid} acquired a lock it already holds (self-deadlock)"
                ));
                self.cv.notify_all();
                drop(st);
                panic!("{ABORT_MSG}");
            }
            let free = if shared {
                entry.writer.is_none()
            } else {
                entry.writer.is_none() && entry.readers == 0
            };
            if free {
                if shared {
                    entry.readers += 1;
                } else {
                    entry.writer = Some(tid);
                }
                return;
            }
            drop(st);
            self.block(tid, Resource::Lock(addr), op);
        }
    }

    /// Model-level release. Never panics: runs from guard drops,
    /// possibly during unwinding.
    pub(crate) fn release(&self, addr: usize, shared: bool) {
        let mut st = self.lock_state();
        if st.aborted {
            return;
        }
        let entry = st.locks.entry(addr).or_default();
        if shared {
            entry.readers = entry.readers.saturating_sub(1);
            if entry.readers > 0 {
                return;
            }
        } else {
            entry.writer = None;
        }
        Self::wake(&mut st, Resource::Lock(addr));
    }

    /// Registers a new model thread; it starts runnable but only runs
    /// once scheduled.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.lock_state();
        let tid = st.runs.len();
        st.runs.push(Run::Runnable);
        st.live += 1;
        tid
    }

    /// First wait of a freshly spawned model thread.
    pub(crate) fn wait_until_scheduled(&self, tid: usize) {
        let st = self.lock_state();
        let st = self.wait_for_turn(st, tid);
        drop(st);
    }

    /// Marks `tid` finished (optionally with a panic message), wakes
    /// joiners, and hands the schedule to a remaining thread.
    pub(crate) fn thread_finished(&self, tid: usize, panicked: Option<String>) {
        let mut st = self.lock_state();
        st.runs[tid] = Run::Finished;
        st.live -= 1;
        if st.aborted {
            self.cv.notify_all();
            return;
        }
        if let Some(msg) = panicked {
            if msg != ABORT_MSG {
                st.fail(format!("thread {tid} panicked: {msg}"));
            }
            st.aborted = true;
            self.cv.notify_all();
            return;
        }
        Self::wake(&mut st, Resource::Join(tid));
        let enabled = st.enabled();
        if enabled.is_empty() {
            if st.live > 0 {
                st.fail("deadlock: every live thread is blocked".to_string());
            }
            self.cv.notify_all();
            return;
        }
        let chosen = self.choose(&mut st, tid, "thread-exit");
        st.current = chosen;
        self.cv.notify_all();
    }

    /// Model-level join: parks until `target` finishes.
    pub(crate) fn join_thread(&self, tid: usize, target: usize) {
        loop {
            self.schedule(tid, "join");
            let st = self.lock_state();
            if st.runs[target] == Run::Finished {
                return;
            }
            drop(st);
            self.block(tid, Resource::Join(target), "join");
        }
    }

    /// Called by the model driver after the closure returns: finishes
    /// the main thread, keeps scheduling the remaining threads, and
    /// returns once every registered thread has finished.
    pub(crate) fn finish_main(&self) {
        self.thread_finished(MAIN_TID, None);
        let mut st = self.lock_state();
        while st.live > 0 {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Records a main-thread panic (unless it is the abort sentinel),
    /// aborts every remaining thread, and waits for them to unwind.
    pub(crate) fn abort_from_main(&self, msg: String) {
        {
            let mut st = self.lock_state();
            st.runs[MAIN_TID] = Run::Finished;
            st.live -= 1;
            if msg != ABORT_MSG {
                st.fail(format!("model closure panicked: {msg}"));
            }
            st.aborted = true;
            self.cv.notify_all();
        }
        let mut st = self.lock_state();
        while st.live > 0 {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Consumes the run's results: the (possibly extended) path, the
    /// failure if any, and the trace of the final interleaving.
    pub(crate) fn take_results(&self) -> (Vec<Choice>, Option<String>, String) {
        let mut st = self.lock_state();
        let path = std::mem::take(&mut st.path);
        let failure = st.failure.take();
        let trace = st.format_trace();
        (path, failure, trace)
    }
}
