//! Model-checked stand-ins for the workspace's synchronization
//! primitives.
//!
//! Inside [`crate::model`], every acquisition is a schedule point and
//! mutual exclusion is enforced at the *model* level (the scheduler
//! parks contending threads), so the checker explores who wins each
//! race. Outside a model, everything delegates to `std`.
//!
//! The lock APIs are non-poisoning and mirror the `parking_lot`
//! stand-in the production crates use (`lock()` returns the guard
//! directly), so a `cfg`-switched facade can re-export either without
//! touching call sites. [`OnceLock`] mirrors `std::sync::OnceLock`.

pub use std::sync::Arc;

pub mod atomic;

use crate::rt;
use std::fmt;
use std::sync::PoisonError;

/// The model-level identity of a primitive is its address: stable for
/// the lifetime of the model run, and shims never move while locked.
fn addr_of<T>(v: &T) -> usize {
    v as *const T as *const () as usize
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A model-checked mutual-exclusion lock (non-poisoning API).
#[derive(Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`]; releases the model-level lock on
/// drop.
pub struct MutexGuard<'a, T> {
    inner: std::sync::MutexGuard<'a, T>,
    addr: usize,
}

impl<T> Mutex<T> {
    /// Creates an unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, parking this model thread until the holder
    /// releases it. Self-acquisition is reported as a model failure.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let addr = addr_of(self);
        rt::acquire_exclusive(addr, "mutex-lock");
        MutexGuard {
            // The model level already guarantees exclusivity; this
            // never contends inside a model. Outside one it *is* the
            // lock.
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
            addr,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Model release first: it only marks waiters runnable — none
        // can *run* until our next schedule point, by which time the
        // inner std guard (dropped right after this body) is gone.
        rt::release(self.addr, false);
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// A model-checked readers-writer lock (non-poisoning API).
#[derive(Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access guard from [`RwLock::read`].
pub struct RwLockReadGuard<'a, T> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    addr: usize,
}

/// Exclusive-access guard from [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    addr: usize,
}

impl<T> RwLock<T> {
    /// Creates an unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires shared access; parks while a writer holds the lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let addr = addr_of(self);
        rt::acquire_shared(addr, "rwlock-read");
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
            addr,
        }
    }

    /// Acquires exclusive access; parks while any guard is live.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let addr = addr_of(self);
        rt::acquire_exclusive(addr, "rwlock-write");
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
            addr,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        rt::release(self.addr, true);
    }
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        rt::release(self.addr, false);
    }
}

// ---------------------------------------------------------------------------
// OnceLock
// ---------------------------------------------------------------------------

/// A model-checked write-once cell mirroring `std::sync::OnceLock`.
///
/// In a model, [`set`](Self::set) and [`get_or_init`](Self::get_or_init)
/// serialize through a model-level init lock so the checker explores
/// which racer publishes; [`get`](Self::get) is a plain schedule point
/// (one atomic load on the real hot path).
#[derive(Default)]
pub struct OnceLock<T> {
    inner: std::sync::OnceLock<T>,
}

impl<T> OnceLock<T> {
    /// Creates an empty cell.
    pub const fn new() -> Self {
        OnceLock {
            inner: std::sync::OnceLock::new(),
        }
    }

    /// Returns the published value, if any.
    pub fn get(&self) -> Option<&T> {
        rt::schedule_op("oncelock-get");
        self.inner.get()
    }

    /// Publishes `value` if the cell is empty; returns it back in
    /// `Err` if another publisher won.
    pub fn set(&self, value: T) -> Result<(), T> {
        let addr = addr_of(self);
        rt::acquire_exclusive(addr, "oncelock-set");
        let result = self.inner.set(value);
        rt::release(addr, false);
        result
    }

    /// Returns the published value, initializing it with `f` if empty.
    /// Exactly one racing initializer runs.
    pub fn get_or_init<F: FnOnce() -> T>(&self, f: F) -> &T {
        if let Some(v) = self.get() {
            return v;
        }
        let addr = addr_of(self);
        rt::acquire_exclusive(addr, "oncelock-init");
        // Inside a model the init lock serializes racers, so std's own
        // blocking path is never exercised there; outside one it is
        // the real synchronization.
        let v = self.inner.get_or_init(f);
        rt::release(addr, false);
        v
    }
}

impl<T: fmt::Debug> fmt::Debug for OnceLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("OnceLock").field(&self.inner.get()).finish()
    }
}
