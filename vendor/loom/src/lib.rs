//! Offline stand-in for [loom](https://github.com/tokio-rs/loom): a
//! bounded-preemption deterministic concurrency model checker.
//!
//! # What this is
//!
//! A small API-subset re-implementation of loom's *permutation testing*
//! idea, vendored so the workspace stays offline (the same approach as
//! the other `vendor/` crates). [`model`] runs a closure many times,
//! deterministically enumerating the interleavings of every *visible
//! operation* — accesses through [`sync::atomic`] types, acquisitions
//! of [`sync::Mutex`]/[`sync::RwLock`], [`sync::OnceLock`]
//! initialization, and [`thread`] spawn/join — until either every
//! schedule (up to the preemption bound) has been explored or one of
//! them fails.
//!
//! ```
//! use loom::sync::atomic::{AtomicU64, Ordering};
//! use loom::sync::Arc;
//!
//! loom::model(|| {
//!     let n = Arc::new(AtomicU64::new(0));
//!     let n2 = n.clone();
//!     let t = loom::thread::spawn(move || {
//!         n2.fetch_add(1, Ordering::Relaxed);
//!     });
//!     n.fetch_add(1, Ordering::Relaxed);
//!     t.join().expect("model thread join: invariant");
//!     assert_eq!(n.load(Ordering::Relaxed), 2);
//! });
//! ```
//!
//! # How it differs from real loom
//!
//! - **Sequentially consistent memory model.** Every shimmed operation
//!   is globally ordered by the scheduler; `Ordering` arguments are
//!   accepted but not weakened. Real loom additionally explores
//!   store-buffer effects of `Relaxed`/`Acquire`/`Release`. This
//!   stand-in therefore catches *interleaving* bugs (lost updates,
//!   check-then-act races, deadlocks, double-init) but not
//!   *reordering* bugs. The `aipow-analyze` lint compensates by
//!   requiring a written justification for every `Relaxed`.
//! - **Non-poisoning locks.** `Mutex::lock` returns the guard
//!   directly, mirroring the `parking_lot` stand-in the production
//!   crates use, so `cfg`-switched call sites stay identical.
//! - **Bounded preemption, not partial-order reduction.** Schedules
//!   are pruned by limiting *preemptive* context switches (default 2),
//!   the classic CHESS result: almost all real concurrency bugs
//!   manifest within two preemptions.
//!
//! # Fallback behavior
//!
//! Outside [`model`] every shim delegates straight to `std`, so a test
//! binary compiled with the `loom-model` feature can freely mix model
//! tests and ordinary tests.

#![forbid(unsafe_code)]

mod rt;
pub mod sync;
pub mod thread;

use rt::{Choice, Execution, ThreadCtx, MAIN_TID};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

/// Environment variable capping the number of explored interleavings
/// per [`model`] call (CI keeps the model suite bounded with this).
pub const MAX_ITERS_ENV: &str = "AIPOW_LOOM_MAX_ITERS";

const DEFAULT_MAX_ITERATIONS: usize = 100_000;
const DEFAULT_PREEMPTION_BOUND: usize = 2;

/// Exploration statistics for a passing model run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Interleavings executed.
    pub iterations: usize,
    /// `true` if the bounded schedule space was exhausted; `false` if
    /// exploration stopped at the iteration cap.
    pub complete: bool,
}

/// A failing interleaving: the first schedule on which the model
/// closure panicked, deadlocked, or double-acquired a lock.
#[derive(Debug, Clone)]
pub struct Failure {
    /// What went wrong, including the interleaving trace.
    pub message: String,
    /// Interleavings executed up to and including the failing one.
    pub iterations: usize,
    /// The failing interleaving as `tN:op` steps.
    pub trace: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model failed after {} interleaving(s): {}",
            self.iterations, self.message
        )
    }
}

/// Configures a model-checking run.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Maximum preemptive context switches per interleaving.
    pub preemption_bound: usize,
    /// Maximum interleavings to explore (also settable via the
    /// [`MAX_ITERS_ENV`] environment variable, which takes precedence
    /// at construction time).
    pub max_iterations: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Self::new()
    }
}

impl Builder {
    /// A builder with the default preemption bound (2) and the
    /// iteration cap from [`MAX_ITERS_ENV`] if set.
    pub fn new() -> Self {
        let max_iterations = std::env::var(MAX_ITERS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(DEFAULT_MAX_ITERATIONS);
        Builder {
            preemption_bound: DEFAULT_PREEMPTION_BOUND,
            max_iterations,
        }
    }

    /// Explores `f`'s interleavings, panicking on the first failing
    /// one with its trace.
    pub fn check<F: Fn()>(&self, f: F) {
        if let Err(failure) = self.try_check(f) {
            panic!("{failure}");
        }
    }

    /// Explores `f`'s interleavings and reports the outcome instead of
    /// panicking — the hook `aipow-analyze --self-test` uses to assert
    /// that seeded bugs *are* caught.
    pub fn try_check<F: Fn()>(&self, f: F) -> Result<Report, Failure> {
        install_panic_hook();
        let mut path: Vec<Choice> = Vec::new();
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            let exec = Execution::new(path, self.preemption_bound);
            rt::set_ctx(Some(ThreadCtx {
                exec: Arc::clone(&exec),
                tid: MAIN_TID,
            }));
            match catch_unwind(AssertUnwindSafe(&f)) {
                Ok(()) => exec.finish_main(),
                Err(payload) => exec.abort_from_main(rt::payload_msg(payload.as_ref())),
            }
            rt::set_ctx(None);
            let (new_path, failure, trace) = exec.take_results();
            if let Some(message) = failure {
                return Err(Failure {
                    message,
                    iterations,
                    trace,
                });
            }
            path = new_path;
            if !advance_path(&mut path) {
                return Ok(Report {
                    iterations,
                    complete: true,
                });
            }
            if iterations >= self.max_iterations {
                return Ok(Report {
                    iterations,
                    complete: false,
                });
            }
        }
    }
}

use std::sync::Arc;

/// Depth-first backtracking: advance the deepest decision node that
/// still has an unexplored alternative, discarding the (now invalid)
/// deeper suffix. Returns `false` when the whole space is exhausted.
fn advance_path(path: &mut Vec<Choice>) -> bool {
    while let Some(last) = path.last_mut() {
        if last.advance() {
            return true;
        }
        path.pop();
    }
    false
}

/// Explores every interleaving of `f` (up to the default bounds),
/// panicking on the first failure. See the crate docs for an example.
pub fn model<F: Fn()>(f: F) {
    Builder::new().check(f);
}

/// Silences the default panic printer for the internal abort sentinel:
/// when one interleaving fails, every other model thread is unwound
/// via a sentinel panic that is expected and already accounted for.
/// `check`/`try_check` install it automatically; binaries that drive
/// the checker directly may call it up front for quieter output.
pub fn install_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let is_abort = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| *s == rt::ABORT_MSG);
            // Panics on model-registered threads are caught and
            // re-reported by the checker with their interleaving
            // trace; printing them here would duplicate the report.
            if !is_abort && !rt::in_model() {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::atomic::{AtomicU64, Ordering};
    use crate::sync::{Arc, Mutex, OnceLock};

    #[test]
    fn finds_lost_update_from_load_then_store() {
        // Classic read-modify-write race: both threads load 0, both
        // store 1; the final value 1 (instead of 2) must be found.
        let failure = Builder::new()
            .try_check(|| {
                let n = Arc::new(AtomicU64::new(0));
                let n2 = Arc::clone(&n);
                let t = crate::thread::spawn(move || {
                    let v = n2.load(Ordering::Relaxed);
                    n2.store(v + 1, Ordering::Relaxed);
                });
                let v = n.load(Ordering::Relaxed);
                n.store(v + 1, Ordering::Relaxed);
                t.join().expect("join: invariant");
                assert_eq!(n.load(Ordering::Relaxed), 2, "lost update");
            })
            .expect_err("the lost update must be discoverable");
        assert!(failure.message.contains("lost update"), "{failure}");
    }

    #[test]
    fn fetch_add_is_atomic_and_space_is_exhausted() {
        let report = Builder::new()
            .try_check(|| {
                let n = Arc::new(AtomicU64::new(0));
                let n2 = Arc::clone(&n);
                let t = crate::thread::spawn(move || {
                    n2.fetch_add(1, Ordering::Relaxed);
                });
                n.fetch_add(1, Ordering::Relaxed);
                t.join().expect("join: invariant");
                assert_eq!(n.load(Ordering::Relaxed), 2);
            })
            .expect("fetch_add must never lose an update");
        assert!(report.complete, "small model must exhaust its space");
        assert!(report.iterations > 1, "must explore > 1 interleaving");
    }

    #[test]
    fn detects_lock_order_deadlock() {
        let failure = Builder::new()
            .try_check(|| {
                let a = Arc::new(Mutex::new(0u32));
                let b = Arc::new(Mutex::new(0u32));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let t = crate::thread::spawn(move || {
                    let _ga = a2.lock();
                    let _gb = b2.lock();
                });
                let _gb = b.lock();
                let _ga = a.lock();
                drop((_gb, _ga));
                t.join().expect("join: invariant");
            })
            .expect_err("AB/BA lock order must deadlock in some schedule");
        assert!(failure.message.contains("deadlock"), "{failure}");
    }

    #[test]
    fn oncelock_set_succeeds_exactly_once() {
        let report = Builder::new()
            .try_check(|| {
                let cell = Arc::new(OnceLock::new());
                let cell2 = Arc::clone(&cell);
                let t = crate::thread::spawn(move || cell2.set(2u32).is_ok());
                let mine = cell.set(1u32).is_ok();
                let theirs = t.join().expect("join: invariant");
                assert!(
                    mine ^ theirs,
                    "exactly one of two concurrent set()s must win"
                );
                let v = *cell.get().expect("a winner published: invariant");
                assert!(v == 1 || v == 2);
            })
            .expect("write-once cell must never double-publish");
        assert!(report.complete);
    }

    #[test]
    fn mutex_guards_critical_section() {
        Builder::new().check(|| {
            let n = Arc::new(Mutex::new(0u64));
            let n2 = Arc::clone(&n);
            let t = crate::thread::spawn(move || {
                let mut g = n2.lock();
                let v = *g;
                *g = v + 1;
            });
            {
                let mut g = n.lock();
                let v = *g;
                *g = v + 1;
            }
            t.join().expect("join: invariant");
            assert_eq!(*n.lock(), 2);
        });
    }

    #[test]
    fn self_deadlock_is_reported() {
        let failure = Builder::new()
            .try_check(|| {
                let m = Mutex::new(0u32);
                let _g1 = m.lock();
                let _g2 = m.lock();
            })
            .expect_err("recursive lock must be reported");
        assert!(failure.message.contains("self-deadlock"), "{failure}");
    }

    #[test]
    fn iteration_cap_stops_exploration_incomplete() {
        let report = Builder {
            preemption_bound: 2,
            max_iterations: 2,
        }
        .try_check(|| {
            let n = Arc::new(AtomicU64::new(0));
            let n2 = Arc::clone(&n);
            let t = crate::thread::spawn(move || {
                n2.fetch_add(1, Ordering::Relaxed);
                n2.fetch_add(1, Ordering::Relaxed);
            });
            n.fetch_add(1, Ordering::Relaxed);
            n.fetch_add(1, Ordering::Relaxed);
            t.join().expect("join: invariant");
        })
        .expect("capped run must still pass");
        assert_eq!(report.iterations, 2);
        assert!(!report.complete);
    }

    #[test]
    fn shims_fall_back_to_std_outside_model() {
        // No `model()` wrapper: every shim must behave like std.
        let n = AtomicU64::new(41);
        assert_eq!(n.fetch_add(1, Ordering::SeqCst), 41);
        assert_eq!(n.load(Ordering::SeqCst), 42);
        let m = Mutex::new(7u32);
        assert_eq!(*m.lock(), 7);
        let cell = OnceLock::new();
        assert!(cell.set(3u32).is_ok());
        assert!(cell.set(4u32).is_err());
        assert_eq!(cell.get_or_init(|| 9), &3);
        let t = crate::thread::spawn(|| 5u32);
        assert_eq!(t.join().expect("join: invariant"), 5);
    }
}
