//! Model-checked thread spawn/join.
//!
//! Model threads are real OS threads, but the scheduler in `rt` only
//! ever lets one run at a time, so the interleaving of their visible
//! operations is exactly the scheduler's choice sequence. Outside a
//! model, [`spawn`] is `std::thread::spawn`.

use crate::rt::{self, ThreadCtx};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Handle to a spawned thread; `join` is a schedule point in a model.
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<Option<T>>,
    /// `Some((execution, tid))` when spawned inside a model.
    model: Option<(std::sync::Arc<crate::rt::Execution>, usize)>,
}

/// Spawns a thread. Inside a model, the child registers with the
/// running execution and only executes when scheduled; a panic in the
/// child is reported as a model failure.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::current_ctx() {
        None => JoinHandle {
            inner: std::thread::spawn(move || Some(f())),
            model: None,
        },
        Some(ctx) => {
            let tid = ctx.exec.register_thread();
            let exec = std::sync::Arc::clone(&ctx.exec);
            let inner = std::thread::spawn(move || {
                rt::set_ctx(Some(ThreadCtx {
                    exec: std::sync::Arc::clone(&exec),
                    tid,
                }));
                exec.wait_until_scheduled(tid);
                match catch_unwind(AssertUnwindSafe(f)) {
                    Ok(value) => {
                        exec.thread_finished(tid, None);
                        Some(value)
                    }
                    Err(payload) => {
                        exec.thread_finished(tid, Some(rt::payload_msg(payload.as_ref())));
                        None
                    }
                }
            });
            // Schedule point: the child is now a choice, so schedules
            // where it runs ahead of the parent are explored.
            ctx.exec.schedule(ctx.tid, "spawn");
            JoinHandle {
                inner,
                model: Some((ctx.exec, tid)),
            }
        }
    }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    ///
    /// In a model this parks the caller at the scheduler until the
    /// target has run to completion (or unwinds if the execution
    /// aborts), then collects the OS thread.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((exec, target)) = &self.model {
            if let Some(ctx) = rt::current_ctx() {
                exec.join_thread(ctx.tid, *target);
            }
        }
        match self.inner.join() {
            Ok(Some(value)) => Ok(value),
            // Only reachable when a model child panicked but the
            // joiner was not unwound (the execution had already been
            // aborted by the time the child finished).
            Ok(None) => Err(Box::new(rt::ABORT_MSG.to_string())),
            Err(payload) => Err(payload),
        }
    }
}

/// A schedule point with no visible effect; outside a model, a real
/// `std::thread::yield_now`.
pub fn yield_now() {
    if rt::current_ctx().is_some() {
        rt::schedule_op("yield");
    } else {
        std::thread::yield_now();
    }
}
