//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the panic-free `lock()/read()/write()` API the workspace uses.
//! Poisoning is translated by ignoring it (`into_inner` on the poison
//! error), matching parking_lot's semantics of not poisoning on panic.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion primitive (std-backed, non-poisoning API).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrows the protected value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock (std-backed, non-poisoning API).
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Acquires an exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Mutably borrows the protected value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}
