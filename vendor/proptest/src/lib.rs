//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`boxed`, `any::<T>()` over the
//! primitive and byte-array [`Arbitrary`] impls, integer/float range
//! strategies, character-class string strategies (`"[a-z]{0,40}"`),
//! [`collection::vec`], `prop_oneof!`, and the `proptest!` test macro
//! with `prop_assert!`/`prop_assert_eq!`.
//!
//! Cases are sampled from a deterministic SplitMix64 stream (fixed seed),
//! so failures reproduce across runs. There is no shrinking: a failing
//! case reports the case index and message and panics immediately.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Configuration and the deterministic case RNG.

    /// Per-test configuration. Only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Error carried out of a failing property body by the assertion
    /// macros.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl<E: std::error::Error> From<E> for TestCaseError {
        fn from(e: E) -> Self {
            Self(e.to_string())
        }
    }

    /// Deterministic SplitMix64 stream used to sample every case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed RNG all properties draw from.
        pub fn deterministic() -> Self {
            Self {
                state: 0xA1F0_57A7_E5EE_D000,
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from `rng`.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy for heterogeneous collections.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe sampling, the backing for [`BoxedStrategy`].
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-valued strategies; built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy over all values of `T`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy over all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, moderately sized values: sign * mantissa * 2^[-16, 16].
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        let exp = (rng.below(33) as i32 - 16) as f64;
        sign * rng.unit_f64() * exp.exp2()
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let word = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        out
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start as f64
                    + rng.unit_f64() * (self.end as f64 - self.start as f64);
                if v >= self.end as f64 { self.start } else { v as $t }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                (lo as f64 + rng.unit_f64() * (hi as f64 - lo as f64)) as $t
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

/// String strategy from a character-class pattern.
///
/// Supports exactly the shape the workspace uses: `[class]{lo,hi}` where
/// `class` mixes literal characters and `a-z` ranges. Any other pattern
/// is produced verbatim.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        match parse_class_pattern(self) {
            Some((alphabet, lo, hi)) => {
                let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                (0..len)
                    .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

/// Parses `[class]{lo,hi}` into (alphabet, lo, hi).
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let counts = rest[close + 1..]
        .strip_prefix('{')?
        .strip_suffix('}')?
        .split_once(',')?;
    let lo: usize = counts.0.trim().parse().ok()?;
    let hi: usize = counts.1.trim().parse().ok()?;
    if hi < lo {
        return None;
    }

    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        // `a-z` is a range unless `-` is the first or last class char.
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i] as u32, class[i + 2] as u32);
            for c in a..=b {
                alphabet.extend(char::from_u32(c));
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        None
    } else {
        Some((alphabet, lo, hi))
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A permitted size span for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with lengths in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Returns a strategy for vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The imports property tests conventionally glob in.

    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) by returning an error from the generated body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?}` == `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(lhs == rhs, $($fmt)*);
    }};
}

/// Asserts two values differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(lhs != rhs, "assertion failed: `{:?}` != `{:?}`", lhs, rhs);
    }};
}

/// Strategy backed by a sampling closure; used by `prop_compose!`.
pub struct FnStrategy<F>(F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Wraps a sampling closure as a [`Strategy`].
pub fn fn_strategy<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<F> {
    FnStrategy(f)
}

/// Defines a function returning a composed strategy, mirroring
/// proptest's `prop_compose!`: the first parameter list is ordinary
/// function arguments, the second binds sampled values, and the body
/// builds the output value.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($params:tt)*)(
        $($arg:pat in $strategy:expr),+ $(,)?
    ) -> $ret:ty $body:block) => {
        $(#[$meta])* $vis fn $name($($params)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::fn_strategy(move |rng: &mut $crate::test_runner::TestRng| {
                $(let $arg = $crate::Strategy::sample(&($strategy), rng);)+
                $body
            })
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            for case in 0..config.cases {
                let outcome = (|rng: &mut $crate::test_runner::TestRng| {
                    $(let $arg = $crate::Strategy::sample(&($strategy), rng);)+
                    (move || -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                })(&mut rng);
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property {} failed at case {}: {}", stringify!($name), case, e);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in 0.5f64..=1.5, flip in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..=1.5).contains(&y));
            let _ = flip;
        }

        #[test]
        fn strings_match_class(s in "[a-c_]{2,5}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5, "len {}", s.len());
            prop_assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '_')));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u8..10).prop_map(|n| n as u32),
            (100u32..110).prop_map(|n| n),
        ]) {
            prop_assert!(v < 10 || (100..110).contains(&v));
        }

        #[test]
        fn vectors_respect_size(v in crate::collection::vec(any::<u8>(), 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }
    }
}
