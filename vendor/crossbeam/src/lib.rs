//! Offline stand-in for `crossbeam`.
//!
//! Provides the two pieces this workspace uses: a bounded MPMC channel
//! (`crossbeam::channel::{bounded, Sender, Receiver}`) built on
//! `Mutex` + `Condvar`, and `crossbeam::thread::scope` built on
//! `std::thread::scope`.

#![forbid(unsafe_code)]

pub mod channel {
    //! Bounded multi-producer multi-consumer channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        cap: usize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half of a bounded channel.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// The receiving half of a bounded channel. Cloneable: messages are
    /// distributed among receivers, each delivered exactly once.
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Creates a bounded channel holding at most `cap` in-flight messages.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`: real crossbeam's zero-capacity channel is a
    /// rendezvous (a send succeeds only while a receiver blocks waiting),
    /// which this stand-in does not implement. Failing loudly beats
    /// silently buffering one message where none should be buffered.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(
            cap > 0,
            "vendored crossbeam does not implement zero-capacity rendezvous channels"
        );
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(cap.min(1024)),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    impl<T> Sender<T> {
        /// Blocks until there is queue space, then enqueues `value`.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.queue.len() < self.0.cap {
                    st.queue.push_back(value);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                st = self.0.not_full.wait(st).unwrap();
            }
        }

        /// Enqueues `value` if space is available, without blocking.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.0.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if st.queue.len() >= self.0.cap {
                return Err(TrySendError::Full(value));
            }
            st.queue.push_back(value);
            self.0.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.not_empty.wait(st).unwrap();
            }
        }

        /// Dequeues a message if one is ready, without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.state.lock().unwrap();
            if let Some(v) = st.queue.pop_front() {
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.0.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().senders += 1;
            Self(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().receivers += 1;
            Self(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.0.not_full.notify_all();
            }
        }
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's `Result`-returning API.

    use std::any::Any;
    use std::thread as stdthread;

    /// A scope in which borrowed-data threads can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the
        /// scope again so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            // std's scoped join already returns the payload on panic.
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.inner.join())) {
                Ok(r) => r,
                Err(payload) => Err(payload),
            }
        }
    }

    /// Runs `f` with a thread scope; every spawned thread is joined before
    /// this returns. Returns `Err` with the panic payload if `f` itself or
    /// an unjoined child panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            stdthread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_roundtrip_multi_consumer() {
        let (tx, rx) = super::channel::bounded::<u32>(4);
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx2.recv().unwrap(), 2);
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn try_send_reports_full() {
        let (tx, _rx) = super::channel::bounded::<u32>(1);
        tx.try_send(1).unwrap();
        assert!(matches!(
            tx.try_send(2),
            Err(super::channel::TrySendError::Full(2))
        ));
    }

    #[test]
    fn scope_joins_and_aggregates() {
        let total = std::sync::atomic::AtomicU64::new(0);
        let out = super::thread::scope(|s| {
            let mut handles = Vec::new();
            for i in 0..4u64 {
                let total = &total;
                handles.push(s.spawn(move |_| {
                    total.fetch_add(i, std::sync::atomic::Ordering::Relaxed);
                    i
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(out, 6);
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 6);
    }
}
