//! # aipow — A Policy Driven AI-Assisted PoW Framework
//!
//! A production-quality Rust reproduction of *“A Policy Driven AI-Assisted
//! PoW Framework”* (Chakraborty, Mitra, Mittal, Young — DSN 2022,
//! arXiv:2203.10698): a modular proof-of-work admission system in which an
//! AI model scores each incoming request's source IP, a policy maps the
//! score to a puzzle difficulty, and untrustworthy clients therefore incur
//! more latency to be served — throttling DDoS traffic while keeping
//! trusted clients fast.
//!
//! This crate is the facade over the workspace; each component lives in
//! its own crate and is re-exported here under a topical module:
//!
//! | module | crate | role (paper section) |
//! |---|---|---|
//! | [`crypto`] | `aipow-crypto` | SHA-256/HMAC/HKDF substrate (§II.4 hash puzzles) |
//! | [`pow`] | `aipow-pow` | issuer, solver, verifier (§II.3–§II.5) |
//! | [`reputation`] | `aipow-reputation` | DAbR-style AI model (§II.1) |
//! | [`policy`] | `aipow-policy` | score→difficulty policies 1–3 + DSL (§II.2, §III) |
//! | [`framework`] | `aipow-core` | the composed admission pipeline (Figure 1) |
//! | [`online`] | `aipow-online` | live behavioral telemetry + online reputation loop |
//! | [`wire`] | `aipow-wire` | binary protocol for the challenge exchange |
//! | [`net`] | `aipow-net` | real TCP server/client runtime |
//! | [`netsim`] | `aipow-netsim` | calibrated evaluation testbed (§III) |
//! | [`metrics`] | `aipow-metrics` | measurement substrate |
//! | [`trace`] | `aipow-trace` | request-scoped tracing + anomaly flight recorder |
//!
//! # Quickstart
//!
//! ```
//! use aipow::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Assemble the framework: model → policy → issuer/verifier.
//! let framework = FrameworkBuilder::new()
//!     .master_key([42u8; 32])
//!     .model(FixedScoreModel::new(ReputationScore::new(7.0)?))
//!     .policy(LinearPolicy::policy2())
//!     .build()?;
//!
//! // 2. A request arrives; the pipeline issues a puzzle.
//! let client: std::net::IpAddr = "203.0.113.9".parse()?;
//! let issued = framework
//!     .handle_request(client, &FeatureVector::zeros())
//!     .challenge()
//!     .expect("no bypass configured");
//! assert_eq!(issued.difficulty.bits(), 12); // score 7 → policy 2 → 12 bits
//!
//! // 3. The client solves and the verifier admits it.
//! let report = solve(&issued.challenge, client, &SolverOptions::default())?;
//! let token = framework.handle_solution(&report.solution, client)?;
//! assert_eq!(token.client_ip, client);
//! # Ok(())
//! # }
//! ```
//!
//! See the `examples/` directory for runnable scenarios and
//! `EXPERIMENTS.md` for the full reproduction of the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Cryptographic substrate: SHA-256/224, HMAC, HKDF, hex, HMAC-DRBG.
pub mod crypto {
    pub use aipow_crypto::*;
}

/// Proof-of-work puzzles: issuance, solving, verification, replay guard.
pub mod pow {
    pub use aipow_pow::*;
}

/// IP reputation scoring: the DAbR reimplementation, dataset synthesis,
/// baselines, and evaluation metrics.
pub mod reputation {
    pub use aipow_reputation::*;
}

/// Score→difficulty policies: the paper's Policies 1–3, extensions,
/// combinators, and the administrator rule DSL.
pub mod policy {
    pub use aipow_policy::*;
}

/// The composed admission framework (the paper's primary contribution).
pub mod framework {
    pub use aipow_core::*;
}

/// Live behavioral telemetry: the sharded behavior recorder, the
/// prior-blending behavioral feature source, and the decay/rescore
/// worker that closes the reputation loop.
pub mod online {
    pub use aipow_online::*;
}

/// Binary wire protocol for the challenge exchange.
pub mod wire {
    pub use aipow_wire::*;
}

/// Real TCP server/client runtime.
pub mod net {
    pub use aipow_net::*;
}

/// Deterministic evaluation testbed: calibrated profiles, the Figure 2
/// experiment, and DDoS scenarios.
pub mod netsim {
    pub use aipow_netsim::*;
}

/// Measurement substrate: histograms, trial sets, online statistics.
pub mod metrics {
    pub use aipow_metrics::*;
}

/// Request-scoped tracing: the sampled span tracer, per-shard bounded
/// rings, and the anomaly flight recorder.
pub mod trace {
    pub use aipow_trace::*;
}

/// The most common imports, for `use aipow::prelude::*`.
pub mod prelude {
    pub use aipow_core::{
        AdmissionDecision, FeatureSource, Framework, FrameworkBuilder, FrameworkConfig,
        LoadController, OnlineSettings, StaticFeatureSource,
    };
    pub use aipow_online::{BehaviorRecorder, BehavioralFeatureSource, OnlineLoop};
    pub use aipow_policy::{
        ErrorRangePolicy, LinearPolicy, Policy, PolicyContext, PowerPolicy, StepPolicy,
    };
    pub use aipow_pow::solver::{solve, solve_parallel, SolverOptions};
    pub use aipow_pow::{Challenge, Difficulty, Issuer, Solution, VerifiedToken, Verifier};
    pub use aipow_reputation::model::FixedScoreModel;
    pub use aipow_reputation::{
        DabrModel, Dataset, DatasetSpec, FeatureVector, ReputationModel, ReputationScore,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compose() {
        use crate::prelude::*;
        let d = Difficulty::new(3).unwrap();
        assert_eq!(d.bits(), 3);
        let p = LinearPolicy::policy1();
        assert_eq!(p.name(), "policy1");
    }
}
