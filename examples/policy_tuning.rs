//! Regenerates the paper's Figure 2 and explores custom policies.
//!
//! ```text
//! cargo run --release --example policy_tuning
//! ```
//!
//! Runs the median-of-30-trials latency sweep for Policies 1, 2, 3 under
//! the calibrated Testbed2022 profile, prints the table the figure plots,
//! then shows how an administrator-authored DSL policy changes the curve.

use aipow::netsim::fig2::{run, run_paper_policies, Fig2Config};
use aipow::netsim::report;
use aipow::policy::dsl;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = Fig2Config::default();

    println!("=== Figure 2: median latency (ms) vs reputation score ===\n");
    let table = run_paper_policies(&config);
    println!("{}", report::fig2_to_markdown(&table));

    for policy in ["policy1", "policy2", "policy3"] {
        println!(
            "{policy}: growth ×{:.1} (R0 {:.0} ms → R10 {:.0} ms), slope {:.1} ms/band",
            table.growth_factor(policy).unwrap(),
            table.median_ms(policy, 0).unwrap(),
            table.median_ms(policy, 10).unwrap(),
            table.slope_ms_per_band(policy).unwrap(),
        );
    }

    println!("\n=== An operator policy in the DSL: lenient below 2, brutal above 8 ===\n");
    let custom = dsl::parse(
        r#"
        policy "lenient-then-brutal" {
            when score < 2.0 => difficulty 1;
            when score in [2.0, 8.0) => linear(base = 3);
            otherwise => power(min = 14, max = 17, exponent = 2.0);
        }
        "#,
    )?;
    println!("{custom}\n");

    let table = run(&[&custom], &config);
    println!("{}", report::fig2_to_markdown(&table));
    println!(
        "growth ×{:.1} — steeper than Policy 2 at the hostile end while \
         staying cheaper than Policy 1 for trusted clients.",
        table.growth_factor("lenient-then-brutal").unwrap()
    );
    Ok(())
}
