//! Contended-admission scaling report: the netsim scenario behind
//! EXPERIMENTS.md §C7.
//!
//! ```text
//! cargo run --release --example contended_scaling
//! ```
//!
//! Drives 1, 4, and 8 real threads of distinct-IP admissions through one
//! shared `Framework` and prints aggregate ops/sec as a Markdown table.
//! With the per-client structures sharded, throughput should track the
//! thread count up to the machine's physical cores; on a single-core
//! host the table shows (honestly) flat scaling.

use aipow::netsim::contended::{contended_to_markdown, run_contended, ContendedConfig};

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let config = ContendedConfig::default();
    println!(
        "contended admission: {} ops/thread, {} distinct IPs/thread, {cores} core(s)\n",
        config.ops_per_thread, config.ips_per_thread
    );
    let report = run_contended(&config);
    println!("{}", contended_to_markdown(&report));
    println!("audit-log shards: {}", report.audit_shards);
}
