//! A real TCP deployment: DAbR-scored admission on loopback.
//!
//! ```text
//! cargo run --release --example adaptive_server
//! ```
//!
//! Trains the DAbR model on synthetic traffic, serves a resource over TCP
//! behind the framework, fetches it with the solving client, then swaps
//! the policy at runtime (paper property 2) and declares an attack to show
//! the difficulty moving live.

use aipow::framework::{FrameworkBuilder, StaticFeatureSource};
use aipow::net::{PowClient, PowServer, ServerConfig};
use aipow::policy::{LinearPolicy, LoadAdaptivePolicy};
use aipow::prelude::*;
use aipow::reputation::synth::{ClassLabel, DatasetSpec};
use std::collections::HashMap;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train the AI model on the synthetic attribute dataset.
    println!("training DAbR on synthetic traffic attributes…");
    let dataset = DatasetSpec::default().with_seed(9).generate();
    let (train, test) = dataset.split(0.8, 9);
    let model = DabrModel::fit(&train, &Default::default());
    let eval = aipow::reputation::eval::evaluate(&model, &test);
    println!(
        "  accuracy {:.1} % (paper reports ≈ 80 %), score error ϵ = {:.2}\n",
        eval.accuracy * 100.0,
        eval.score_mae
    );

    // 2. The demo client connects from loopback; give loopback a clearly
    //    benign test-set attribute vector (the one the model trusts most)
    //    so the model scores something real.
    let benign = test
        .samples()
        .iter()
        .filter(|s| s.label == ClassLabel::Benign)
        .min_by(|a, b| {
            let sa = model.score(&a.features).value();
            let sb = model.score(&b.features).value();
            sa.partial_cmp(&sb).expect("scores are not NaN")
        })
        .expect("test set has benign samples");
    let features = Arc::new(StaticFeatureSource::new(benign.features));

    // 3. Assemble and serve.
    let framework = Arc::new(
        FrameworkBuilder::new()
            .master_key(aipow::framework::framework::random_master_key())
            .model(model)
            .policy(LoadAdaptivePolicy::new(LinearPolicy::policy2(), 4, 3))
            .build()?,
    );
    let mut resources = HashMap::new();
    resources.insert("/index.html".to_string(), b"<h1>served</h1>".to_vec());

    let server = PowServer::start(
        "127.0.0.1:0",
        Arc::clone(&framework),
        features,
        resources,
        ServerConfig::default(),
    )?;
    println!("server listening on {}", server.local_addr());

    // 4. Fetch under normal conditions.
    let mut client = PowClient::connect(server.local_addr())?;
    let report = client.fetch("/index.html")?;
    println!(
        "normal:       difficulty {:>2}  {:>7} hashes  {:>8.3} ms end-to-end",
        report.difficulty.map(|d| d.bits()).unwrap_or(0),
        report.attempts,
        report.total_time.as_secs_f64() * 1_000.0,
    );

    // 5. Declare an attack + full load: the adaptive policy escalates.
    framework.set_under_attack(true);
    framework.set_load(1.0);
    let report = client.fetch("/index.html")?;
    println!(
        "under attack: difficulty {:>2}  {:>7} hashes  {:>8.3} ms end-to-end",
        report.difficulty.map(|d| d.bits()).unwrap_or(0),
        report.attempts,
        report.total_time.as_secs_f64() * 1_000.0,
    );

    // 6. Swap the whole policy at runtime.
    framework.swap_policy(Box::new(LinearPolicy::policy1()));
    framework.set_under_attack(false);
    let report = client.fetch("/index.html")?;
    println!(
        "policy1 swap: difficulty {:>2}  {:>7} hashes  {:>8.3} ms end-to-end",
        report.difficulty.map(|d| d.bits()).unwrap_or(0),
        report.attempts,
        report.total_time.as_secs_f64() * 1_000.0,
    );

    println!("\naudit trail (most recent first):");
    for event in framework.audit().snapshot().into_iter().take(6) {
        println!("  {:?}", event.kind);
    }

    server.shutdown();
    Ok(())
}
