//! Quickstart: the full Figure-1 pipeline in one process.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the framework with the paper's Policy 2, walks three clients of
//! different reputations through request → puzzle → solve → verify, and
//! prints what each one paid.

use aipow::prelude::*;
use std::net::IpAddr;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("aipow quickstart — AI-assisted PoW admission pipeline\n");

    // Three clients with model scores a deployment's AI model might emit:
    // a trusted regular, an unknown, and a likely bot.
    let clients: [(&str, IpAddr, f64); 3] = [
        ("trusted   ", "198.51.100.10".parse()?, 0.0),
        ("unknown   ", "198.51.100.20".parse()?, 5.0),
        ("likely bot", "198.51.100.30".parse()?, 10.0),
    ];

    for (label, ip, score) in clients {
        // One framework per client here only because the demo pins the
        // model's score; a deployment uses one framework and a real model.
        let framework = FrameworkBuilder::new()
            .master_key([42u8; 32])
            .model(FixedScoreModel::new(ReputationScore::new(score)?))
            .policy(LinearPolicy::policy2())
            .build()?;

        let issued = framework
            .handle_request(ip, &FeatureVector::zeros())
            .challenge()
            .expect("no bypass configured");

        let start = Instant::now();
        let report = solve(&issued.challenge, ip, &SolverOptions::default())?;
        let solve_ms = start.elapsed().as_secs_f64() * 1_000.0;

        let token = framework.handle_solution(&report.solution, ip)?;

        println!(
            "{label}  score {score:>4.1} → {:>12}  solved in {:>10.3} ms \
             ({:>8} hashes)  admitted at difficulty {}",
            issued.difficulty.to_string(),
            solve_ms,
            report.attempts,
            token.difficulty.bits(),
        );
    }

    println!(
        "\nHigher reputation scores (more suspicious) pay exponentially more \
         hashes — the paper's core property."
    );
    Ok(())
}
