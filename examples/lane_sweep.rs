//! Lane sweep: how wide should the multi-buffer kernel run here?
//!
//! ```text
//! cargo run --release --example lane_sweep
//! RUSTFLAGS="-C target-cpu=native" cargo run --release --example lane_sweep
//! ```
//!
//! Measures solver hash rate at every kernel width the crate supports,
//! then solves one real challenge scalar vs auto-width to show the same
//! nonce coming back faster. On a baseline x86-64 build (SSE2) expect a
//! modest gap; rebuild with the host's vector ISA enabled (the second
//! command above) to see the kernel's full 4/8-lane throughput.

use aipow::crypto::{auto_lanes, MAX_LANES};
use aipow::pow::solver::{self, measure_hash_rate_lanes, SolverOptions};
use aipow::pow::{Difficulty, Issuer};
use std::net::IpAddr;

const SAMPLES: u64 = 400_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("aipow lane sweep — multi-buffer SHA-256 kernel widths\n");

    let auto = auto_lanes();
    println!("{:>5}  {:>14}  {:>8}", "lanes", "hashes/s", "speedup");
    let mut scalar_rate = 0.0;
    for lanes in [1usize, 2, 4, 8] {
        let rate = measure_hash_rate_lanes(SAMPLES, lanes);
        if lanes == 1 {
            scalar_rate = rate;
        }
        println!(
            "{lanes:>5}  {rate:>14.0}  {:>7.2}x{}",
            rate / scalar_rate,
            if lanes == auto {
                "  <- auto_lanes()"
            } else {
                ""
            }
        );
    }

    // The width is a throughput knob only: same search order, same
    // attempt count, same nonce.
    let ip: IpAddr = "198.51.100.42".parse()?;
    let issuer = Issuer::new(&[7u8; 32]);
    let challenge = issuer.issue(ip, Difficulty::new(18)?);
    println!("\nsolving one d=18 challenge:");
    for lanes in [1usize, auto.clamp(1, MAX_LANES)] {
        let options = SolverOptions {
            lanes,
            ..Default::default()
        };
        let report = solver::solve(&challenge, ip, &options)?;
        println!(
            "  lanes {lanes}: nonce {:>10} in {:>8} attempts, {:>10.0} hashes/s",
            report.solution.nonce,
            report.attempts,
            report.hash_rate(),
        );
    }
    Ok(())
}
