//! The online reputation loop, end to end: live behavioral telemetry
//! feeding the AI model's features back from the system's own traffic.
//!
//! ```text
//! cargo run --release --example online_loop
//! ```
//!
//! Runs the two `netsim` behavior scenarios on a manual clock:
//!
//! 1. **behavior-shift** — a client is benign for 30 s, then floods at
//!    100 req/s without solving; its issued difficulty climbs while a
//!    concurrent benign client's stays flat.
//! 2. **redemption** — the flooder goes quiet; its score decays below the
//!    bypass threshold within a few half-lives and the sketch is
//!    eventually pruned.
//!
//! Finally, the trained DAbR model (the paper's AI component) scores the
//! same system-produced feature vectors, showing the loop is
//! model-agnostic: anything implementing `ReputationModel` can consume
//! the live features.

use aipow::netsim::behavior::{
    residential_prior, run_behavior_shift, run_redemption, BehaviorConfig,
};
use aipow::prelude::*;
use aipow::reputation::ReputationModel;

fn main() {
    let config = BehaviorConfig::default();

    println!(
        "=== behavior-shift: benign client turns flooder at t = {} s ===",
        config.phase_s
    );
    let shift = run_behavior_shift(&config);
    println!(
        "shifting client: baseline {} bits → peak {} bits (+{} bits, reached +4 after {} flood requests)",
        shift.baseline_bits,
        shift.peak_bits,
        shift.peak_bits.saturating_sub(shift.baseline_bits),
        shift
            .requests_to_climb_4
            .map(|n| n.to_string())
            .unwrap_or_else(|| "∞".into()),
    );
    println!(
        "benign client:   difficulty stayed {}–{} bits the whole run",
        shift.benign_min_bits, shift.benign_max_bits
    );

    println!(
        "\n=== redemption: flooder goes quiet (half-life {} ms) ===",
        config.half_life_ms
    );
    let redemption = run_redemption(&config);
    for point in redemption.trajectory.iter().step_by(10) {
        println!(
            "  t = {:>5.1} s  score {:>5.2} {}",
            point.t_ms as f64 / 1_000.0,
            point.score,
            if point.score < config.bypass_threshold {
                "(below bypass threshold)"
            } else {
                ""
            }
        );
    }
    println!(
        "peak score {:.2}; recovered after {}; admitted without work again: {}; sketch pruned: {}",
        redemption.peak_score,
        redemption
            .recovered_after_half_lives
            .map(|h| format!("{h:.1} half-lives"))
            .unwrap_or_else(|| "never".into()),
        redemption.bypassed_after_recovery,
        redemption.pruned,
    );

    // The loop is model-agnostic: anything implementing
    // `ReputationModel` can consume the live features. But model choice
    // matters: the scenarios above use the transparent
    // `BlocklistHeuristic`, which reads exactly the lanes a passive tap
    // can observe. A DAbR model trained on the synthetic Talos-like
    // attribute distribution does NOT transfer to behavioral vectors out
    // of the box — the tap cannot observe payload entropy, geo/ASN risk,
    // or TLS anomalies, so those lanes stay at the residential prior and
    // the flooder sits far from the *trained* botnet cluster:
    println!("\n=== model choice matters: DAbR on system-produced features ===");
    let dataset = DatasetSpec::default().generate();
    let (train, _) = dataset.split(0.8, 1);
    let dabr = DabrModel::fit(&train, &Default::default());
    let cold = residential_prior();
    let behavioral_flooder = cold.with(0, 100.0).with(1, 1.0).with(8, 0.0);
    let full_botnet = FeatureVector::new([42.0, 0.75, 3.0, 6.6, 0.55, 0.50, 2.5, 0.45, 12.0, 0.08]);
    println!(
        "dabr scores: cold prior {:.2}, behaviorally-observed flooder {:.2}, \
         full botnet profile {:.2}",
        dabr.score(&cold).value(),
        dabr.score(&behavioral_flooder).value(),
        dabr.score(&full_botnet).value(),
    );
    println!(
        "→ a distance model trained on full attribute vectors needs retraining on\n\
         \u{20}  behavioral features (or a behavioral model like the heuristic) to close\n\
         \u{20}  the loop; see DESIGN.md §8.5."
    );
}
