//! DDoS mitigation study: who gets served while a botnet floods?
//!
//! ```text
//! cargo run --release --example ddos_mitigation
//! ```
//!
//! Simulates 50 benign clients against 50 bots attempting 20 requests/s
//! each (1000 rps offered against a 200 rps server) and compares the
//! undefended baseline, the framework under each paper policy, and two
//! attacker variations.

use aipow::netsim::report;
use aipow::netsim::scenario::{self, AttackStrategy, DdosConfig};
use aipow::prelude::*;

fn main() {
    let base = DdosConfig::default();
    let policy1 = LinearPolicy::policy1();
    let policy2 = LinearPolicy::policy2();
    let policy3 = ErrorRangePolicy::new(2.0, base.seed);

    println!(
        "=== DDoS scenario: {} benign @ {} rps vs {} bots @ {} rps, {} rps capacity ===\n",
        base.n_benign, base.benign_rps, base.n_bots, base.bot_rps, base.server_capacity_rps
    );

    let outcomes = vec![
        (
            "undefended".to_string(),
            scenario::run(
                &policy2,
                &DdosConfig {
                    pow_enabled: false,
                    ..base
                },
            ),
        ),
        ("policy1".to_string(), scenario::run(&policy1, &base)),
        ("policy2".to_string(), scenario::run(&policy2, &base)),
        ("policy3 (ϵ=2)".to_string(), scenario::run(&policy3, &base)),
        (
            "policy2 + flood bots".to_string(),
            scenario::run(
                &policy2,
                &DdosConfig {
                    strategy: AttackStrategy::Flood,
                    ..base
                },
            ),
        ),
        (
            "policy2 + 64× bot hashpower".to_string(),
            scenario::run(
                &policy2,
                &DdosConfig {
                    bot_hash_multiplier: 64.0,
                    ..base
                },
            ),
        ),
    ];

    println!("{}", report::ddos_to_markdown(&outcomes));

    let undefended = &outcomes[0].1;
    let defended = &outcomes[2].1;
    println!(
        "Policy 2 lifts benign goodput {:.1} → {:.1} rps and suppresses bot \
         goodput {:.0} → {:.0} rps; flooding bots get nothing while costing \
         the server almost nothing.",
        undefended.benign_goodput_rps,
        defended.benign_goodput_rps,
        undefended.bot_goodput_rps,
        defended.bot_goodput_rps,
    );
    println!(
        "The 64× hashpower row shows the limit of static difficulty — the \
         cue for load-adaptive policies (see `aipow_policy::LoadAdaptivePolicy`)."
    );
}
