//! Closed-loop adaptive defense: observe demand, escalate difficulty.
//!
//! ```text
//! cargo run --release --example load_control
//! ```
//!
//! Wires a [`LoadController`] to a framework running a
//! [`LoadAdaptivePolicy`], then replays a day-in-the-life demand trace:
//! quiet → busy → attack → recovery. The controller publishes load and
//! declares/clears the attack with hysteresis; the policy escalates every
//! client's difficulty in response — the paper's “adaptive and can be
//! tuned” property as a running control loop.

use aipow::framework::{FrameworkBuilder, LoadController};
use aipow::policy::{LinearPolicy, LoadAdaptivePolicy};
use aipow::prelude::*;
use std::net::IpAddr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let framework = FrameworkBuilder::new()
        .master_key([17u8; 32])
        .model(FixedScoreModel::new(ReputationScore::new(3.0)?))
        // Up to +4 bits as load 0→1, +3 more while an attack is declared.
        .policy(LoadAdaptivePolicy::new(LinearPolicy::policy2(), 4, 3))
        .build()?;
    let controller = LoadController::new(200.0) // server capacity: 200 rps
        .with_thresholds(0.9, 0.6)
        .with_alpha(0.5);

    let client: IpAddr = "198.51.100.50".parse()?;

    // (phase label, arrival rate in requests/second, seconds it lasts)
    let phases = [
        ("quiet    ", 20u64, 3u64),
        ("busy     ", 120, 3),
        ("attack!  ", 900, 4),
        ("waning   ", 150, 3),
        ("recovered", 20, 3),
    ];

    println!("time  phase      arrivals/s  load   attack  difficulty for score 3.0");
    let mut now_ms = 0u64;
    for (label, rps, seconds) in phases {
        for _ in 0..seconds {
            // One second of arrivals at this phase's rate.
            for i in 0..rps {
                controller.record_arrival(now_ms + i * 1_000 / rps.max(1));
            }
            now_ms += 1_000;
            let signal = controller.apply(&framework, now_ms);

            let difficulty = framework
                .handle_request(client, &FeatureVector::zeros())
                .challenge()
                .expect("no bypass")
                .difficulty;

            println!(
                "{:>4}s  {label}  {rps:>9}  {:>5.2}  {:>6}  {} bits (expected {:>10.0} hashes)",
                now_ms / 1_000,
                signal.load,
                if signal.under_attack { "YES" } else { "no" },
                difficulty.bits(),
                difficulty.expected_attempts(),
            );
        }
    }

    println!(
        "\nDifficulty followed demand: {}× more work at the attack peak than \
         in the quiet phase, with hysteresis preventing flapping on the way down.",
        2f64.powi(7) as u64
    );
    Ok(())
}
