//! Train and evaluate the AI component on its own.
//!
//! ```text
//! cargo run --release --example reputation_training
//! ```
//!
//! Generates the synthetic IP-attribute dataset, fits the DAbR-style
//! scorer, reports the paper's quality metrics (accuracy ≈ 80 %, score
//! error ϵ), compares the swappable baselines, and shows per-archetype
//! score distributions.

use aipow::prelude::*;
use aipow::reputation::baseline::{BlocklistHeuristic, KnnScorer};
use aipow::reputation::eval::evaluate;
use aipow::reputation::synth::Archetype;

fn main() {
    let dataset = DatasetSpec::default().with_seed(2024).generate();
    let (train, test) = dataset.split(0.8, 2024);
    println!(
        "dataset: {} train / {} test samples, 10 attributes each\n",
        train.len(),
        test.len()
    );

    let dabr = DabrModel::fit(&train, &Default::default());
    let knn = KnnScorer::fit(&train, 5);
    let heuristic = BlocklistHeuristic;

    println!("| model     | accuracy | precision | recall | f1    | ϵ (MAE) |");
    println!("|-----------|----------|-----------|--------|-------|---------|");
    let models: [(&str, &dyn ReputationModel); 3] = [
        ("dabr", &dabr),
        ("knn k=5", &knn),
        ("heuristic", &heuristic),
    ];
    for (name, model) in models {
        let r = evaluate(model, &test);
        println!(
            "| {name:<9} | {:>7.1}% | {:>9.3} | {:>6.3} | {:>5.3} | {:>7.2} |",
            r.accuracy * 100.0,
            r.precision,
            r.recall,
            r.f1,
            r.score_mae
        );
    }

    println!("\nmean DAbR score per archetype (0 = trusted, 10 = hostile):");
    for archetype in Archetype::ALL {
        let scores: Vec<f64> = test
            .samples()
            .iter()
            .filter(|s| s.archetype == archetype)
            .map(|s| dabr.score(&s.features).value())
            .collect();
        if scores.is_empty() {
            continue;
        }
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        let bar = "#".repeat((mean * 4.0).round() as usize);
        println!("  {archetype:?}: {mean:>5.2}  {bar}");
    }

    println!(
        "\nThe measured ϵ feeds the paper's Policy 3: difficulties are drawn \
         from [⌈d−ϵ⌉, ⌈d+ϵ⌉] to hedge against scoring error."
    );
}
