//! Live behavioral telemetry and the online reputation loop.
//!
//! The paper's framework is *AI-assisted*: the model "inspects the
//! features of the request as input". Everywhere else in this workspace
//! those features come from a hand-filled table
//! ([`aipow_core::StaticFeatureSource`]); this crate closes the loop by
//! producing them **from the system's own traffic**:
//!
//! ```text
//!            handle_request / handle_solution
//!   Framework ────────────────────────────────▶ BehaviorRecorder
//!       ▲                (BehaviorSink tap)        (sharded sketches,
//!       │                                           exponential decay)
//!       │ FeatureVector                                   │
//!       │                                                 ▼
//!   BehavioralFeatureSource ◀──────────────── ClientSketch (rate, gaps,
//!       (prior-blended cold start)              abandon/invalid/replay,
//!                                               solve latency)
//! ```
//!
//! - [`BehaviorRecorder`] — a sharded per-client recorder fed lock-lightly
//!   from the framework's [`aipow_core::tap::BehaviorSink`] tap; EWMA-style
//!   decayed counters plus [`aipow_metrics::OnlineStats`] sketches.
//! - [`BehavioralFeatureSource`] — maps live sketches onto the model's
//!   [`aipow_reputation::FeatureVector`], blending with a configurable
//!   prior so cold clients score like the static default.
//! - [`OnlineLoop`] — the assembled loop plus the background decay/rescore
//!   worker: time-based exponential decay (reputation recovers after an
//!   attack stops), capacity-bounded with cheapest-eviction like the cost
//!   ledger, and automatic [`aipow_core::Framework::set_load`] derivation
//!   from the observed aggregate arrival rate.
//!
//! # Example
//!
//! ```
//! use aipow_core::{FrameworkBuilder, OnlineSettings, StaticFeatureSource, FeatureSource};
//! use aipow_online::OnlineLoop;
//! use aipow_policy::LinearPolicy;
//! use aipow_reputation::baseline::BlocklistHeuristic;
//! use aipow_reputation::FeatureVector;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let framework = Arc::new(
//!     FrameworkBuilder::new()
//!         .master_key([1u8; 32])
//!         .model(BlocklistHeuristic)
//!         .policy(LinearPolicy::policy2())
//!         .build()?,
//! );
//! let online = OnlineLoop::attach(
//!     Arc::clone(&framework),
//!     Arc::new(StaticFeatureSource::new(FeatureVector::zeros())),
//!     OnlineSettings::default(),
//! ).expect("first sink");
//!
//! // Serve features from the loop's source: the model now sees what the
//! // client actually did.
//! let ip: std::net::IpAddr = "203.0.113.7".parse()?;
//! let features = online.source().features_for(ip);
//! let _decision = framework.handle_request(ip, &features);
//! assert_eq!(online.recorder().total_requests(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod recorder;
pub mod source;
pub mod worker;

/// The crate's synchronization primitives. Under the `loom-model`
/// feature (tests only) they swap to the vendored `loom` shims; the
/// recorder's sharded state is shimmed transitively through
/// `aipow-shard`.
#[cfg(not(feature = "loom-model"))]
pub(crate) mod sync {
    pub(crate) use parking_lot::Mutex;
    pub(crate) use std::sync::atomic::{AtomicBool, Ordering};
}
#[cfg(feature = "loom-model")]
pub(crate) mod sync {
    pub(crate) use loom::sync::atomic::{AtomicBool, Ordering};
    pub(crate) use loom::sync::Mutex;
}

pub use recorder::{BehaviorRecorder, ClientSketch};
pub use source::BehavioralFeatureSource;
pub use worker::{AttachError, OnlineLoop, SweepReport};

// The settings type lives in `aipow-core` (so it can ride in
// `FrameworkConfig`/`ServerConfig` as plain data); re-export it here as
// the crate's canonical configuration.
pub use aipow_core::OnlineSettings;
