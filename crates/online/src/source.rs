//! Mapping live behavior sketches onto the model's attribute vector.
//!
//! The AI model consumes a fixed 10-lane [`FeatureVector`] (see
//! [`aipow_reputation::FEATURE_NAMES`]). A passive admission tap cannot
//! observe every lane — it never sees ports, payloads, or geolocation —
//! so [`BehavioralFeatureSource`] overwrites only the lanes the tap *can*
//! measure and leaves the rest to the prior:
//!
//! | lane | attribute | live analog |
//! |---|---|---|
//! | 0 | `request_rate` | decayed arrival rate (req/s) |
//! | 1 | `syn_ratio` | challenge-abandon ratio (issued, never solved) |
//! | 6 | `blacklist_hits` | prior + decayed abuse weight (invalid + replayed solutions) |
//! | 8 | `interarrival_jitter` | std-dev of request gaps (ms) |
//! | 9 | `failed_auth_ratio` | invalid-solution ratio |
//!
//! **Cold-start blending.** A sketch built from three events is noise; a
//! deployment still needs a sane score for that client. Each observed
//! lane is therefore blended with the prior by a confidence weight
//!
//! ```text
//! w = (events / (events + prior_strength)) · 2^(−idle / half_life)
//! ```
//!
//! A never-seen client scores *exactly* the prior (`w = 0`), and as
//! evidence accumulates the vector converges monotonically toward the
//! observed behavior. The second factor is **time-based decay**: `idle`
//! is the time since the client's last event, so once a client goes
//! quiet the behavioral signal halves every half-life *regardless of how
//! much evidence the attack accumulated* — an intense flood and a brief
//! one redeem on the same timescale. (The event weight itself also
//! decays, which is what eventually lets the sweep prune the sketch
//! entirely.)

use crate::recorder::BehaviorRecorder;
use aipow_core::{FeatureSource, OnlineSettings};
use aipow_pow::TimeSource;
use aipow_reputation::FeatureVector;
use std::net::IpAddr;
use std::sync::Arc;

/// A [`FeatureSource`] that scores clients from their live behavior,
/// blended with a prior source for cold starts.
///
/// ```
/// use aipow_core::{FeatureSource, OnlineSettings, StaticFeatureSource};
/// use aipow_online::{BehaviorRecorder, BehavioralFeatureSource};
/// use aipow_pow::ManualClock;
/// use aipow_reputation::FeatureVector;
/// use std::sync::Arc;
/// # use std::net::{IpAddr, Ipv4Addr};
///
/// let settings = OnlineSettings::default();
/// let recorder = Arc::new(BehaviorRecorder::new(&settings));
/// let prior = Arc::new(StaticFeatureSource::new(FeatureVector::zeros().with(0, 2.0)));
/// let source = BehavioralFeatureSource::new(
///     Arc::clone(&recorder), prior, &settings, Arc::new(ManualClock::at(0)));
///
/// // Never-seen clients get exactly the prior.
/// let cold = IpAddr::V4(Ipv4Addr::new(203, 0, 113, 1));
/// assert_eq!(source.features_for(cold).get(0), 2.0);
/// ```
pub struct BehavioralFeatureSource {
    recorder: Arc<BehaviorRecorder>,
    prior: Arc<dyn FeatureSource>,
    prior_strength: f64,
    clock: Arc<dyn TimeSource>,
}

impl BehavioralFeatureSource {
    /// Builds the source over a recorder, a prior, and a clock (share the
    /// framework's clock so decay and challenge TTLs agree on "now").
    pub fn new(
        recorder: Arc<BehaviorRecorder>,
        prior: Arc<dyn FeatureSource>,
        settings: &OnlineSettings,
        clock: Arc<dyn TimeSource>,
    ) -> Self {
        BehavioralFeatureSource {
            recorder,
            prior,
            prior_strength: settings.prior_strength.max(0.0),
            clock,
        }
    }

    /// The underlying recorder.
    pub fn recorder(&self) -> &Arc<BehaviorRecorder> {
        &self.recorder
    }

    /// The feature vector for `ip` as of an explicit instant (the trait
    /// method uses the clock; scenarios and tests may pin time).
    pub fn features_at(&self, ip: IpAddr, now_ms: u64) -> FeatureVector {
        let prior = self.prior.features_for(ip);
        let Some(sketch) = self.recorder.sketch(ip, now_ms) else {
            return prior;
        };
        // Time-based decay: idle clients lose confidence on the half-life
        // timescale even before their event weight drains (see module
        // docs — this is what makes redemption independent of attack
        // intensity).
        let idle_ms = now_ms.saturating_sub(sketch.last_seen_ms) as f64;
        let freshness = 0.5f64.powf(idle_ms / self.recorder.half_life_ms() as f64);
        let confidence = freshness * sketch.events / (sketch.events + self.prior_strength);
        // NaN (0/0 when both the decayed weight and the prior strength
        // are zero) must fall back to the prior, like zero confidence.
        if confidence.is_nan() || confidence <= 0.0 {
            return prior;
        }
        let blend = |prior_v: f64, observed: f64| prior_v + confidence * (observed - prior_v);
        // One request carries no rate information; until a gap has been
        // observed, the rate lane stays at the prior.
        let rate = sketch.rate_hz().unwrap_or(prior.get(0));
        prior
            .with(0, blend(prior.get(0), rate))
            .with(1, blend(prior.get(1), sketch.abandon_ratio()))
            // Abuse weight is additive on top of the prior's blocklist
            // count: observed protocol abuse never *lowers* a static
            // blocklist signal.
            .with(6, prior.get(6) + confidence * sketch.abuse_weight())
            .with(8, blend(prior.get(8), sketch.jitter_ms()))
            .with(9, blend(prior.get(9), sketch.invalid_ratio()))
    }
}

impl FeatureSource for BehavioralFeatureSource {
    fn features_for(&self, ip: IpAddr) -> FeatureVector {
        self.features_at(ip, self.clock.now_ms())
    }
}

impl core::fmt::Debug for BehavioralFeatureSource {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BehavioralFeatureSource")
            .field("tracked", &self.recorder.len())
            .field("prior_strength", &self.prior_strength)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipow_core::tap::BehaviorSink;
    use aipow_core::StaticFeatureSource;
    use aipow_pow::{Difficulty, ManualClock, VerifyError};
    use aipow_reputation::ReputationScore;
    use std::net::Ipv4Addr;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(198, 18, 1, last))
    }

    fn prior_vector() -> FeatureVector {
        FeatureVector::zeros()
            .with(0, 2.0)
            .with(1, 0.05)
            .with(6, 0.5)
            .with(8, 120.0)
    }

    fn setup(
        half_life_ms: u64,
        prior_strength: f64,
    ) -> (Arc<BehaviorRecorder>, BehavioralFeatureSource, ManualClock) {
        let settings = OnlineSettings {
            half_life_ms,
            prior_strength,
            shard_count: Some(4),
            ..Default::default()
        };
        let recorder = Arc::new(BehaviorRecorder::new(&settings));
        let clock = ManualClock::at(0);
        let source = BehavioralFeatureSource::new(
            Arc::clone(&recorder),
            Arc::new(StaticFeatureSource::new(prior_vector())),
            &settings,
            Arc::new(clock.clone()),
        );
        (recorder, source, clock)
    }

    #[test]
    fn cold_client_is_exactly_the_prior() {
        let (_, source, _) = setup(10_000, 16.0);
        assert_eq!(source.features_for(ip(1)), prior_vector());
    }

    #[test]
    fn flooding_raises_rate_and_abandon_lanes() {
        let (recorder, source, clock) = setup(10_000, 16.0);
        // 100 rps flood, never solving.
        for i in 0..2_000u64 {
            recorder.on_request(
                ip(2),
                i * 10,
                ReputationScore::MAX,
                Some(Difficulty::new(5).unwrap()),
            );
        }
        clock.set(2_000 * 10);
        let f = source.features_for(ip(2));
        assert!(f.get(0) > 50.0, "rate lane {}", f.get(0));
        assert!(f.get(1) > 0.9, "abandon lane {}", f.get(1));
        // Unobserved lanes untouched.
        assert_eq!(f.get(3), prior_vector().get(3));
        assert_eq!(f.get(4), prior_vector().get(4));
    }

    #[test]
    fn invalid_spam_raises_abuse_lanes() {
        let (recorder, source, clock) = setup(10_000, 8.0);
        // One admitted request creates the sketch (failed solutions
        // alone never do); the spam then accrues against it.
        recorder.on_request(
            ip(3),
            0,
            ReputationScore::MAX,
            Some(Difficulty::new(5).unwrap()),
        );
        for i in 0..50u64 {
            recorder.on_solution(ip(3), i * 10, Err(&VerifyError::BadMac));
        }
        clock.set(500);
        let f = source.features_for(ip(3));
        assert!(
            f.get(6) > prior_vector().get(6) + 10.0,
            "blocklist lane {}",
            f.get(6)
        );
        assert!(f.get(9) > 0.8, "invalid lane {}", f.get(9));
    }

    #[test]
    fn convergence_toward_observed_is_monotone() {
        let (recorder, source, _) = setup(10_000, 16.0);
        // Constant-rate flood: lane 0 and lane 1 must be non-decreasing
        // over arrivals (confidence and decayed rate both rise).
        let mut last_rate = f64::NEG_INFINITY;
        let mut last_abandon = f64::NEG_INFINITY;
        for i in 0..500u64 {
            let now = i * 20;
            recorder.on_request(
                ip(4),
                now,
                ReputationScore::MAX,
                Some(Difficulty::new(5).unwrap()),
            );
            let f = source.features_at(ip(4), now);
            assert!(
                f.get(0) >= last_rate - 1e-9,
                "rate regressed at event {i}: {} < {last_rate}",
                f.get(0)
            );
            assert!(f.get(1) >= last_abandon - 1e-9);
            last_rate = f.get(0);
            last_abandon = f.get(1);
        }
        assert!(last_rate > 30.0, "converged rate {last_rate}");
    }

    #[test]
    fn redemption_decays_back_to_the_prior() {
        let (recorder, source, clock) = setup(1_000, 16.0);
        for i in 0..200u64 {
            recorder.on_request(
                ip(5),
                i * 10,
                ReputationScore::MAX,
                Some(Difficulty::new(5).unwrap()),
            );
        }
        clock.set(2_000);
        let hot = source.features_for(ip(5));
        assert!(hot.get(0) > 10.0);

        // 20 half-lives of silence: the behavioral signal is gone.
        clock.set(2_000 + 20_000);
        let cold = source.features_for(ip(5));
        assert!(
            (cold.get(0) - prior_vector().get(0)).abs() < 0.1,
            "rate lane {} should be back at prior {}",
            cold.get(0),
            prior_vector().get(0)
        );
        assert!((cold.get(1) - prior_vector().get(1)).abs() < 0.05);
    }

    #[test]
    fn zero_prior_strength_trusts_observation_immediately() {
        let (recorder, source, clock) = setup(10_000, 0.0);
        recorder.on_request(
            ip(6),
            0,
            ReputationScore::MIN,
            Some(Difficulty::new(5).unwrap()),
        );
        clock.set(1);
        let f = source.features_for(ip(6));
        // confidence = 1 after a single event: lane 1 is fully observed.
        assert!(f.get(1) > 0.99, "abandon {}", f.get(1));
    }

    #[test]
    fn debug_impl_nonempty() {
        let (_, source, _) = setup(1_000, 1.0);
        assert!(!format!("{source:?}").is_empty());
    }
}
