//! The background decay/rescore worker and the assembled online loop.
//!
//! Decay itself is lazy (each sketch catches up on touch/read — see
//! [`crate::recorder`]), so the worker's job is the bookkeeping lazy
//! decay cannot do:
//!
//! - **prune** sketches whose event weight has decayed below
//!   [`OnlineSettings::prune_below`] (full redemption — the client is
//!   forgotten and memory is reclaimed);
//! - **derive load**: differentiate the recorder's global request counter
//!   into an aggregate arrival rate and publish
//!   `Framework::set_load(rps / load_capacity_rps)` so adaptive policies
//!   react to observed demand without an operator in the loop;
//! - **refresh gauges** (`behavior_tracked`, `behavior_sweeps`,
//!   `behavior_pruned`) in [`aipow_core::FrameworkMetrics`].
//!
//! [`OnlineLoop`] bundles the recorder, the blending feature source, and
//! the worker into the one object a deployment wires: attach it to a
//! framework ([`OnlineLoop::attach`]), serve features from
//! [`OnlineLoop::source`], and either spawn the sweeper thread
//! ([`OnlineLoop::start`]) or drive [`OnlineLoop::sweep_now`] manually
//! (simulations, tests — anything on a [`ManualClock`](aipow_pow::ManualClock)).

use crate::recorder::BehaviorRecorder;
use crate::source::BehavioralFeatureSource;
use crate::sync::{AtomicBool, Mutex, Ordering};
use aipow_core::tap::BehaviorSink;
use aipow_core::{FeatureSource, Framework, OnlineSettings};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What one sweep observed (also mirrored into the framework's gauges).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepReport {
    /// Clients tracked after pruning.
    pub tracked: usize,
    /// Sketches pruned this sweep.
    pub pruned: usize,
    /// Aggregate observed arrival rate over the sweep interval, req/s.
    pub arrival_rps: f64,
    /// The load published to the framework (`None` when load derivation
    /// is disabled or no time elapsed since the previous sweep).
    pub published_load: Option<f64>,
}

/// Why [`OnlineLoop::attach`] refused to build the loop.
#[derive(Debug, Clone, PartialEq)]
pub enum AttachError {
    /// The settings failed [`OnlineSettings::validate`].
    InvalidSettings(aipow_core::config::ConfigError),
    /// The framework already carries a behavior sink (the tap is
    /// write-once).
    SinkAlreadyAttached,
}

impl core::fmt::Display for AttachError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AttachError::InvalidSettings(e) => write!(f, "invalid online settings: {e}"),
            AttachError::SinkAlreadyAttached => {
                write!(f, "framework already has a behavior sink attached")
            }
        }
    }
}

impl std::error::Error for AttachError {}

#[derive(Debug)]
struct SweepState {
    last_sweep_ms: u64,
    last_total_requests: u64,
    last_evicted: u64,
}

/// The assembled online reputation loop.
pub struct OnlineLoop {
    settings: OnlineSettings,
    recorder: Arc<BehaviorRecorder>,
    source: Arc<BehavioralFeatureSource>,
    framework: Arc<Framework>,
    sweep_state: Mutex<SweepState>,
    stop: Arc<AtomicBool>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl OnlineLoop {
    /// Builds the loop around an existing framework and attaches the
    /// recorder as the framework's behavior sink. `prior` supplies the
    /// features cold clients score with (typically the deployment's
    /// static table, so unknown IPs behave exactly as before the loop
    /// existed).
    ///
    /// # Errors
    ///
    /// [`AttachError::InvalidSettings`] when the settings fail
    /// [`OnlineSettings::validate`] (settings are plain deserializable
    /// data — bad values must error, not panic), and
    /// [`AttachError::SinkAlreadyAttached`] when the framework already
    /// has a behavior sink (the tap is write-once).
    pub fn attach(
        framework: Arc<Framework>,
        prior: Arc<dyn FeatureSource>,
        settings: OnlineSettings,
    ) -> Result<Arc<OnlineLoop>, AttachError> {
        settings.validate().map_err(AttachError::InvalidSettings)?;
        let recorder = Arc::new(BehaviorRecorder::new(&settings));
        if !framework.set_behavior_sink(Arc::clone(&recorder) as Arc<dyn BehaviorSink>) {
            return Err(AttachError::SinkAlreadyAttached);
        }
        let source = Arc::new(BehavioralFeatureSource::new(
            Arc::clone(&recorder),
            prior,
            &settings,
            framework.clock(),
        ));
        let now_ms = framework.clock().now_ms();
        Ok(Arc::new(OnlineLoop {
            settings,
            recorder,
            source,
            framework,
            sweep_state: Mutex::new(SweepState {
                last_sweep_ms: now_ms,
                last_total_requests: 0,
                last_evicted: 0,
            }),
            stop: Arc::new(AtomicBool::new(false)),
            worker: Mutex::new(None),
        }))
    }

    /// The recorder (the framework's attached sink).
    pub fn recorder(&self) -> &Arc<BehaviorRecorder> {
        &self.recorder
    }

    /// The blending feature source to serve requests from.
    pub fn source(&self) -> Arc<BehavioralFeatureSource> {
        Arc::clone(&self.source)
    }

    /// The loop's settings.
    pub fn settings(&self) -> &OnlineSettings {
        &self.settings
    }

    /// Runs one decay/rescore sweep at the framework clock's current
    /// instant: prune, derive load, refresh gauges. When the framework
    /// carries a tracer, each sweep also emits one always-recorded span
    /// (stage `online_sweep`, slot 255) so flight-recorder dumps show the
    /// online loop's decisions interleaved with the admissions they
    /// influenced.
    pub fn sweep_now(&self) -> SweepReport {
        let sweep_started = std::time::Instant::now();
        let now_ms = self.framework.clock().now_ms();
        let pruned = self.recorder.prune(now_ms, self.settings.prune_below);
        let tracked = self.recorder.len();

        let (arrival_rps, published_load, new_evictions) = {
            let mut state = self.sweep_state.lock();
            let total = self.recorder.total_requests();
            let dt_ms = now_ms.saturating_sub(state.last_sweep_ms);
            let rps = if dt_ms > 0 {
                (total - state.last_total_requests) as f64 / (dt_ms as f64 / 1_000.0)
            } else {
                0.0
            };
            // Two sweeps in the same millisecond: leave the window open
            // so this interval's request delta rolls into the next rate
            // computation instead of being silently dropped.
            if dt_ms > 0 {
                state.last_sweep_ms = now_ms;
                state.last_total_requests = total;
            }
            let evicted = self.recorder.evicted();
            let new_evictions = evicted.saturating_sub(state.last_evicted);
            state.last_evicted = evicted;

            let load = match self.settings.load_capacity_rps {
                Some(capacity) if dt_ms > 0 => {
                    let load = (rps / capacity).clamp(0.0, 1.0);
                    self.framework.set_load(load);
                    Some(load)
                }
                _ => None,
            };
            (rps, load, new_evictions)
        };

        let metrics = self.framework.metrics();
        metrics.behavior_tracked.set(tracked as i64);
        metrics.behavior_sweeps.inc();
        metrics.behavior_pruned.add(pruned as u64 + new_evictions);

        if let Some(tracer) = self.framework.tracer() {
            let mut span = aipow_trace::SpanEvent::empty();
            // Forced, not sampled: sweeps are rare (one per decay
            // interval) and each one is an online-loop decision worth
            // keeping in the flight-recorder window.
            span.trace_id = tracer.begin_trace_forced();
            span.stage = "online_sweep";
            span.batch_len = tracked as u32;
            span.start_ns = tracer.ns_since_epoch(sweep_started);
            span.duration_ns = sweep_started.elapsed().as_nanos() as u64;
            span.verdict = if pruned > 0 { "pruned" } else { "swept" };
            tracer.record(span);
        }

        SweepReport {
            tracked,
            pruned,
            arrival_rps,
            published_load,
        }
    }

    /// Spawns the background sweeper thread, ticking every
    /// [`OnlineSettings::decay_interval_ms`] of wall-clock time. A second
    /// call is a no-op. The thread stops when [`stop`](Self::stop) is
    /// called or the loop is dropped — it holds only a [`Weak`] reference
    /// to the loop, so dropping the last external handle runs `Drop`
    /// (which stops and joins the thread) instead of the thread's own
    /// capture keeping the loop alive forever.
    ///
    /// Once [`stop`](Self::stop) has run, the loop is permanently
    /// stopped: `start` becomes a no-op rather than spawning a thread
    /// that would observe the latched stop flag and exit at once.
    ///
    /// [`Weak`]: std::sync::Weak
    pub fn start(self: &Arc<Self>) {
        let mut guard = self.worker.lock();
        // Acquire: pairs with the Release in stop()
        if guard.is_some() || self.stop.load(Ordering::Acquire) {
            return;
        }
        let this = Arc::downgrade(self);
        let stop = Arc::clone(&self.stop);
        let interval = Duration::from_millis(self.settings.decay_interval_ms.max(1));
        *guard = Some(std::thread::spawn(move || {
            // Acquire: pairs with the Release in stop()
            while !stop.load(Ordering::Acquire) {
                std::thread::park_timeout(interval);
                // Acquire: pairs with the Release in stop()
                if stop.load(Ordering::Acquire) {
                    break;
                }
                // The loop is being (or has been) dropped: exit so the
                // joining `Drop` completes.
                let Some(this) = this.upgrade() else { break };
                this.sweep_now();
            }
        }));
    }

    /// Stops and joins the sweeper thread (idempotent; also run on drop).
    pub fn stop(&self) {
        // Release: latches the stop request before unparking the sweeper
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.worker.lock().take() {
            handle.thread().unpark();
            // If the *sweeper itself* dropped the last strong handle
            // (Drop → stop() running on the worker thread, possible when
            // the final external Arc went away mid-sweep), joining would
            // be a self-join. Detach instead: the stop flag is set, so
            // the loop exits on its next check.
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for OnlineLoop {
    fn drop(&mut self) {
        self.stop();
    }
}

impl core::fmt::Debug for OnlineLoop {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("OnlineLoop")
            .field("tracked", &self.recorder.len())
            .field("settings", &self.settings)
            .field("running", &self.worker.lock().is_some())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipow_core::{FrameworkBuilder, StaticFeatureSource};
    use aipow_policy::LinearPolicy;
    use aipow_pow::ManualClock;
    use aipow_reputation::model::FixedScoreModel;
    use aipow_reputation::{FeatureVector, ReputationScore};
    use std::net::{IpAddr, Ipv4Addr};

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(198, 18, 2, last))
    }

    fn deploy(
        half_life_ms: u64,
        load_capacity_rps: Option<f64>,
    ) -> (Arc<Framework>, Arc<OnlineLoop>, ManualClock) {
        let clock = ManualClock::at(1_000_000);
        let framework = Arc::new(
            FrameworkBuilder::new()
                .master_key([7u8; 32])
                .model(FixedScoreModel::new(ReputationScore::new(1.0).unwrap()))
                .policy(LinearPolicy::policy2())
                .clock(Arc::new(clock.clone()))
                .build()
                .unwrap(),
        );
        let online = OnlineLoop::attach(
            Arc::clone(&framework),
            Arc::new(StaticFeatureSource::new(FeatureVector::zeros())),
            OnlineSettings {
                half_life_ms,
                shard_count: Some(4),
                load_capacity_rps,
                ..Default::default()
            },
        )
        .expect("no sink attached yet");
        (framework, online, clock)
    }

    #[test]
    fn attach_refuses_a_second_sink() {
        let (framework, _online, _clock) = deploy(1_000, None);
        assert_eq!(
            OnlineLoop::attach(
                Arc::clone(&framework),
                Arc::new(StaticFeatureSource::new(FeatureVector::zeros())),
                OnlineSettings::default(),
            )
            .unwrap_err(),
            AttachError::SinkAlreadyAttached
        );
        // Invalid settings error before touching the framework.
        assert!(matches!(
            OnlineLoop::attach(
                Arc::clone(&framework),
                Arc::new(StaticFeatureSource::new(FeatureVector::zeros())),
                OnlineSettings {
                    capacity: 0,
                    ..Default::default()
                },
            ),
            Err(AttachError::InvalidSettings(_))
        ));
    }

    #[test]
    fn requests_flow_through_the_tap_into_the_recorder() {
        let (framework, online, _clock) = deploy(60_000, None);
        for _ in 0..5 {
            let _ = framework.handle_request(ip(1), &FeatureVector::zeros());
        }
        assert_eq!(online.recorder().total_requests(), 5);
        assert_eq!(online.recorder().len(), 1);
    }

    #[test]
    fn sweep_derives_load_from_arrival_rate() {
        let (framework, online, clock) = deploy(60_000, Some(100.0));
        assert_eq!(framework.load(), 0.0);
        // 50 requests over 1 s → 50 rps → load 0.5 at 100 rps capacity.
        for _ in 0..50 {
            let _ = framework.handle_request(ip(2), &FeatureVector::zeros());
        }
        clock.advance(1_000);
        let report = online.sweep_now();
        assert!((report.arrival_rps - 50.0).abs() < 1e-9, "{report:?}");
        assert_eq!(report.published_load, Some(0.5));
        assert!((framework.load() - 0.5).abs() < 1e-3);

        // A quiet interval drives the load back down.
        clock.advance(1_000);
        let idle = online.sweep_now();
        assert_eq!(idle.published_load, Some(0.0));
        assert_eq!(framework.load(), 0.0);

        // A same-instant sweep must not swallow the interval's delta:
        // requests recorded now are still counted by the next timed
        // sweep.
        for _ in 0..30 {
            let _ = framework.handle_request(ip(2), &FeatureVector::zeros());
        }
        let same_instant = online.sweep_now();
        assert_eq!(same_instant.arrival_rps, 0.0);
        clock.advance(1_000);
        let next = online.sweep_now();
        assert!(
            (next.arrival_rps - 30.0).abs() < 1e-9,
            "delta dropped: {next:?}"
        );
    }

    #[test]
    fn sweep_prunes_and_updates_gauges() {
        let (framework, online, clock) = deploy(1_000, None);
        let _ = framework.handle_request(ip(3), &FeatureVector::zeros());
        clock.advance(100);
        let first = online.sweep_now();
        assert_eq!(first.tracked, 1);
        assert_eq!(first.pruned, 0);
        assert_eq!(framework.metrics_snapshot().behavior_tracked, 1);

        // 20 half-lives of silence: the sketch decays below the prune
        // floor and is forgotten.
        clock.advance(20_000);
        let second = online.sweep_now();
        assert_eq!(second.pruned, 1);
        assert_eq!(second.tracked, 0);
        let snap = framework.metrics_snapshot();
        assert_eq!(snap.behavior_tracked, 0);
        assert_eq!(snap.behavior_sweeps, 2);
        assert_eq!(snap.behavior_pruned, 1);
    }

    #[test]
    fn sweeps_emit_forced_spans_when_traced() {
        use aipow_trace::{TraceConfig, Tracer};
        let clock = ManualClock::at(1_000_000);
        let framework = Arc::new(
            FrameworkBuilder::new()
                .master_key([7u8; 32])
                .model(FixedScoreModel::new(ReputationScore::new(1.0).unwrap()))
                .policy(LinearPolicy::policy2())
                .clock(Arc::new(clock.clone()))
                // sample_every 0: only forced traces record, proving the
                // sweep span does not ride the request sampler.
                .tracer(Arc::new(Tracer::new(TraceConfig {
                    sample_every: 0,
                    ..TraceConfig::default()
                })))
                .build()
                .unwrap(),
        );
        let online = OnlineLoop::attach(
            Arc::clone(&framework),
            Arc::new(StaticFeatureSource::new(FeatureVector::zeros())),
            OnlineSettings {
                shard_count: Some(4),
                ..Default::default()
            },
        )
        .unwrap();
        let _ = framework.handle_request(ip(5), &FeatureVector::zeros());
        clock.advance(1_000);
        online.sweep_now();
        let tracer = framework.tracer().unwrap();
        let spans = tracer.spans();
        let sweep_spans: Vec<_> = spans.iter().filter(|s| s.stage == "online_sweep").collect();
        assert_eq!(sweep_spans.len(), 1);
        assert_eq!(sweep_spans[0].slot, 255, "non-pipeline site");
        assert_eq!(sweep_spans[0].batch_len, 1, "one tracked client");
        assert_eq!(sweep_spans[0].verdict, "swept");
        assert_eq!(
            spans.len(),
            1,
            "request spans must not record at sample_every 0"
        );
    }

    #[test]
    fn dropping_the_last_handle_stops_the_worker() {
        // The sweeper holds only a Weak reference, so dropping the last
        // external Arc must run Drop (stop + join) without deadlocking —
        // this test hanging would be the regression.
        let (_framework, online, _clock) = deploy(60_000, None);
        online.start();
        drop(online);
    }

    #[test]
    fn background_worker_starts_and_stops() {
        let (framework, online, _clock) = deploy(60_000, None);
        online.start();
        online.start(); // idempotent
        let _ = framework.handle_request(ip(4), &FeatureVector::zeros());
        online.stop();
        online.stop(); // idempotent
                       // The loop is permanently stopped: a restart is a documented
                       // no-op, not a thread that exits on its first flag check.
        online.start();
        assert!(online.worker.lock().is_none());
        assert!(!format!("{online:?}").is_empty());
    }

    #[test]
    fn loop_source_closes_the_loop_end_to_end() {
        // The integration the crate exists for: the framework's own tap
        // output changes what the model sees on the next request.
        use aipow_reputation::baseline::BlocklistHeuristic;

        let clock = ManualClock::at(0);
        let framework = Arc::new(
            FrameworkBuilder::new()
                .master_key([8u8; 32])
                .model(BlocklistHeuristic)
                .policy(LinearPolicy::policy2())
                .clock(Arc::new(clock.clone()))
                .build()
                .unwrap(),
        );
        let online = OnlineLoop::attach(
            Arc::clone(&framework),
            Arc::new(StaticFeatureSource::new(FeatureVector::zeros())),
            OnlineSettings {
                half_life_ms: 10_000,
                prior_strength: 4.0,
                shard_count: Some(4),
                ..Default::default()
            },
        )
        .unwrap();
        let source = online.source();

        let flooder = ip(9);
        let cold_bits = framework
            .handle_request(flooder, &source.features_for(flooder))
            .challenge()
            .unwrap()
            .difficulty
            .bits();

        // Flood: 1 000 requests at 100 rps, never solving.
        for i in 1..=1_000u64 {
            clock.set(i * 10);
            let _ = framework.handle_request(flooder, &source.features_for(flooder));
        }
        let hot_bits = framework
            .handle_request(flooder, &source.features_for(flooder))
            .challenge()
            .unwrap()
            .difficulty
            .bits();
        assert!(
            hot_bits >= cold_bits + 4,
            "difficulty must climb ≥4 bits: cold {cold_bits}, hot {hot_bits}"
        );
    }
}
