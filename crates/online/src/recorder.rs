//! The sharded per-client behavior recorder.
//!
//! Every admission event the framework emits (via
//! [`aipow_core::tap::BehaviorSink`]) lands in one per-client
//! [`ClientSketch`]: exponentially-decayed counters plus
//! [`OnlineStats`] sketches of inter-arrival gaps and solve latency.
//! Decay is *lazy* — each sketch stores the instant it was last decayed
//! and catches up on touch or read — so an idle client's reputation
//! recovers purely as a function of elapsed time, with no background
//! work required for correctness. The periodic sweep (see
//! [`crate::worker`]) exists only to prune fully-decayed sketches and
//! refresh gauges.
//!
//! Concurrency: the sketch table is an `aipow-shard` [`ShardedMap`], so
//! taps for different clients take different shard locks and the
//! admission path gains no global lock. The capacity bound is enforced
//! **per shard** (`capacity / shard_count` sketches each): an insert
//! into a full shard evicts that shard's least-recently-seen sketch
//! (cheapest-eviction, like the cost ledger's smallest-account rule)
//! under the same single lock acquisition, so even an attacker cycling
//! fresh source addresses at flood rate — the insert-at-capacity worst
//! case — costs one bounded shard scan per request, never an all-shard
//! sweep.

use aipow_core::tap::{BehaviorSink, RequestObservation, SolutionObservation};
use aipow_core::OnlineSettings;
use aipow_metrics::{Counter, OnlineStats};
use aipow_pow::{Difficulty, VerifyError};
use aipow_reputation::ReputationScore;
use aipow_shard::{ShardLayout, ShardedMap};
use std::net::IpAddr;

/// Smoothing factor for the inter-arrival EWMA: each new gap contributes
/// 30 %, so a behavior shift dominates the estimate within ~7 requests
/// while a single outlier gap moves it only modestly.
const EWMA_ALPHA: f64 = 0.3;

/// The eviction score (smallest = evicted first): conceptually
/// `last_seen_ms`, but abuse holds the sketch as if it were seen up to
/// [`MAX_ABUSE_HOLD_HALF_LIVES`] half-lives more recently. An
/// address-cycling attacker therefore cannot cheaply flush its own abuse
/// history out of the table — the abusive sketch outlives a full table
/// turnover for as long as the abuse signal itself matters (scores decay
/// back under thresholds within a few half-lives anyway). The cap cuts
/// the other way too: it bounds how long an attacker who *wants* its
/// junk sketches retained can pin shard slots — holding a slot costs a
/// refresh every few half-lives per address, and an evicted honest
/// client meanwhile scores the prior (pre-loop behaviour) and rebuilds
/// its sketch on its next requests. With bounded memory and free
/// addresses one of the two pressures always exists; the cap sizes the
/// trade to the signal's own lifetime. Scores compare sketches decayed
/// at slightly different instants (uniform decay preserves ordering to
/// first order), which is fine for choosing a victim.
const MAX_ABUSE_HOLD_HALF_LIVES: f64 = 4.0;

fn eviction_score(sketch: &ClientSketch, half_life_ms: u64) -> f64 {
    sketch.last_seen_ms as f64
        + sketch.abuse_weight().min(MAX_ABUSE_HOLD_HALF_LIVES) * half_life_ms as f64
}

/// One client's decayed behavioral state.
///
/// All `f64` counters are *exponentially decayed event weights*: an event
/// adds 1, and the whole counter halves every
/// [`OnlineSettings::half_life_ms`]. At steady state a counter therefore
/// approximates `rate × half_life / ln 2`, which is how
/// [`ClientSketch::rate_hz`] recovers the arrival rate.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientSketch {
    /// First event, ms since epoch.
    pub first_seen_ms: u64,
    /// Most recent event, ms since epoch.
    pub last_seen_ms: u64,
    /// Instant the decayed counters were last brought current.
    pub decayed_at_ms: u64,
    /// Decayed count of all observed events (requests + solutions).
    pub events: f64,
    /// Decayed count of resource requests.
    pub requests: f64,
    /// Decayed count of challenges issued.
    pub challenged: f64,
    /// Decayed count of bypass admissions.
    pub bypassed: f64,
    /// Decayed count of accepted solutions.
    pub accepted: f64,
    /// Decayed count of invalid solutions (any rejection except replay).
    pub invalid: f64,
    /// Decayed count of replayed solutions.
    pub replayed: f64,
    /// EWMA of request inter-arrival gaps, ms (`None` until a second
    /// request has been seen). The observed request rate is its
    /// reciprocal, so a single stray request never reads as a rate spike.
    pub ewma_gap_ms: Option<f64>,
    /// Inter-arrival gaps between requests, ms (undecayed sketch).
    pub gap_ms: OnlineStats,
    /// Challenge-issue → accepted-solution latency, ms (undecayed sketch).
    pub solve_ms: OnlineStats,
    /// Instant of the most recent issued challenge (for solve latency).
    last_challenge_ms: Option<u64>,
    /// Instant of the most recent request (for inter-arrival gaps).
    last_request_ms: Option<u64>,
}

impl ClientSketch {
    fn new(now_ms: u64) -> Self {
        ClientSketch {
            first_seen_ms: now_ms,
            last_seen_ms: now_ms,
            decayed_at_ms: now_ms,
            events: 0.0,
            requests: 0.0,
            challenged: 0.0,
            bypassed: 0.0,
            accepted: 0.0,
            invalid: 0.0,
            replayed: 0.0,
            ewma_gap_ms: None,
            gap_ms: OnlineStats::new(),
            solve_ms: OnlineStats::new(),
            last_challenge_ms: None,
            last_request_ms: None,
        }
    }

    /// Brings every decayed counter current to `now_ms`.
    pub fn decay_to(&mut self, now_ms: u64, half_life_ms: u64) {
        if now_ms <= self.decayed_at_ms {
            return;
        }
        let dt = (now_ms - self.decayed_at_ms) as f64;
        let factor = 0.5f64.powf(dt / half_life_ms as f64);
        self.events *= factor;
        self.requests *= factor;
        self.challenged *= factor;
        self.bypassed *= factor;
        self.accepted *= factor;
        self.invalid *= factor;
        self.replayed *= factor;
        self.decayed_at_ms = now_ms;
    }

    /// Observed request rate in requests/second: the reciprocal of the
    /// inter-arrival EWMA. `None` until two requests have been seen (one
    /// request carries no rate information). For a client arriving at a
    /// constant rate the estimate equals that rate from the second
    /// request on; gaps are floored at 1 ms, capping the per-client
    /// estimate at 1 000 req/s.
    pub fn rate_hz(&self) -> Option<f64> {
        self.ewma_gap_ms.map(|gap| 1_000.0 / gap)
    }

    /// Fraction of issued challenges never redeemed, in `[0, 1]`.
    /// A flood client (requests puzzles, never solves) converges to 1;
    /// a diligent client stays near 0 (one in-flight challenge at most).
    pub fn abandon_ratio(&self) -> f64 {
        if self.challenged <= 0.0 {
            return 0.0;
        }
        ((self.challenged - self.accepted).max(0.0) / self.challenged).clamp(0.0, 1.0)
    }

    /// Fraction of submitted solutions that were invalid (replay
    /// excluded), in `[0, 1]`.
    pub fn invalid_ratio(&self) -> f64 {
        let submitted = self.accepted + self.invalid;
        if submitted <= 0.0 {
            return 0.0;
        }
        (self.invalid / submitted).clamp(0.0, 1.0)
    }

    /// Decayed count of protocol-abuse events (invalid + replayed
    /// solutions) — the live analog of blocklist appearances.
    pub fn abuse_weight(&self) -> f64 {
        self.invalid + self.replayed
    }

    /// Standard deviation of request inter-arrival gaps in ms (0 until
    /// two gaps have been observed).
    pub fn jitter_ms(&self) -> f64 {
        self.gap_ms.stddev().unwrap_or(0.0)
    }
}

/// Sharded per-client behavior state fed by the framework's tap.
///
/// ```
/// use aipow_core::tap::BehaviorSink;
/// use aipow_core::OnlineSettings;
/// use aipow_online::BehaviorRecorder;
/// use aipow_reputation::ReputationScore;
/// # use std::net::{IpAddr, Ipv4Addr};
///
/// let recorder = BehaviorRecorder::new(&OnlineSettings::default());
/// let ip = IpAddr::V4(Ipv4Addr::new(203, 0, 113, 9));
/// recorder.on_request(ip, 1_000, ReputationScore::MIN, None);
/// assert_eq!(recorder.len(), 1);
/// assert!(recorder.sketch(ip, 1_000).unwrap().requests > 0.9);
/// ```
#[derive(Debug)]
pub struct BehaviorRecorder {
    sketches: ShardedMap<IpAddr, ClientSketch>,
    /// Capacity bound per shard (`capacity / shard_count`, min 1): the
    /// eviction scan must stay bounded and lock-local even when an
    /// attacker cycles source addresses at flood rate.
    per_shard_capacity: usize,
    half_life_ms: u64,
    /// Total requests observed, ever (lock-free; the decay worker
    /// differentiates this into an aggregate arrival rate).
    total_requests: Counter,
    /// Sketches dropped by the capacity bound, cumulative.
    evicted: Counter,
}

impl BehaviorRecorder {
    /// Creates a recorder from the shared online settings.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `half_life_ms` is zero (call
    /// [`OnlineSettings::validate`] first for a `Result`).
    pub fn new(settings: &OnlineSettings) -> Self {
        assert!(settings.capacity > 0, "recorder capacity must be positive");
        assert!(settings.half_life_ms > 0, "half-life must be positive");
        assert!(
            settings.max_scan > 0,
            "eviction scan bound must be positive"
        );
        // The shared bounded-eviction layout (the recorder was its proof
        // of concept; the rate limiter and cost ledger now use the same
        // selection): shard count raised so no victim scan exceeds
        // `max_scan`, capped at capacity and floored to a power of two
        // so the population bound never exceeds the configured capacity
        // — which itself is clamped to what MAX_SHARDS shards can honor
        // rather than silently stretching the scan.
        let layout =
            ShardLayout::bounded(settings.capacity, settings.shard_count, settings.max_scan);
        let sketches = ShardedMap::new(layout.shard_count);
        let per_shard_capacity = layout.per_shard_capacity;
        BehaviorRecorder {
            sketches,
            per_shard_capacity,
            half_life_ms: settings.half_life_ms,
            total_requests: Counter::new(),
            evicted: Counter::new(),
        }
    }

    /// Number of clients currently tracked.
    pub fn len(&self) -> usize {
        self.sketches.len()
    }

    /// Whether no clients are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards the sketch table is split over.
    pub fn shard_count(&self) -> usize {
        self.sketches.shard_count()
    }

    /// The decay half-life in milliseconds.
    pub fn half_life_ms(&self) -> u64 {
        self.half_life_ms
    }

    /// Total requests observed since construction (monotonic).
    pub fn total_requests(&self) -> u64 {
        self.total_requests.get()
    }

    /// Sketches evicted by the capacity bound, cumulative.
    pub fn evicted(&self) -> u64 {
        self.evicted.get()
    }

    /// A copy of `ip`'s sketch with decay applied through `now_ms`, or
    /// `None` for a never-seen (or fully pruned) client.
    pub fn sketch(&self, ip: IpAddr, now_ms: u64) -> Option<ClientSketch> {
        let mut sketch = self.sketches.get_cloned(&ip)?;
        sketch.decay_to(now_ms, self.half_life_ms);
        Some(sketch)
    }

    /// Runs `update` on `ip`'s decayed sketch, creating it if absent and
    /// evicting the shard's least-recently-seen sketch when the shard is
    /// at capacity.
    ///
    /// The per-shard eviction protocol
    /// ([`ShardedMap::update_or_insert_evicting_in_shard`]) keeps this a
    /// *single* shard-lock acquisition with a scan bounded by
    /// `capacity / shard_count` — the tap sits on the admission hot
    /// path, and an attacker cycling source addresses drives exactly the
    /// insert-at-capacity case, so an all-shard victim scan here would
    /// hand the flood a per-request O(capacity) amplifier.
    fn touch(&self, ip: IpAddr, now_ms: u64, update: impl FnOnce(&mut ClientSketch)) {
        let half_life = self.half_life_ms;
        let (_, evicted) = self.sketches.update_or_insert_evicting_in_shard(
            ip,
            self.per_shard_capacity,
            |sketch: &ClientSketch| eviction_score(sketch, half_life),
            || ClientSketch::new(now_ms),
            |sketch| {
                bump(sketch, now_ms, half_life);
                update(sketch);
            },
        );
        if evicted {
            self.evicted.inc();
        }
    }

    /// Removes sketches whose decayed event weight at `now_ms` has fallen
    /// below `prune_below` (the client is fully forgotten — redemption
    /// complete). Returns the number pruned.
    pub fn prune(&self, now_ms: u64, prune_below: f64) -> usize {
        let half_life = self.half_life_ms;
        let mut pruned = 0;
        self.sketches.retain(|_, sketch| {
            sketch.decay_to(now_ms, half_life);
            let keep = sketch.events >= prune_below;
            if !keep {
                pruned += 1;
            }
            keep
        });
        pruned
    }

    /// Folds over all decayed sketches (shard by shard; not a consistent
    /// global snapshot).
    pub fn fold<A>(&self, init: A, mut f: impl FnMut(A, IpAddr, &ClientSketch) -> A) -> A {
        self.sketches
            .fold(init, |acc, ip, sketch| f(acc, *ip, sketch))
    }
}

/// The per-event bookkeeping every tap shares: catch decay up, add the
/// event's weight, advance the recency stamp.
fn bump(sketch: &mut ClientSketch, now_ms: u64, half_life_ms: u64) {
    sketch.decay_to(now_ms, half_life_ms);
    sketch.events += 1.0;
    sketch.last_seen_ms = sketch.last_seen_ms.max(now_ms);
}

/// The request-arrival bookkeeping shared by admitted and rate-limited
/// requests: the request counter plus the inter-arrival gap sketches.
fn note_request_arrival(sketch: &mut ClientSketch, now_ms: u64) {
    sketch.requests += 1.0;
    if let Some(prev) = sketch.last_request_ms {
        let gap = (now_ms.saturating_sub(prev) as f64).max(1.0);
        sketch.gap_ms.push(gap);
        sketch.ewma_gap_ms = Some(match sketch.ewma_gap_ms {
            Some(ewma) => ewma + EWMA_ALPHA * (gap - ewma),
            None => gap,
        });
    }
    sketch.last_request_ms = Some(now_ms);
}

/// Applies one scored-request observation to a sketch (the body shared
/// by the single-event tap and the batched override).
fn apply_request(sketch: &mut ClientSketch, now_ms: u64, difficulty: Option<Difficulty>) {
    note_request_arrival(sketch, now_ms);
    match difficulty {
        Some(_) => {
            sketch.challenged += 1.0;
            sketch.last_challenge_ms = Some(now_ms);
        }
        None => sketch.bypassed += 1.0,
    }
}

/// Applies one accepted-solution observation to a sketch.
fn apply_accepted(sketch: &mut ClientSketch, now_ms: u64) {
    sketch.accepted += 1.0;
    if let Some(issued) = sketch.last_challenge_ms.take() {
        sketch.solve_ms.push(now_ms.saturating_sub(issued) as f64);
    }
}

/// Applies one rejected-solution observation to a sketch (see the
/// [`BehaviorSink::on_solution`] impl for why expiry and clock skew are
/// not counted as abuse).
fn apply_rejected(sketch: &mut ClientSketch, err: &VerifyError) {
    match err {
        VerifyError::Replayed => sketch.replayed += 1.0,
        VerifyError::Expired { .. } | VerifyError::NotYetValid => {}
        _ => sketch.invalid += 1.0,
    }
}

impl BehaviorSink for BehaviorRecorder {
    fn on_request(
        &self,
        ip: IpAddr,
        now_ms: u64,
        _score: ReputationScore,
        difficulty: Option<Difficulty>,
    ) {
        self.total_requests.inc();
        self.touch(ip, now_ms, |sketch| {
            apply_request(sketch, now_ms, difficulty);
        });
    }

    fn on_rate_limited(&self, ip: IpAddr, now_ms: u64) {
        // A limiter rejection is still an arrival: the heaviest flooders
        // are exactly the clients whose requests mostly die at the
        // limiter, and their rate lane (and the derived aggregate load)
        // must reflect what they *attempted*, not the admitted trickle.
        // But denied requests update only *existing* sketches — creating
        // state must cost an admitted request, or the limiter's rejects
        // would hand an address-cycling attacker a free table-filling
        // (and thus eviction-pressure) primitive.
        self.total_requests.inc();
        let half_life = self.half_life_ms;
        self.sketches.with_mut(&ip, |sketch| {
            bump(sketch, now_ms, half_life);
            note_request_arrival(sketch, now_ms);
        });
    }

    fn on_solution(&self, ip: IpAddr, now_ms: u64, outcome: Result<Difficulty, &VerifyError>) {
        match outcome {
            // An accepted solution may create a sketch: admission was
            // *paid for* in hashes, so this is not a spammable
            // state-creation primitive.
            Ok(_) => self.touch(ip, now_ms, |sketch| apply_accepted(sketch, now_ms)),
            // Failed solutions update only *existing* sketches.
            // SubmitSolution is not rate-limited (the client supposedly
            // already paid), so letting a garbage solution create a
            // sketch — one whose abuse weight makes it eviction-sticky —
            // would let an address-cycling attacker fill the table with
            // junk that displaces idle honest clients' history for free.
            // A pure solution-spammer with no admitted request leaves no
            // state; the verifier already rejects it cheaply. (Expiry
            // and clock skew are not abuse — see `apply_rejected`: an
            // honest-but-slow client must read as abandonment, or slow
            // clients spiral toward max difficulty.)
            Err(e) => {
                let half_life = self.half_life_ms;
                self.sketches.with_mut(&ip, |sketch| {
                    bump(sketch, now_ms, half_life);
                    apply_rejected(sketch, e);
                });
            }
        }
    }

    fn on_request_batch(&self, now_ms: u64, batch: &[RequestObservation]) {
        self.total_requests.add(batch.len() as u64);
        let half_life = self.half_life_ms;
        let mut evicted_count = 0u64;
        let items: Vec<(IpAddr, Option<Difficulty>)> =
            batch.iter().map(|obs| (obs.ip, obs.difficulty)).collect();
        // One lock acquisition per recorder shard per batch; within a
        // shard, observations apply in their original batch order.
        self.sketches
            .with_shards_grouped(items, |shard, ip, difficulty| {
                let (_, evicted) = shard.update_or_insert_evicting(
                    ip,
                    self.per_shard_capacity,
                    |sketch: &ClientSketch| eviction_score(sketch, half_life),
                    || ClientSketch::new(now_ms),
                    |sketch| {
                        bump(sketch, now_ms, half_life);
                        apply_request(sketch, now_ms, difficulty);
                    },
                );
                if evicted {
                    evicted_count += 1;
                }
            });
        if evicted_count > 0 {
            self.evicted.add(evicted_count);
        }
    }

    fn on_solution_batch(&self, now_ms: u64, batch: &[SolutionObservation<'_>]) {
        let half_life = self.half_life_ms;
        let mut evicted_count = 0u64;
        let items: Vec<(IpAddr, Result<Difficulty, &VerifyError>)> =
            batch.iter().map(|obs| (obs.ip, obs.outcome)).collect();
        self.sketches
            .with_shards_grouped(items, |shard, ip, outcome| {
                match outcome {
                    // Accepted solutions may create sketches (paid for in
                    // hashes), exactly as the single-event tap.
                    Ok(_) => {
                        let (_, evicted) = shard.update_or_insert_evicting(
                            ip,
                            self.per_shard_capacity,
                            |sketch: &ClientSketch| eviction_score(sketch, half_life),
                            || ClientSketch::new(now_ms),
                            |sketch| {
                                bump(sketch, now_ms, half_life);
                                apply_accepted(sketch, now_ms);
                            },
                        );
                        if evicted {
                            evicted_count += 1;
                        }
                    }
                    // Failed solutions update only existing sketches.
                    Err(e) => {
                        if let Some(sketch) = shard.get_mut(&ip) {
                            bump(sketch, now_ms, half_life);
                            apply_rejected(sketch, e);
                        }
                    }
                }
            });
        if evicted_count > 0 {
            self.evicted.add(evicted_count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(198, 18, 0, last))
    }

    fn settings(half_life_ms: u64) -> OnlineSettings {
        OnlineSettings {
            half_life_ms,
            shard_count: Some(8),
            ..Default::default()
        }
    }

    fn bits(n: u8) -> Difficulty {
        Difficulty::new(n).unwrap()
    }

    #[test]
    fn requests_accumulate_and_decay() {
        let r = BehaviorRecorder::new(&settings(1_000));
        for t in 0..10u64 {
            r.on_request(ip(1), t * 100, ReputationScore::MIN, Some(bits(5)));
        }
        let fresh = r.sketch(ip(1), 900).unwrap();
        assert!(fresh.requests > 5.0, "requests {}", fresh.requests);
        assert_eq!(r.total_requests(), 10);

        // Ten half-lives later the weight is ~1/1024 of what it was.
        let stale = r.sketch(ip(1), 900 + 10_000).unwrap();
        assert!(stale.requests < 0.01, "requests {}", stale.requests);
        // The stored sketch is untouched by reads.
        assert!(r.sketch(ip(1), 900).unwrap().requests > 5.0);
    }

    #[test]
    fn rate_recovers_arrival_rate_at_steady_state() {
        let r = BehaviorRecorder::new(&settings(2_000));
        // 50 requests/s for 10 s (well past the 2 s half-life).
        for i in 0..500u64 {
            r.on_request(ip(2), i * 20, ReputationScore::MIN, Some(bits(5)));
        }
        let sketch = r.sketch(ip(2), 500 * 20).unwrap();
        let rate = sketch.rate_hz().unwrap();
        assert!(
            (rate - 50.0).abs() < 1e-9,
            "steady-state rate {rate:.3} should be exactly 50 rps"
        );
    }

    #[test]
    fn abandon_and_invalid_ratios() {
        let r = BehaviorRecorder::new(&settings(60_000));
        // A diligent client: every challenge solved.
        for t in 0..20u64 {
            r.on_request(ip(3), t * 100, ReputationScore::MIN, Some(bits(5)));
            r.on_solution(ip(3), t * 100 + 50, Ok(bits(5)));
        }
        let good = r.sketch(ip(3), 2_000).unwrap();
        assert!(good.abandon_ratio() < 0.05, "{}", good.abandon_ratio());
        assert_eq!(good.invalid_ratio(), 0.0);
        assert!(good.solve_ms.mean() > 0.0);

        // A flooder: challenges, never a solution.
        for t in 0..20u64 {
            r.on_request(ip(4), t * 100, ReputationScore::MAX, Some(bits(5)));
        }
        let flood = r.sketch(ip(4), 2_000).unwrap();
        assert!(flood.abandon_ratio() > 0.9, "{}", flood.abandon_ratio());

        // An invalid-spammer: one admitted request (which creates the
        // sketch), then garbage solutions only.
        r.on_request(ip(5), 0, ReputationScore::MAX, Some(bits(5)));
        for t in 0..20u64 {
            r.on_solution(ip(5), t * 100, Err(&VerifyError::BadMac));
        }
        let spam = r.sketch(ip(5), 2_000).unwrap();
        assert_eq!(spam.invalid_ratio(), 1.0);
        assert!(spam.abuse_weight() > 15.0);
    }

    #[test]
    fn denied_requests_never_create_sketches() {
        let r = BehaviorRecorder::new(&settings(10_000));
        r.on_rate_limited(ip(11), 100);
        assert!(r.is_empty(), "a denied request must not create state");
        assert_eq!(r.total_requests(), 1); // still counted for load
    }

    #[test]
    fn abusive_sketches_resist_eviction_amnesty() {
        // An attacker must not be able to flush its own abuse history by
        // filling the table with fresh addresses: the abusive sketch's
        // eviction score is held forward by its abuse weight.
        let r = BehaviorRecorder::new(&OnlineSettings {
            capacity: 4,
            shard_count: Some(1),
            half_life_ms: 60_000,
            ..Default::default()
        });
        r.on_request(ip(66), 0, ReputationScore::MAX, Some(bits(5)));
        for t in 0..10u64 {
            r.on_solution(ip(66), t, Err(&VerifyError::BadMac));
        }
        // Table turnover: many fresh clean clients arrive later.
        for i in 0..50u8 {
            r.on_request(ip(i), 1_000 + i as u64, ReputationScore::MIN, Some(bits(5)));
        }
        assert_eq!(r.len(), 4);
        assert!(
            r.sketch(ip(66), 2_000).is_some(),
            "abusive sketch was flushed by address-cycling"
        );
    }

    #[test]
    fn shard_count_is_raised_to_bound_the_eviction_scan() {
        // Any capacity (power of two or not, even absurd) with a tiny
        // explicit shard count: the recorder raises the count — and
        // clamps the capacity at what MAX_SHARDS can honor — so no
        // shard can hold more than 512 sketches.
        for capacity in [65_536usize, 300_000, 1_000_000, 513, 100_000_000] {
            let r = BehaviorRecorder::new(&OnlineSettings {
                capacity,
                shard_count: Some(2),
                ..Default::default()
            });
            let effective = capacity.min(aipow_shard::MAX_SHARDS * 512);
            assert!(
                effective / r.shard_count() <= 512,
                "capacity {capacity}: {} shards → {} per shard",
                r.shard_count(),
                effective / r.shard_count()
            );
        }
    }

    #[test]
    fn rate_limited_arrivals_count_toward_the_rate() {
        // A flooder whose requests mostly die at the limiter must still
        // read as a flooder: rejected arrivals feed the rate estimate.
        let r = BehaviorRecorder::new(&settings(10_000));
        r.on_request(ip(10), 0, ReputationScore::MIN, Some(bits(5)));
        for i in 1..200u64 {
            r.on_rate_limited(ip(10), i * 10);
        }
        assert_eq!(r.total_requests(), 200);
        let s = r.sketch(ip(10), 2_000).unwrap();
        let rate = s.rate_hz().unwrap();
        assert!((rate - 100.0).abs() < 1e-9, "rate {rate}");
        // Rejections are not challenges, so no abandon signal accrues.
        assert!(s.abandon_ratio() > 0.9); // the one unredeemed challenge
        assert_eq!(s.invalid_ratio(), 0.0);
    }

    #[test]
    fn expired_solves_are_not_abuse() {
        // An honest-but-slow client: every solve lands after the TTL.
        // It must read as abandonment, never as abuse — otherwise slow
        // clients spiral toward max difficulty.
        let r = BehaviorRecorder::new(&settings(60_000));
        for t in 0..10u64 {
            r.on_request(ip(8), t * 1_000, ReputationScore::MIN, Some(bits(20)));
            r.on_solution(
                ip(8),
                t * 1_000 + 500,
                Err(&VerifyError::Expired {
                    expired_at_ms: t * 1_000 + 100,
                    now_ms: t * 1_000 + 500,
                }),
            );
        }
        r.on_solution(ip(8), 10_000, Err(&VerifyError::NotYetValid));
        let s = r.sketch(ip(8), 10_000).unwrap();
        assert_eq!(s.abuse_weight(), 0.0);
        assert_eq!(s.invalid_ratio(), 0.0);
        assert!(s.abandon_ratio() > 0.9, "{}", s.abandon_ratio());
    }

    #[test]
    fn replay_counts_separately_from_invalid() {
        let r = BehaviorRecorder::new(&settings(60_000));
        r.on_request(ip(6), 0, ReputationScore::MIN, Some(bits(5)));
        r.on_solution(ip(6), 0, Err(&VerifyError::Replayed));
        r.on_solution(ip(6), 1, Err(&VerifyError::BadMac));
        let s = r.sketch(ip(6), 1).unwrap();
        assert!(s.replayed > 0.9);
        assert!(s.invalid > 0.9);
        assert!(s.abuse_weight() > 1.9);
    }

    #[test]
    fn gap_sketch_records_interarrival_jitter() {
        let r = BehaviorRecorder::new(&settings(60_000));
        for t in [0u64, 100, 300, 400, 600] {
            r.on_request(ip(7), t, ReputationScore::MIN, Some(bits(5)));
        }
        let s = r.sketch(ip(7), 600).unwrap();
        assert_eq!(s.gap_ms.count(), 4);
        assert!(s.jitter_ms() > 0.0);
    }

    #[test]
    fn capacity_evicts_least_recently_seen() {
        // A single shard makes placement deterministic: per-shard
        // capacity equals the configured capacity.
        let r = BehaviorRecorder::new(&OnlineSettings {
            capacity: 3,
            shard_count: Some(1),
            ..Default::default()
        });
        r.on_request(ip(1), 100, ReputationScore::MIN, Some(bits(5)));
        r.on_request(ip(2), 200, ReputationScore::MIN, Some(bits(5)));
        r.on_request(ip(3), 300, ReputationScore::MIN, Some(bits(5)));
        // ip(1) is oldest; a fourth client displaces it.
        r.on_request(ip(4), 400, ReputationScore::MIN, Some(bits(5)));
        assert_eq!(r.len(), 3);
        assert!(r.sketch(ip(1), 400).is_none());
        assert!(r.sketch(ip(4), 400).is_some());
        assert_eq!(r.evicted(), 1);
        // Touching a tracked client at capacity never evicts.
        r.on_request(ip(2), 500, ReputationScore::MIN, Some(bits(5)));
        assert_eq!(r.evicted(), 1);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn address_cycling_flood_stays_bounded() {
        // An attacker cycling fresh addresses: population stays within
        // the per-shard bound × shard count, and only the attacker's own
        // cold sketches are displaced.
        let r = BehaviorRecorder::new(&OnlineSettings {
            capacity: 32,
            shard_count: Some(4),
            ..Default::default()
        });
        for i in 0..2_000u32 {
            let ip = IpAddr::V4(Ipv4Addr::new(10, (i >> 16) as u8, (i >> 8) as u8, i as u8));
            r.on_request(ip, i as u64, ReputationScore::MAX, Some(bits(5)));
        }
        assert!(r.len() <= 32, "population {} over capacity", r.len());
        assert_eq!(r.evicted() + r.len() as u64, 2_000);
    }

    #[test]
    fn small_capacity_caps_shard_count_and_population() {
        // capacity 8 with 64 requested shards: the layout collapses to a
        // single shard holding the whole capacity (the per-shard floor —
        // one-entry shards would turn eviction into mutual displacement),
        // and the population never exceeds 8.
        let r = BehaviorRecorder::new(&OnlineSettings {
            capacity: 8,
            shard_count: Some(64),
            ..Default::default()
        });
        assert_eq!(r.shard_count(), 1);
        for i in 0..100u8 {
            r.on_request(ip(i), i as u64, ReputationScore::MIN, Some(bits(5)));
        }
        assert!(r.len() <= 8, "population {} over capacity 8", r.len());
    }

    #[test]
    fn prune_forgets_fully_decayed_clients() {
        let r = BehaviorRecorder::new(&settings(1_000));
        r.on_request(ip(1), 0, ReputationScore::MIN, Some(bits(5)));
        r.on_request(ip(2), 20_000, ReputationScore::MIN, Some(bits(5)));
        // At t=20s, ip(1) has decayed through 20 half-lives.
        let pruned = r.prune(20_000, 0.01);
        assert_eq!(pruned, 1);
        assert_eq!(r.len(), 1);
        assert!(r.sketch(ip(1), 20_000).is_none());
        assert!(r.sketch(ip(2), 20_000).is_some());
    }

    #[test]
    fn concurrent_taps_keep_exact_event_totals() {
        use std::sync::Arc;
        let r = Arc::new(BehaviorRecorder::new(&settings(60_000)));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        r.on_request(ip(t), i, ReputationScore::MIN, Some(bits(5)));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.total_requests(), 8_000);
        assert_eq!(r.len(), 8);
        // Zero decay elapsed (all events at t<1000 ≪ half-life), so each
        // client's request weight is within decay-epsilon of 1000.
        for t in 0..8u8 {
            let s = r.sketch(ip(t), 1_000).unwrap();
            assert!(s.requests > 990.0, "client {t}: {}", s.requests);
        }
    }

    #[test]
    fn batched_taps_produce_identical_sketches_to_single_taps() {
        let single = BehaviorRecorder::new(&settings(10_000));
        let batched = BehaviorRecorder::new(&settings(10_000));
        let err = VerifyError::BadMac;

        // A mixed burst: requests for three clients, then solutions
        // (accepted, rejected, and rejected-for-unknown-client).
        let requests: Vec<RequestObservation> = (0..12u8)
            .map(|i| RequestObservation {
                ip: ip(i % 3),
                score: ReputationScore::MIN,
                difficulty: if i % 4 == 0 { None } else { Some(bits(5)) },
            })
            .collect();
        let solutions = [
            SolutionObservation {
                ip: ip(0),
                outcome: Ok(bits(5)),
            },
            SolutionObservation {
                ip: ip(1),
                outcome: Err(&err),
            },
            SolutionObservation {
                ip: ip(99), // never requested: must not create state
                outcome: Err(&err),
            },
        ];

        for obs in &requests {
            single.on_request(obs.ip, 1_000, obs.score, obs.difficulty);
        }
        for obs in &solutions {
            single.on_solution(obs.ip, 1_500, obs.outcome);
        }
        batched.on_request_batch(1_000, &requests);
        batched.on_solution_batch(1_500, &solutions);
        batched.on_request_batch(1_500, &[]);

        assert_eq!(batched.total_requests(), single.total_requests());
        assert_eq!(batched.len(), single.len());
        assert_eq!(batched.len(), 3, "unknown client created no sketch");
        for i in 0..3u8 {
            let a = single.sketch(ip(i), 2_000).unwrap();
            let b = batched.sketch(ip(i), 2_000).unwrap();
            assert_eq!(a, b, "client {i} sketch diverged");
        }
    }

    #[test]
    fn batched_taps_respect_capacity_eviction() {
        let r = BehaviorRecorder::new(&OnlineSettings {
            capacity: 3,
            shard_count: Some(1),
            ..Default::default()
        });
        let burst: Vec<RequestObservation> = (1..=4u8)
            .map(|i| RequestObservation {
                ip: ip(i),
                score: ReputationScore::MIN,
                difficulty: Some(bits(5)),
            })
            .collect();
        // Observations carry increasing recency within the batch via
        // order; all share one timestamp, so the eviction victim is the
        // shard's least-recently-seen — ip(1..3) tie on last_seen, and
        // exactly one of them is displaced by ip(4).
        r.on_request_batch(100, &burst);
        assert_eq!(r.len(), 3);
        assert_eq!(r.evicted(), 1);
        assert!(r.sketch(ip(4), 100).is_some(), "newest client retained");
    }

    #[test]
    fn sketch_for_unknown_ip_is_none() {
        let r = BehaviorRecorder::new(&settings(1_000));
        assert!(r.sketch(ip(9), 0).is_none());
        assert!(r.is_empty());
    }
}
