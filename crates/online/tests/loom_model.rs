//! Bounded-interleaving model tests for the online behavior recorder.
//!
//! Run with `cargo test -p aipow-online --features loom-model`. The
//! recorder's sharded sketch table is shimmed transitively through
//! `aipow-shard`, so the scheduler explores the interleavings of its
//! per-shard upserts and the capacity-bounded eviction protocol.

#![cfg(feature = "loom-model")]

use aipow_core::tap::BehaviorSink;
use aipow_core::OnlineSettings;
use aipow_online::BehaviorRecorder;
use aipow_reputation::ReputationScore;
use std::net::IpAddr;
use std::sync::Arc;

fn settings() -> OnlineSettings {
    OnlineSettings::default()
}

/// Two threads observing different clients: both sketches exist
/// afterwards and the request total is exact — no observation is lost
/// to a shard race.
#[test]
fn recorder_conserves_racing_observations_for_distinct_clients() {
    loom::model(|| {
        let recorder = Arc::new(BehaviorRecorder::new(&settings()));
        let other = Arc::clone(&recorder);
        let ip_a: IpAddr = "203.0.113.9".parse().expect("fixture ip: invariant");
        let ip_b: IpAddr = "203.0.113.10".parse().expect("fixture ip: invariant");
        let racer = loom::thread::spawn(move || {
            other.on_request(ip_b, 1_000, ReputationScore::MIN, None);
        });
        recorder.on_request(ip_a, 1_000, ReputationScore::MIN, None);
        racer.join().expect("model thread join: invariant");
        assert_eq!(recorder.len(), 2, "one sketch per observed client");
        assert_eq!(recorder.total_requests(), 2);
        assert!(recorder.sketch(ip_a, 1_000).is_some());
        assert!(recorder.sketch(ip_b, 1_000).is_some());
    });
}

/// Two threads observing the *same* client race the sketch-creating
/// upsert: exactly one sketch is created and both observations land in
/// it.
#[test]
fn recorder_merges_racing_observations_for_one_client() {
    loom::model(|| {
        let recorder = Arc::new(BehaviorRecorder::new(&settings()));
        let other = Arc::clone(&recorder);
        let ip: IpAddr = "203.0.113.9".parse().expect("fixture ip: invariant");
        let racer = loom::thread::spawn(move || {
            other.on_request(ip, 1_000, ReputationScore::MIN, None);
        });
        recorder.on_request(ip, 1_000, ReputationScore::MIN, None);
        racer.join().expect("model thread join: invariant");
        assert_eq!(recorder.len(), 1, "racing creators merge to one sketch");
        assert_eq!(recorder.total_requests(), 2);
        let sketch = recorder
            .sketch(ip, 1_000)
            .expect("sketch exists after observations: invariant");
        assert!(
            sketch.requests > 1.9,
            "both observations must survive the race (requests={})",
            sketch.requests
        );
    });
}
