//! Lane-width equivalence at scenario scale: the multi-buffer verify
//! path against the scalar path it must be indistinguishable from.
//!
//! Two identically keyed frameworks verify the *same* submission
//! schedule — one with `verify_lanes = 1` (scalar), one at the kernel's
//! maximum width — and the scenario reports:
//!
//! - **outcome equivalence**: every submission's verdict (token or
//!   exact rejection reason) must match between the two paths. The
//!   `wide_kernel_props` and `batch_equivalence` proptests prove this
//!   exhaustively at unit scale; here it is asserted over a realistic
//!   mixed schedule of valid, tampered, mismatched, and replayed
//!   submissions at batch sizes the TCP server actually drains.
//! - **verify-stage cost**: mean per-item wall-clock of the pipeline's
//!   `verify` stage (from [`aipow_core::MetricsSnapshot::stage_timings`])
//!   for each path. The wide path must not cost more than the scalar
//!   path, and with a vector ISA compiled in it must be decisively
//!   cheaper.
//!
//! Like [`crate::burst`], the timing half is a real measurement against
//! live frameworks and therefore machine-dependent; the equivalence
//! half is exact on any machine.

use aipow_core::{Framework, FrameworkBuilder};
use aipow_crypto::MAX_LANES;
use aipow_policy::LinearPolicy;
use aipow_pow::solver::{self, SolverOptions};
use aipow_pow::{Challenge, Difficulty, Issuer, Solution};
use aipow_reputation::model::FixedScoreModel;
use aipow_reputation::ReputationScore;
use serde::{Deserialize, Serialize};
use std::net::{IpAddr, Ipv4Addr};

/// Parameters for the lane-comparison run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LanesConfig {
    /// Submissions per verification batch (the burst the server's frame
    /// drain would hand to `handle_solution_batch`).
    pub batch_len: usize,
    /// Batches to run.
    pub batches: usize,
    /// Distinct clients cycling through the schedule.
    pub clients: usize,
    /// Puzzle difficulty for the pre-solved submissions (kept low: the
    /// scenario measures verification, not solving).
    pub difficulty_bits: u8,
}

impl Default for LanesConfig {
    fn default() -> Self {
        LanesConfig {
            batch_len: 32,
            batches: 60,
            clients: 16,
            difficulty_bits: 4,
        }
    }
}

/// The measured outcome of one lane-comparison run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LanesReport {
    /// Total submissions verified per path.
    pub submissions: usize,
    /// Submissions whose outcome differed between the paths (must be 0).
    pub mismatches: usize,
    /// Accepted submissions (sanity: the schedule exercises the accept
    /// path).
    pub accepted: usize,
    /// Rejected submissions (sanity: the schedule exercises rejections).
    pub rejected: usize,
    /// Lane width of the wide framework's verifier.
    pub wide_lanes: usize,
    /// Mean verify-stage nanoseconds per item, scalar path.
    pub scalar_ns_per_item: f64,
    /// Mean verify-stage nanoseconds per item, wide path.
    pub wide_ns_per_item: f64,
}

impl LanesReport {
    /// Scalar verify cost over wide verify cost: >1 means the
    /// multi-buffer kernel made the stage cheaper.
    pub fn verify_speedup(&self) -> f64 {
        self.scalar_ns_per_item / self.wide_ns_per_item.max(1.0)
    }
}

const MASTER_KEY: [u8; 32] = [0x6C; 32];

fn build_framework(lanes: usize, max_batch: usize) -> Framework {
    FrameworkBuilder::new()
        .master_key(MASTER_KEY)
        .model(FixedScoreModel::new(
            ReputationScore::new(5.0).expect("scenario invariant: 5.0 is a valid score"),
        ))
        .policy(LinearPolicy::policy2())
        .max_batch(max_batch)
        .lanes(lanes)
        .build()
        .expect("scenario invariant: the fixed framework config is valid")
}

fn client_ip(client: usize) -> IpAddr {
    IpAddr::V4(Ipv4Addr::from(0x0A30_0000u32 | client as u32))
}

/// Re-tags a challenge with a corrupted MAC (the forged-stamp rejection).
fn forge_tag(challenge: &Challenge) -> Challenge {
    let mut tag = *challenge.tag();
    tag[0] ^= 0x01;
    Challenge::from_parts_backend(
        challenge.version(),
        challenge.backend(),
        challenge.backend_param(),
        *challenge.seed(),
        challenge.issued_at_ms(),
        challenge.ttl_ms(),
        challenge.difficulty(),
        challenge.client_ip(),
        tag,
    )
}

/// Mean verify-stage nanoseconds per item from a framework's metrics.
fn verify_ns_per_item(framework: &Framework) -> f64 {
    framework
        .metrics_snapshot()
        .stage_timings
        .iter()
        .find(|t| t.stage == "verify")
        .map(|t| t.total_ns as f64 / (t.items.max(1)) as f64)
        .unwrap_or(0.0)
}

/// Runs the same pre-solved submission schedule through a scalar-lane
/// and a wide-lane framework and compares every outcome.
pub fn run_lanes(config: &LanesConfig) -> LanesReport {
    let batch_len = config.batch_len.max(1);
    let scalar = build_framework(1, batch_len);
    let wide = build_framework(MAX_LANES, batch_len);

    let issuer = Issuer::new(&MASTER_KEY);
    let difficulty = Difficulty::new(config.difficulty_bits.min(16))
        .expect("scenario invariant: difficulty_bits is clamped into range");

    let mut mismatches = 0usize;
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut submissions = 0usize;

    for b in 0..config.batches.max(1) {
        // Pre-solve one batch of genuine solutions, then corrupt a
        // deterministic minority so both paths walk every staged check:
        // bad MAC, wrong claimed IP, and an intra-batch replay.
        let solved: Vec<(Solution, IpAddr)> = (0..batch_len)
            .map(|i| {
                let ip = client_ip((b * batch_len + i) % config.clients.max(1));
                let challenge = issuer.issue(ip, difficulty);
                let report = solver::solve(&challenge, ip, &SolverOptions::default())
                    .expect("scenario invariant: a low-difficulty puzzle always solves");
                (report.solution, ip)
            })
            .collect();
        let mut batch: Vec<(Solution, IpAddr)> = solved;
        for (i, entry) in batch.iter_mut().enumerate() {
            match i % 8 {
                5 => {
                    entry.0.challenge = forge_tag(&entry.0.challenge);
                }
                6 => {
                    entry.1 = client_ip(usize::MAX & 0xFFFF);
                }
                _ => {}
            }
        }
        if batch_len > 7 {
            // A duplicate seed inside the batch: first wins, second is
            // the replay — in *both* paths, at the same index.
            let dup = batch[0].clone();
            batch[7] = dup;
        }

        let refs: Vec<(&Solution, IpAddr)> = batch.iter().map(|(s, ip)| (s, *ip)).collect();
        let scalar_out = scalar.handle_solution_batch(&refs);
        let wide_out = wide.handle_solution_batch(&refs);

        submissions += refs.len();
        for (s, w) in scalar_out.iter().zip(&wide_out) {
            let same = match (s, w) {
                (Ok(a), Ok(b)) => {
                    accepted += 1;
                    a.difficulty == b.difficulty && a.client_ip == b.client_ip
                }
                (Err(a), Err(b)) => {
                    rejected += 1;
                    a == b
                }
                _ => false,
            };
            if !same {
                mismatches += 1;
            }
        }
    }

    LanesReport {
        submissions,
        mismatches,
        accepted,
        rejected,
        wide_lanes: wide.verifier().verify_lanes(),
        scalar_ns_per_item: verify_ns_per_item(&scalar),
        wide_ns_per_item: verify_ns_per_item(&wide),
    }
}

/// Renders the report as a Markdown table for EXPERIMENTS.md.
pub fn lanes_to_markdown(report: &LanesReport) -> String {
    let mut out = String::new();
    out.push_str(
        "| submissions | accepted | rejected | lanes | scalar ns/item | wide ns/item | speedup |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|\n");
    out.push_str(&format!(
        "| {} | {} | {} | {} | {:.0} | {:.0} | {:.2}x |\n",
        report.submissions,
        report.accepted,
        report.rejected,
        report.wide_lanes,
        report.scalar_ns_per_item,
        report.wide_ns_per_item,
        report.verify_speedup(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LanesConfig {
        LanesConfig {
            batch_len: 16,
            batches: 4,
            clients: 5,
            difficulty_bits: 2,
        }
    }

    #[test]
    fn wide_and_scalar_paths_agree_on_every_outcome() {
        let report = run_lanes(&tiny());
        assert_eq!(report.mismatches, 0);
        assert_eq!(report.submissions, 64);
        assert!(report.accepted > 0, "schedule must exercise accepts");
        assert!(report.rejected > 0, "schedule must exercise rejections");
        assert!(report.wide_lanes > 1, "wide framework must be wide");
        assert!(report.scalar_ns_per_item > 0.0);
        assert!(report.wide_ns_per_item > 0.0);
    }

    #[test]
    fn markdown_has_one_data_row() {
        let md = lanes_to_markdown(&run_lanes(&tiny()));
        assert_eq!(md.lines().count(), 3);
    }
}
