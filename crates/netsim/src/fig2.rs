//! The Figure 2 experiment: latency vs reputation score per policy.
//!
//! “An evaluation of our three implemented policies. The median of 30
//! trials is reported for each reputation score.” — paper Figure 2.
//!
//! For each policy and each reputation score `R ∈ {0..10}`, the driver
//! asks the policy for a difficulty (Policy 3 randomizes per trial),
//! samples the end-to-end latency under the configured
//! [`SolverProfile`], and reports exact order statistics over the trials.

use crate::profile::SolverProfile;
use aipow_metrics::{Summary, TrialSet};
use aipow_policy::{ErrorRangePolicy, LinearPolicy, Policy, PolicyContext};
use aipow_reputation::ReputationScore;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration for the Figure 2 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig2Config {
    /// Trials per (policy, reputation) point; the paper uses 30.
    pub trials: usize,
    /// Base RNG seed; every point derives its own stream.
    pub seed: u64,
    /// The latency model.
    pub profile: SolverProfile,
    /// Model error `ϵ` for Policy 3.
    pub epsilon: f64,
}

impl Default for Fig2Config {
    fn default() -> Self {
        Fig2Config {
            trials: 30,
            seed: 2022,
            profile: SolverProfile::testbed_2022(),
            epsilon: 2.0,
        }
    }
}

/// One point of the Figure 2 curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Row {
    /// Policy name.
    pub policy: String,
    /// Reputation score band (0..=10).
    pub reputation: u8,
    /// Mean difficulty assigned across trials (varies under Policy 3).
    pub mean_difficulty_bits: f64,
    /// Latency statistics over the trials (ms); `summary.median` is the
    /// quantity Figure 2 plots.
    pub summary: Summary,
}

/// The full experiment result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Table {
    /// Configuration that produced the table.
    pub config: Fig2Config,
    /// One row per (policy, reputation score).
    pub rows: Vec<Fig2Row>,
}

impl Fig2Table {
    /// The median latency (ms) for a policy at a reputation band.
    pub fn median_ms(&self, policy: &str, reputation: u8) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.policy == policy && r.reputation == reputation)
            .map(|r| r.summary.median)
    }

    /// The mean latency (ms) for a policy at a reputation band.
    ///
    /// Policy 3's placement “between” Policies 1 and 2 (paper §III.B) is a
    /// mean-scale phenomenon: its symmetric ±ϵ difficulty draws have
    /// asymmetric exponential cost, so the mean rises above Policy 1's
    /// line while the median stays on it. See EXPERIMENTS.md §F2.
    pub fn mean_ms(&self, policy: &str, reputation: u8) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.policy == policy && r.reputation == reputation)
            .map(|r| r.summary.mean)
    }

    /// Latency growth factor across the score range:
    /// `median(R=10) / median(R=0)`. The paper's qualitative claims C3/C4
    /// compare these across policies.
    pub fn growth_factor(&self, policy: &str) -> Option<f64> {
        let lo = self.median_ms(policy, 0)?;
        let hi = self.median_ms(policy, 10)?;
        if lo <= 0.0 {
            return None;
        }
        Some(hi / lo)
    }

    /// Median-scale per-band latency increase in ms.
    pub fn slope_ms_per_band(&self, policy: &str) -> Option<f64> {
        let lo = self.median_ms(policy, 0)?;
        let hi = self.median_ms(policy, 10)?;
        Some((hi - lo) / 10.0)
    }

    /// Mean-scale per-band latency increase in ms — the “rate of increase”
    /// metric on which Policy 3 sits strictly between Policies 1 and 2
    /// (claim C4).
    pub fn mean_slope_ms_per_band(&self, policy: &str) -> Option<f64> {
        let lo = self.mean_ms(policy, 0)?;
        let hi = self.mean_ms(policy, 10)?;
        Some((hi - lo) / 10.0)
    }

    /// Distinct policy names in row order.
    pub fn policies(&self) -> Vec<String> {
        let mut names = Vec::new();
        for row in &self.rows {
            if !names.contains(&row.policy) {
                names.push(row.policy.clone());
            }
        }
        names
    }
}

/// Runs the experiment for an arbitrary set of policies.
pub fn run(policies: &[&dyn Policy], config: &Fig2Config) -> Fig2Table {
    let mut rows = Vec::with_capacity(policies.len() * 11);
    let ctx = PolicyContext::default();

    for (pi, policy) in policies.iter().enumerate() {
        for band in 0u8..=10 {
            // A dedicated stream per point keeps rows independent of each
            // other and of row ordering.
            let mut rng =
                StdRng::seed_from_u64(config.seed ^ (pi as u64) << 32 ^ (band as u64) << 16);
            let score = ReputationScore::new(band as f64).expect("band within range");

            let mut latencies = TrialSet::with_capacity(config.trials);
            let mut difficulty_sum = 0.0;
            for _ in 0..config.trials {
                let difficulty = policy.difficulty_for(score, &ctx);
                difficulty_sum += difficulty.bits() as f64;
                latencies.record(
                    config
                        .profile
                        .sample_latency_ms(&mut rng, difficulty.bits()),
                );
            }

            rows.push(Fig2Row {
                policy: policy.name().to_string(),
                reputation: band,
                mean_difficulty_bits: difficulty_sum / config.trials as f64,
                summary: Summary::from_trials(&latencies),
            });
        }
    }

    Fig2Table {
        config: *config,
        rows,
    }
}

/// Runs the experiment for the paper's three policies.
pub fn run_paper_policies(config: &Fig2Config) -> Fig2Table {
    let policy1 = LinearPolicy::policy1();
    let policy2 = LinearPolicy::policy2();
    let policy3 = ErrorRangePolicy::new(config.epsilon, config.seed);
    run(&[&policy1, &policy2, &policy3], config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Fig2Table {
        run_paper_policies(&Fig2Config::default())
    }

    #[test]
    fn has_33_rows() {
        let t = table();
        assert_eq!(t.rows.len(), 33);
        assert_eq!(t.policies(), vec!["policy1", "policy2", "policy3"]);
        for row in &t.rows {
            assert_eq!(row.summary.count, 30);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(table(), table());
    }

    /// Paper claim C1 anchor: Policy 1 at reputation 0 issues 1-difficult
    /// puzzles, which the calibrated testbed solves in ≈ 31 ms.
    #[test]
    fn policy1_rep0_near_31ms() {
        let t = table();
        let m = t.median_ms("policy1", 0).unwrap();
        assert!((25.0..40.0).contains(&m), "median {m:.1} ms");
    }

    /// Figure 2 shape: latency increases with reputation score for every
    /// policy (allowing sampling jitter at low difficulties).
    #[test]
    fn latency_increases_with_reputation() {
        let t = table();
        for policy in ["policy1", "policy2", "policy3"] {
            let lo = t.median_ms(policy, 0).unwrap();
            let hi = t.median_ms(policy, 10).unwrap();
            assert!(hi > lo, "{policy}: {lo:.1} !< {hi:.1}");
        }
    }

    /// Claim C3: Policy 1's latency “does not grow significantly”; Policy
    /// 2's does. Quantified: Policy 2's growth factor dominates.
    #[test]
    fn policy2_grows_much_faster_than_policy1() {
        let t = table();
        let g1 = t.growth_factor("policy1").unwrap();
        let g2 = t.growth_factor("policy2").unwrap();
        assert!(
            g2 > 3.0 * g1,
            "policy1 growth {g1:.1}, policy2 growth {g2:.1}"
        );
        // Absolute top-end: Policy 2 at R=10 sits near the paper's ~900 ms.
        let top = t.median_ms("policy2", 10).unwrap();
        assert!((700.0..1_100.0).contains(&top), "top {top:.0} ms");
    }

    /// Claim C4: Policy 3's rate of increase lies between Policies 1 and
    /// 2. Mean-scale — see [`Fig2Table::mean_slope_ms_per_band`]; at the
    /// median, the paper's literal formula puts Policy 3 on Policy 1's
    /// line (documented in EXPERIMENTS.md §F2).
    #[test]
    fn policy3_rate_between_1_and_2() {
        let t = run_paper_policies(&Fig2Config {
            trials: 300, // tight means for a deterministic ordering check
            ..Default::default()
        });
        let s1 = t.mean_slope_ms_per_band("policy1").unwrap();
        let s2 = t.mean_slope_ms_per_band("policy2").unwrap();
        let s3 = t.mean_slope_ms_per_band("policy3").unwrap();
        assert!(
            s1 < s3 && s3 < s2,
            "mean slopes: policy1 {s1:.1}, policy3 {s3:.1}, policy2 {s2:.1}"
        );
        assert!(
            s3 > 1.3 * s1,
            "policy3 {s3:.1} should clearly exceed policy1 {s1:.1} at the mean"
        );
    }

    #[test]
    fn policy3_difficulty_varies_within_band() {
        let t = table();
        // Under Policy 3 with ϵ=2 the mean difficulty at a band is rarely
        // integral (draws span a 5-wide interval).
        let row = t
            .rows
            .iter()
            .find(|r| r.policy == "policy3" && r.reputation == 5)
            .unwrap();
        assert!(
            (row.mean_difficulty_bits - row.mean_difficulty_bits.round()).abs() > 1e-9
                || row.summary.stddev > 0.0,
            "policy3 shows no randomization"
        );
    }

    #[test]
    fn custom_policies_run() {
        let custom = aipow_policy::StepPolicy::builder("custom")
            .band_below(5.0, 2)
            .otherwise(12)
            .build()
            .unwrap();
        let t = run(&[&custom], &Fig2Config::default());
        assert_eq!(t.rows.len(), 11);
        assert!(t.median_ms("custom", 10).unwrap() > t.median_ms("custom", 0).unwrap());
    }

    #[test]
    fn growth_factor_missing_policy_is_none() {
        assert_eq!(table().growth_factor("nope"), None);
    }
}
