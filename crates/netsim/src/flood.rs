//! The address-cycling flood scenario: the bounded-eviction proof.
//!
//! An attacker who rotates source addresses drives the admission path's
//! capacity-bounded tables — the per-IP rate limiter and the cost
//! ledger — through their worst case: every request is a *fresh* key
//! inserted into a table already at capacity, so every request pays the
//! eviction protocol. Under the retired global-scan protocol that meant
//! an O(`max_clients`) fold over every shard (with retries) per request:
//! the defense itself handed the flood a linear amplifier. Under the
//! bounded per-shard protocol each insert costs one shard-local scan of
//! at most `max_scan` entries, so the per-request cost is a constant
//! independent of `max_clients`.
//!
//! Like [`contended`](crate::contended), this scenario is **not** a
//! simulation: it times the real admission path (rate-limit check, cost
//! charge, [`aipow_core::Framework::handle_request`]) with the tables
//! churning at capacity, and reports per-phase latency percentiles.
//! [`run_flood_pair`] runs the same flood at a small and a large
//! `max_clients` and reports the ratio — the flatness claim CI asserts
//! (EXPERIMENTS.md §C9). Results are machine-dependent by design.
//!
//! ```
//! use aipow_netsim::flood::{run_flood, FloodConfig};
//!
//! let outcome = run_flood(&FloodConfig {
//!     max_clients: 1_024,
//!     flood_requests: 3_000,
//!     ..Default::default()
//! });
//! assert!(outcome.population <= 1_024);
//! assert_eq!(outcome.global_eviction_folds, 0);
//! ```

use aipow_core::{CostLedger, Framework, FrameworkBuilder, RateLimiter};
use aipow_policy::LinearPolicy;
use aipow_reputation::model::FixedScoreModel;
use aipow_reputation::{FeatureVector, ReputationScore};
use serde::{Deserialize, Serialize};
use std::net::{IpAddr, Ipv4Addr};
use std::time::Instant;

/// Parameters for one flood run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FloodConfig {
    /// Capacity of the rate limiter and the cost ledger (the tables the
    /// flood churns).
    pub max_clients: usize,
    /// Explicit shard count; `None` lets the bounded layout choose (it
    /// raises the count so no eviction scan exceeds the default bound
    /// regardless).
    pub shard_count: Option<usize>,
    /// Address-cycling requests measured *after* the tables reach
    /// capacity. Each is a fresh address, so each pays the eviction
    /// protocol.
    pub flood_requests: usize,
}

impl Default for FloodConfig {
    fn default() -> Self {
        FloodConfig {
            max_clients: 4_096,
            shard_count: None,
            flood_requests: 20_000,
        }
    }
}

/// Latency percentiles for one phase, in nanoseconds per request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseLatency {
    /// Median per-request latency.
    pub p50_ns: f64,
    /// 99th-percentile per-request latency.
    pub p99_ns: f64,
    /// Requests measured in the phase.
    pub requests: usize,
}

/// The measured outcome of one flood run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FloodOutcome {
    /// The capacity the tables were configured with.
    pub max_clients: usize,
    /// Eviction-free baseline: latency over the first *half* of the
    /// fill. At 50 % population no shard is anywhere near its per-shard
    /// bound (uniform hashing would need a ≫10-sigma collision), so
    /// these requests provably pay no eviction; the second half of the
    /// fill — where the unlucky tail of shards does start evicting —
    /// runs untimed.
    pub warm: PhaseLatency,
    /// Latency at capacity, every request a fresh address (every
    /// request evicts).
    pub churn: PhaseLatency,
    /// Tracked clients at the end (≤ `max_clients`, structurally).
    pub population: usize,
    /// Buckets + accounts evicted during the run.
    pub evictions: u64,
    /// Whole-table victim folds during the run. Zero: the production
    /// tables only use the bounded per-shard protocol.
    pub global_eviction_folds: u64,
    /// Worst-case entries one eviction scan may visit (the limiter's
    /// per-shard bound — the constant that replaces O(`max_clients`)).
    pub scan_bound: usize,
}

/// Flatness report: the same flood at two capacities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FloodPair {
    /// The run at the smaller capacity.
    pub small: FloodOutcome,
    /// The run at the larger capacity.
    pub large: FloodOutcome,
}

impl FloodPair {
    /// `large` churn median over `small` churn median: ~1 when the
    /// per-request eviction cost is independent of capacity, ~the
    /// capacity ratio when it is linear in it (the retired global scan).
    pub fn churn_p50_ratio(&self) -> f64 {
        self.large.churn.p50_ns / self.small.churn.p50_ns.max(1.0)
    }

    /// `large` churn p99 over `small` churn p99.
    pub fn churn_p99_ratio(&self) -> f64 {
        self.large.churn.p99_ns / self.small.churn.p99_ns.max(1.0)
    }
}

fn percentile(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[rank.min(sorted_ns.len() - 1)] as f64
}

fn phase(mut samples_ns: Vec<u64>) -> PhaseLatency {
    samples_ns.sort_unstable();
    PhaseLatency {
        p50_ns: percentile(&samples_ns, 0.50),
        p99_ns: percentile(&samples_ns, 0.99),
        requests: samples_ns.len(),
    }
}

fn flood_framework() -> Framework {
    FrameworkBuilder::new()
        .master_key([0xF1u8; 32])
        .model(FixedScoreModel::new(
            ReputationScore::new(5.0).expect("score in range"),
        ))
        .policy(LinearPolicy::policy2())
        .build()
        .expect("framework builds")
}

/// One admission under the flood: rate-limit check, ledger charge (the
/// solution-path table the flood also churns), and the framework's
/// request pipeline.
fn admit(limiter: &RateLimiter, ledger: &CostLedger, framework: &Framework, ip: IpAddr, t: u64) {
    let _ = limiter.allow(ip, t);
    ledger.charge(ip, 32.0);
    let _ = framework.handle_request(ip, &FeatureVector::zeros());
}

/// Runs one address-cycling flood and reports per-phase latency plus the
/// structural counters.
pub fn run_flood(config: &FloodConfig) -> FloodOutcome {
    let limiter = RateLimiter::with_layout(
        1e12, // never deny: the measurement is about the table, not rejection
        1e6,
        config.max_clients,
        config.shard_count,
        aipow_core::sharded::DEFAULT_MAX_SCAN,
    );
    let ledger = CostLedger::with_layout(
        config.max_clients,
        config.shard_count,
        aipow_core::sharded::DEFAULT_MAX_SCAN,
    );
    let framework = flood_framework();

    // Phase 1 (warm): fill the tables from empty to capacity with
    // distinct addresses. Only the first half is timed: at ≤ 50 %
    // population every shard is far below its per-shard bound, so the
    // timed requests are a true no-eviction baseline, while the
    // untimed second half absorbs the tail shards that reach their
    // bound early (uniform hashing overfills a few shards before the
    // global population hits capacity).
    let warm_target = (config.max_clients / 2).max(1);
    let mut warm_ns = Vec::with_capacity(warm_target);
    for i in 0..config.max_clients as u32 {
        let ip = IpAddr::V4(Ipv4Addr::from(0x0A00_0000u32 | i));
        if (i as usize) < warm_target {
            let start = Instant::now();
            admit(&limiter, &ledger, &framework, ip, i as u64);
            warm_ns.push(start.elapsed().as_nanos() as u64);
        } else {
            admit(&limiter, &ledger, &framework, ip, i as u64);
        }
    }

    // Phase 2 (churn): fresh addresses forever, tables at capacity —
    // every request pays the eviction protocol.
    let mut churn_ns = Vec::with_capacity(config.flood_requests);
    for i in 0..config.flood_requests as u32 {
        let ip = IpAddr::V4(Ipv4Addr::from(0xC000_0000u32.wrapping_add(i)));
        let t = (config.max_clients as u64) + i as u64;
        let start = Instant::now();
        admit(&limiter, &ledger, &framework, ip, t);
        churn_ns.push(start.elapsed().as_nanos() as u64);
    }

    FloodOutcome {
        max_clients: config.max_clients,
        warm: phase(warm_ns),
        churn: phase(churn_ns),
        population: limiter.len(),
        evictions: limiter.evictions() + ledger.evictions(),
        global_eviction_folds: limiter.global_eviction_folds() + ledger.global_eviction_folds(),
        scan_bound: limiter.per_shard_clients(),
    }
}

/// Runs the flood at `small_clients` and `large_clients` so the caller
/// can assert the per-request cost stayed flat while the table grew.
pub fn run_flood_pair(
    small_clients: usize,
    large_clients: usize,
    flood_requests: usize,
) -> FloodPair {
    let small = run_flood(&FloodConfig {
        max_clients: small_clients,
        shard_count: None,
        flood_requests,
    });
    let large = run_flood(&FloodConfig {
        max_clients: large_clients,
        shard_count: None,
        flood_requests,
    });
    FloodPair { small, large }
}

/// Renders an outcome pair as a Markdown table for EXPERIMENTS.md.
pub fn flood_to_markdown(pair: &FloodPair) -> String {
    let mut out = String::from(
        "| max_clients | warm p50 (µs) | warm p99 (µs) | churn p50 (µs) | churn p99 (µs) | evictions | global folds |\n\
         |---:|---:|---:|---:|---:|---:|---:|\n",
    );
    for o in [&pair.small, &pair.large] {
        out.push_str(&format!(
            "| {} | {:.2} | {:.2} | {:.2} | {:.2} | {} | {} |\n",
            o.max_clients,
            o.warm.p50_ns / 1e3,
            o.warm.p99_ns / 1e3,
            o.churn.p50_ns / 1e3,
            o.churn.p99_ns / 1e3,
            o.evictions,
            o.global_eviction_folds,
        ));
    }
    out.push_str(&format!(
        "\nchurn p50 ratio (large/small): {:.2}; churn p99 ratio: {:.2}\n",
        pair.churn_p50_ratio(),
        pair.churn_p99_ratio(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flood_respects_structural_invariants() {
        let outcome = run_flood(&FloodConfig {
            max_clients: 512,
            shard_count: Some(4),
            flood_requests: 2_000,
        });
        assert!(outcome.population <= 512);
        assert_eq!(outcome.global_eviction_folds, 0);
        // Both tables churned: limiter + ledger each evict per request.
        assert!(outcome.evictions >= 2_000);
        assert!(outcome.warm.requests == 256 && outcome.churn.requests == 2_000);
        assert!(outcome.churn.p50_ns > 0.0 && outcome.churn.p99_ns >= outcome.churn.p50_ns);
        assert!(outcome.scan_bound <= aipow_core::sharded::DEFAULT_MAX_SCAN);
    }

    #[test]
    fn flood_pair_reports_ratio() {
        let pair = run_flood_pair(512, 2_048, 1_500);
        assert_eq!(pair.small.max_clients, 512);
        assert_eq!(pair.large.max_clients, 2_048);
        assert!(pair.churn_p50_ratio() > 0.0);
        let md = flood_to_markdown(&pair);
        assert!(md.contains("max_clients"));
        assert!(md.contains("churn p50 ratio"));
    }

    #[test]
    fn percentiles_are_order_statistics() {
        assert_eq!(percentile(&[1, 2, 3, 4, 100], 0.5), 3.0);
        assert_eq!(percentile(&[1, 2, 3, 4, 100], 0.99), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
