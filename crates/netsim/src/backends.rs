//! Policy-routed puzzle backends at scenario scale: suspicious clients
//! pay memory-hard, benign clients stay on SHA-256 and feel nothing.
//!
//! The scenario drives two identically keyed frameworks with the same
//! mixed population — benign clients scoring low, flooders scoring past
//! the routing threshold:
//!
//! - **routed**: a [`ThresholdRouter`](aipow_policy::ThresholdRouter)
//!   issues memory-hard challenges to every client scoring past the
//!   threshold;
//! - **baseline**: the default SHA-256 router, i.e. the pre-seam
//!   behavior.
//!
//! It reports three claims:
//!
//! - **routing**: in the routed framework every benign challenge names
//!   the SHA-256 backend and every flooder challenge names memory-hard
//!   (violations are counted and must be 0);
//! - **asymmetric cost**: the flooders' aggregate wall-clock solve cost
//!   in the routed framework against the all-SHA baseline — the knob
//!   the router exists to turn — must rise multiplicatively, while the
//!   benign clients' end-to-end (request + solve + verify) p99 stays
//!   flat, since their puzzles did not change;
//! - **seam equivalence**: a mixed schedule of SHA-256 and memory-hard
//!   submissions (valid, forged-MAC, wrong-IP, backend-mismatched,
//!   unknown-backend, replayed) verified through a scalar-lane and a
//!   wide-lane framework must produce identical verdicts — the
//!   `PuzzleBackend` dispatch must not perturb the multi-buffer SHA
//!   fast path.
//!
//! As with [`crate::lanes`], the cost half is a live measurement and
//! machine-dependent; the routing and equivalence halves are exact.

use aipow_core::{Framework, FrameworkBuilder};
use aipow_crypto::MAX_LANES;
use aipow_policy::LinearPolicy;
use aipow_pow::solver::{self, SolverOptions};
use aipow_pow::{BackendId, Challenge, Difficulty, Issuer, Solution};
use aipow_reputation::model::ReputationModel;
use aipow_reputation::{FeatureVector, ReputationScore};
use serde::{Deserialize, Serialize};
use std::net::{IpAddr, Ipv4Addr};
use std::time::Instant;

/// Parameters for the backend-routing run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendsConfig {
    /// Benign clients cycling through the schedule.
    pub benign_clients: usize,
    /// Total benign fetches (request → solve → submit round trips).
    pub benign_requests: usize,
    /// Total flooder solve-cost samples.
    pub flood_requests: usize,
    /// Benign feature value (scores below the routing threshold).
    pub benign_feature: f64,
    /// Flooder feature value (scores past the routing threshold).
    pub flooder_feature: f64,
    /// Score threshold past which the router issues memory-hard puzzles.
    pub route_threshold: f64,
    /// Memory-hard arena size in MiB.
    pub arena_mib: u8,
    /// Submissions per batch in the seam-equivalence schedule.
    pub verify_batch: usize,
    /// Batches in the seam-equivalence schedule.
    pub verify_batches: usize,
}

impl Default for BackendsConfig {
    fn default() -> Self {
        BackendsConfig {
            benign_clients: 8,
            benign_requests: 200,
            flood_requests: 16,
            benign_feature: 2.0,
            flooder_feature: 9.0,
            route_threshold: 6.0,
            arena_mib: 1,
            verify_batch: 16,
            verify_batches: 6,
        }
    }
}

/// The measured outcome of one backend-routing run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendsReport {
    /// Benign challenges issued by the routed framework on SHA-256.
    pub benign_sha_challenges: usize,
    /// Flooder challenges issued by the routed framework on memory-hard.
    pub flooder_memhard_challenges: usize,
    /// Challenges the router sent to the wrong backend (must be 0).
    pub routing_violations: usize,
    /// Flooder aggregate solve nanoseconds, routed framework.
    pub flooder_routed_solve_ns: u64,
    /// Flooder aggregate solve nanoseconds, all-SHA baseline.
    pub flooder_baseline_solve_ns: u64,
    /// Benign end-to-end p99 nanoseconds, routed framework.
    pub benign_routed_p99_ns: u64,
    /// Benign end-to-end p99 nanoseconds, all-SHA baseline.
    pub benign_baseline_p99_ns: u64,
    /// Mixed-backend submissions verified per lane path.
    pub verify_submissions: usize,
    /// Submissions whose verdict differed between the scalar-lane and
    /// wide-lane paths (must be 0).
    pub verdict_mismatches: usize,
    /// Accepted submissions in the seam schedule (sanity: > 0).
    pub accepted: usize,
    /// Rejected submissions in the seam schedule (sanity: > 0).
    pub rejected: usize,
}

impl BackendsReport {
    /// How much more the flood costs to solve once routed to
    /// memory-hard: routed aggregate over baseline aggregate.
    pub fn flood_cost_ratio(&self) -> f64 {
        self.flooder_routed_solve_ns as f64 / (self.flooder_baseline_solve_ns.max(1)) as f64
    }

    /// Benign p99 under routing over the baseline p99 (≈ 1 when benign
    /// clients are unaffected).
    pub fn benign_p99_ratio(&self) -> f64 {
        self.benign_routed_p99_ns as f64 / (self.benign_baseline_p99_ns.max(1)) as f64
    }
}

const MASTER_KEY: [u8; 32] = [0x7B; 32];

/// Scores a client by its first feature — the scenario's stand-in for a
/// real flow-attribute model, so one framework can score benign and
/// flooder traffic differently.
#[derive(Debug)]
struct FeatureScoreModel;

impl ReputationModel for FeatureScoreModel {
    fn score(&self, features: &FeatureVector) -> ReputationScore {
        ReputationScore::new(features.get(0).clamp(0.0, 10.0))
            .expect("scenario invariant: clamped feature is a valid score")
    }
    fn name(&self) -> &'static str {
        "feature0"
    }
}

fn build_framework(config: &BackendsConfig, routed: bool, lanes: Option<usize>) -> Framework {
    let mut builder = FrameworkBuilder::new()
        .master_key(MASTER_KEY)
        .model(FeatureScoreModel)
        .policy(LinearPolicy::policy1())
        .memory_hard_arena_mib(config.arena_mib);
    if routed {
        builder = builder.route_memory_hard_above(config.route_threshold);
    }
    if let Some(lanes) = lanes {
        builder = builder.lanes(lanes);
    }
    builder
        .build()
        .expect("scenario invariant: the fixed framework config is valid")
}

fn benign_ip(client: usize) -> IpAddr {
    IpAddr::V4(Ipv4Addr::from(0x0A40_0000u32 | client as u32))
}

fn flooder_ip(request: usize) -> IpAddr {
    IpAddr::V4(Ipv4Addr::from(0x0A50_0000u32 | request as u32))
}

fn p99_ns(samples: &mut [u64]) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    samples[(samples.len() - 1).min(samples.len() * 99 / 100)]
}

/// One benign fetch round trip: request → solve → submit. Returns the
/// end-to-end nanoseconds and whether the backend matched `expected`.
fn fetch_roundtrip(
    fw: &Framework,
    ip: IpAddr,
    features: &FeatureVector,
    expected: BackendId,
) -> (u64, bool) {
    let start = Instant::now();
    let issued = fw
        .handle_request(ip, features)
        .challenge()
        .expect("scenario invariant: no bypass threshold is configured");
    let on_backend = issued.challenge.backend() == expected;
    let report = solver::solve(&issued.challenge, ip, &SolverOptions::default())
        .expect("scenario invariant: low-difficulty puzzles always solve");
    fw.handle_solution(&report.solution, ip)
        .expect("scenario invariant: an honest solve verifies");
    (start.elapsed().as_nanos() as u64, on_backend)
}

/// Re-tags a challenge with a corrupted MAC (the forged-stamp rejection).
fn forge_tag(challenge: &Challenge) -> Challenge {
    let mut tag = *challenge.tag();
    tag[0] ^= 0x01;
    Challenge::from_parts_backend(
        challenge.version(),
        challenge.backend(),
        challenge.backend_param(),
        *challenge.seed(),
        challenge.issued_at_ms(),
        challenge.ttl_ms(),
        challenge.difficulty(),
        challenge.client_ip(),
        tag,
    )
}

/// Runs the routed-vs-baseline population and the scalar-vs-wide mixed
/// verification schedule.
pub fn run_backends(config: &BackendsConfig) -> BackendsReport {
    let routed = build_framework(config, true, None);
    let baseline = build_framework(config, false, None);
    let benign_features = FeatureVector::zeros().with(0, config.benign_feature);
    let flooder_features = FeatureVector::zeros().with(0, config.flooder_feature);

    // Benign population: full round trips through both frameworks; the
    // routed one must keep them on SHA-256.
    let mut benign_sha_challenges = 0usize;
    let mut routing_violations = 0usize;
    let mut routed_lat = Vec::with_capacity(config.benign_requests);
    let mut baseline_lat = Vec::with_capacity(config.benign_requests);
    for i in 0..config.benign_requests.max(1) {
        let ip = benign_ip(i % config.benign_clients.max(1));
        let (ns, on_backend) = fetch_roundtrip(&routed, ip, &benign_features, BackendId::SHA256);
        routed_lat.push(ns);
        if on_backend {
            benign_sha_challenges += 1;
        } else {
            routing_violations += 1;
        }
        let (ns, _) = fetch_roundtrip(&baseline, ip, &benign_features, BackendId::SHA256);
        baseline_lat.push(ns);
    }

    // Flood population: each framework issues to the flooder's score;
    // only the solve is timed — the cost the router is meant to inflate.
    let mut flooder_memhard_challenges = 0usize;
    let mut flooder_routed_solve_ns = 0u64;
    let mut flooder_baseline_solve_ns = 0u64;
    for i in 0..config.flood_requests.max(1) {
        let ip = flooder_ip(i);
        for (fw, expected, total) in [
            (
                &routed,
                BackendId::MEMORY_HARD,
                &mut flooder_routed_solve_ns,
            ),
            (&baseline, BackendId::SHA256, &mut flooder_baseline_solve_ns),
        ] {
            let issued = fw
                .handle_request(ip, &flooder_features)
                .challenge()
                .expect("scenario invariant: no bypass threshold is configured");
            if issued.challenge.backend() == expected {
                if expected == BackendId::MEMORY_HARD {
                    flooder_memhard_challenges += 1;
                }
            } else {
                routing_violations += 1;
            }
            let start = Instant::now();
            let report = solver::solve(&issued.challenge, ip, &SolverOptions::default())
                .expect("scenario invariant: flood-difficulty puzzles still solve");
            *total += start.elapsed().as_nanos() as u64;
            fw.handle_solution(&report.solution, ip)
                .expect("scenario invariant: an honest solve verifies");
        }
    }

    // Seam equivalence: a mixed SHA/memory-hard schedule with staged
    // corruptions, verified by a scalar-lane and a wide-lane framework.
    let scalar = build_framework(config, true, Some(1));
    let wide = build_framework(config, true, Some(MAX_LANES));
    let issuer = Issuer::new(&MASTER_KEY)
        .with_backend_param(BackendId::MEMORY_HARD, config.arena_mib.max(1));
    let difficulty = Difficulty::new(3).expect("scenario invariant: 3 bits is a valid difficulty");

    let mut verify_submissions = 0usize;
    let mut verdict_mismatches = 0usize;
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let batch_len = config.verify_batch.max(8);
    for b in 0..config.verify_batches.max(1) {
        let mut batch: Vec<(Solution, IpAddr)> = (0..batch_len)
            .map(|i| {
                let ip = benign_ip((b * batch_len + i) % 32);
                // Alternate backends within the batch so the verifier's
                // partition-by-backend path sees real interleaving.
                let backend = if i % 2 == 0 {
                    BackendId::SHA256
                } else {
                    BackendId::MEMORY_HARD
                };
                let challenge = issuer.issue_backend(ip, difficulty, backend);
                let report = solver::solve(&challenge, ip, &SolverOptions::default())
                    .expect("scenario invariant: a low-difficulty puzzle always solves");
                (report.solution, ip)
            })
            .collect();
        for (i, entry) in batch.iter_mut().enumerate() {
            match i % 8 {
                3 => {
                    // Claimed backend disagrees with the challenge's.
                    entry.0.backend = if entry.0.backend == BackendId::SHA256 {
                        BackendId::MEMORY_HARD
                    } else {
                        BackendId::SHA256
                    };
                }
                4 => {
                    // Unregistered backend id in the submission.
                    entry.0.backend = BackendId(0x63);
                }
                5 => {
                    entry.0.challenge = forge_tag(&entry.0.challenge);
                }
                6 => {
                    entry.1 = flooder_ip(0xFFFF);
                }
                _ => {}
            }
        }
        if batch_len > 7 {
            // An intra-batch replay, at the same index on both paths.
            let dup = batch[0].clone();
            batch[7] = dup;
        }

        let refs: Vec<(&Solution, IpAddr)> = batch.iter().map(|(s, ip)| (s, *ip)).collect();
        let scalar_out = scalar.handle_solution_batch(&refs);
        let wide_out = wide.handle_solution_batch(&refs);
        verify_submissions += refs.len();
        for (s, w) in scalar_out.iter().zip(&wide_out) {
            let same = match (s, w) {
                (Ok(a), Ok(b)) => {
                    accepted += 1;
                    a.difficulty == b.difficulty && a.client_ip == b.client_ip
                }
                (Err(a), Err(b)) => {
                    rejected += 1;
                    a == b
                }
                _ => false,
            };
            if !same {
                verdict_mismatches += 1;
            }
        }
    }

    BackendsReport {
        benign_sha_challenges,
        flooder_memhard_challenges,
        routing_violations,
        flooder_routed_solve_ns,
        flooder_baseline_solve_ns,
        benign_routed_p99_ns: p99_ns(&mut routed_lat),
        benign_baseline_p99_ns: p99_ns(&mut baseline_lat),
        verify_submissions,
        verdict_mismatches,
        accepted,
        rejected,
    }
}

/// Renders the report as a Markdown table for EXPERIMENTS.md.
pub fn backends_to_markdown(report: &BackendsReport) -> String {
    let mut out = String::new();
    out.push_str(
        "| benign (sha) | flooder (mem-hard) | violations | flood cost | benign p99 | \
         verdicts | mismatches |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|\n");
    out.push_str(&format!(
        "| {} | {} | {} | {:.1}x | {:.2}x | {} | {} |\n",
        report.benign_sha_challenges,
        report.flooder_memhard_challenges,
        report.routing_violations,
        report.flood_cost_ratio(),
        report.benign_p99_ratio(),
        report.verify_submissions,
        report.verdict_mismatches,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BackendsConfig {
        BackendsConfig {
            benign_clients: 3,
            benign_requests: 6,
            flood_requests: 3,
            verify_batch: 8,
            verify_batches: 2,
            ..Default::default()
        }
    }

    #[test]
    fn routing_is_exact_and_seam_verdicts_agree() {
        let report = run_backends(&tiny());
        assert_eq!(report.routing_violations, 0);
        assert_eq!(report.benign_sha_challenges, 6);
        assert_eq!(report.flooder_memhard_challenges, 3);
        assert_eq!(report.verdict_mismatches, 0);
        assert_eq!(report.verify_submissions, 16);
        assert!(report.accepted > 0, "schedule must exercise accepts");
        assert!(report.rejected > 0, "schedule must exercise rejections");
        // The cost claim at unit scale, stated loosely (debug builds,
        // tiny samples): memory-hard must at least not be cheaper. The
        // ≥ 5x claim is asserted at scenario scale in netsim_scenarios.
        assert!(
            report.flood_cost_ratio() > 1.0,
            "memory-hard flood solve was not costlier: {:.2}x",
            report.flood_cost_ratio()
        );
    }

    #[test]
    fn markdown_has_one_data_row() {
        let md = backends_to_markdown(&run_backends(&tiny()));
        assert_eq!(md.lines().count(), 3);
    }
}
