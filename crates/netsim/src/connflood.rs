//! The connection-flood scenario: the reactor's 100k-connection proof.
//!
//! The event-driven net layer claims three things the threaded server
//! could not: tens of thousands of **concurrent** connections on a fixed
//! thread count, a per-IP accept-time cap that contains a single-source
//! connection flood without touching anyone else's latency, and an idle
//! connection whose steady-state heap cost is bounded (shrunk buffers,
//! one table slot, one timer entry).
//!
//! The host caps file descriptors far below the connection scale under
//! test (20k here vs the 50–100k claim), so this scenario drives the
//! reactor's **fd-free core** — [`aipow_net::reactor::ConnTable`],
//! [`aipow_net::reactor::ConnCore`], [`aipow_net::reactor::AcceptGate`],
//! [`aipow_net::reactor::DeadlineWheel`], and
//! [`aipow_net::reactor::dispatch_frames`] — exactly as the event loop
//! does, minus the sockets. Every byte still flows through the real wire
//! codec and the real admission pipeline; only `read(2)`/`write(2)` are
//! elided. Real-TCP behavior at smaller scale is covered by the server's
//! own test suite; this scenario is the scale proof.
//!
//! ```
//! use aipow_netsim::connflood::{run_connflood, ConnfloodConfig};
//!
//! let outcome = run_connflood(&ConnfloodConfig {
//!     idle_connections: 2_000,
//!     ..Default::default()
//! });
//! assert_eq!(outcome.flood_admitted, outcome.per_ip_cap as u64);
//! ```

use aipow_core::{Framework, FrameworkBuilder, StaticFeatureSource};
use aipow_net::reactor::{
    dispatch_frames, AcceptGate, AdmitDecision, ConnCore, ConnTable, DeadlineWheel,
};
use aipow_policy::LinearPolicy;
use aipow_reputation::model::FixedScoreModel;
use aipow_reputation::{FeatureVector, ReputationScore};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};
use std::time::Instant;

/// Parameters for one connection-flood run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnfloodConfig {
    /// Benign connections opened and held idle for the whole run — the
    /// concurrency claim under test (50k+ in the CI suite).
    pub idle_connections: usize,
    /// Benign connections actively exchanging frames, sampled for
    /// latency before and during the flood.
    pub active_connections: usize,
    /// Request/response exchanges timed per latency phase.
    pub exchanges_per_phase: usize,
    /// The per-IP concurrent-connection cap the flood runs into.
    pub per_ip_cap: usize,
    /// Connection attempts the flooding source makes (each beyond the
    /// cap must be refused at accept, charging nothing).
    pub flood_attempts: usize,
    /// Global connection ceiling (must accommodate the benign
    /// population plus the flooder's capped slice).
    pub max_connections: usize,
    /// Heap budget per **idle** connection, in bytes. Idle buffers
    /// shrink to zero capacity, so the honest budget is small; the
    /// assertion is what keeps "100k idle connections" a bounded-memory
    /// claim rather than a leak with a long fuse.
    pub idle_memory_budget_bytes: usize,
}

impl Default for ConnfloodConfig {
    fn default() -> Self {
        ConnfloodConfig {
            idle_connections: 10_000,
            active_connections: 256,
            exchanges_per_phase: 2_000,
            per_ip_cap: 64,
            flood_attempts: 10_000,
            max_connections: 120_000,
            idle_memory_budget_bytes: 64,
        }
    }
}

/// Latency percentiles for one phase, nanoseconds per exchange.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExchangeLatency {
    /// Median per-exchange latency.
    pub p50_ns: f64,
    /// 99th-percentile per-exchange latency.
    pub p99_ns: f64,
    /// Exchanges measured.
    pub exchanges: usize,
}

/// The measured outcome of one connection-flood run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnfloodOutcome {
    /// Benign connections concurrently open at the flood's peak (idle +
    /// active + the flooder's capped slice are all live in one table).
    pub peak_open_connections: usize,
    /// Benign exchange latency with the full idle population resident,
    /// before the flood starts.
    pub baseline: ExchangeLatency,
    /// Benign exchange latency while the flood hammers the accept gate.
    pub under_flood: ExchangeLatency,
    /// The per-IP cap in force.
    pub per_ip_cap: usize,
    /// Flood connections admitted (must equal the cap exactly).
    pub flood_admitted: u64,
    /// Flood connection attempts refused at accept.
    pub flood_rejected: u64,
    /// Mean heap bytes per idle connection (assembler + outbound queue
    /// capacity) with the whole population resident.
    pub idle_heap_bytes_per_conn: f64,
    /// Idle connections reaped when the deadline wheel swept past their
    /// deadline at the end of the run.
    pub reaped: usize,
}

impl ConnfloodOutcome {
    /// Benign p99 under flood over baseline p99: the flatness claim.
    pub fn benign_p99_ratio(&self) -> f64 {
        self.under_flood.p99_ns / self.baseline.p99_ns.max(1.0)
    }
}

fn percentile(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[rank.min(sorted_ns.len() - 1)] as f64
}

fn phase(mut samples_ns: Vec<u64>) -> ExchangeLatency {
    samples_ns.sort_unstable();
    ExchangeLatency {
        p50_ns: percentile(&samples_ns, 0.50),
        p99_ns: percentile(&samples_ns, 0.99),
        exchanges: samples_ns.len(),
    }
}

fn connflood_framework() -> Framework {
    FrameworkBuilder::new()
        .master_key([0xC0u8; 32])
        .model(FixedScoreModel::new(
            ReputationScore::new(5.0).expect("scenario invariant: 5.0 is a valid score"),
        ))
        .policy(LinearPolicy::policy2())
        .build()
        .expect("scenario invariant: the fixed framework config is valid")
}

/// Distinct benign address space: 10.x.y.z, one IP per connection so the
/// per-IP cap never constrains the benign population.
fn benign_ip(i: u32) -> IpAddr {
    IpAddr::V4(Ipv4Addr::from(0x0A00_0000u32 | i))
}

/// The flooding source: one address opening connections as fast as the
/// gate lets it.
fn flood_ip() -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(198, 51, 100, 66))
}

/// One benign exchange on an already-open connection: a `Ping` frame is
/// encoded, assembled byte-for-byte as the reactor would from a read,
/// dispatched through the real admission machinery, and the reply
/// queued on the connection's bounded outbound queue.
fn exchange(
    core: &mut ConnCore,
    framework: &Framework,
    features: &StaticFeatureSource,
    resources: &HashMap<String, Vec<u8>>,
    token: u64,
) {
    let bytes = aipow_wire::encode(&aipow_wire::Message::Ping { token });
    core.assembler.ingest(&bytes);
    let mut frames = Vec::new();
    while let Some(frame) = core
        .assembler
        .next_frame()
        .expect("scenario invariant: locally encoded frames decode")
    {
        frames.push(frame);
    }
    let replies = dispatch_frames(frames, core.peer_ip, framework, features, resources, &None);
    for reply in &replies {
        let encoded = aipow_wire::encode(reply);
        assert!(
            matches!(
                core.outbound.push(&encoded),
                aipow_net::reactor::QueuePush::Queued
            ),
            "benign reply overflowed the outbound queue"
        );
    }
    // The peer reads promptly: drain the queue (the reactor's write path
    // with a non-slow reader).
    let pending = core.outbound.pending_len();
    core.outbound.consume(pending);
}

/// Runs the connection-flood scenario on the reactor's fd-free core.
pub fn run_connflood(config: &ConnfloodConfig) -> ConnfloodOutcome {
    let framework = connflood_framework();
    let features = StaticFeatureSource::new(FeatureVector::zeros());
    let mut resources = HashMap::new();
    resources.insert("/r".to_string(), b"payload".to_vec());

    let gate = AcceptGate::new(config.max_connections, config.per_ip_cap);
    let mut table: ConnTable<ConnCore> = ConnTable::new();
    let mut wheel = DeadlineWheel::new(30_000, 256);
    let outbound_limit = 2 * 1024 * 1024;
    let idle_ms = 30_000u64;
    let mut now_ms = 0u64;

    // Phase 1: open the benign population (idle + active), one distinct
    // IP each, exactly as the accept path would: gate, table slot,
    // deadline-wheel entry.
    let benign_total = config.idle_connections + config.active_connections;
    let mut active_keys = Vec::with_capacity(config.active_connections);
    for i in 0..benign_total as u32 {
        let ip = benign_ip(i);
        assert_eq!(
            gate.try_admit(ip),
            AdmitDecision::Admit,
            "benign connection {i} refused"
        );
        let key = table.insert(ConnCore::new(ip, now_ms, outbound_limit));
        wheel.schedule(key, now_ms + idle_ms);
        if (i as usize) >= config.idle_connections {
            active_keys.push(key);
        }
    }

    // Phase 2: baseline benign latency with the full idle population
    // resident. Ping exchanges measure the reactor overhead (assembly,
    // dispatch, queueing) rather than puzzle difficulty.
    let mut baseline_ns = Vec::with_capacity(config.exchanges_per_phase);
    for n in 0..config.exchanges_per_phase {
        let key = active_keys[n % active_keys.len()];
        let core = table
            .get_mut(key)
            .expect("scenario invariant: active connections are never reaped here");
        let start = Instant::now();
        exchange(core, &framework, &features, &resources, n as u64);
        baseline_ns.push(start.elapsed().as_nanos() as u64);
        core.last_activity_ms = now_ms;
    }

    // Phase 3: the flood. One source hammers the accept gate; admissions
    // beyond the cap are refused before they cost a table slot. Interleave
    // benign exchanges with the flood attempts and time them — the
    // flatness claim is about benign latency *during* the attack.
    let mut flood_admitted = 0u64;
    let mut flood_rejected = 0u64;
    let mut flood_keys = Vec::new();
    let mut under_flood_ns = Vec::with_capacity(config.exchanges_per_phase);
    let attempts_per_exchange = (config.flood_attempts / config.exchanges_per_phase).max(1);
    let mut attempts_done = 0usize;
    for n in 0..config.exchanges_per_phase {
        for _ in 0..attempts_per_exchange {
            if attempts_done >= config.flood_attempts {
                break;
            }
            attempts_done += 1;
            match gate.try_admit(flood_ip()) {
                AdmitDecision::Admit => {
                    flood_admitted += 1;
                    let key = table.insert(ConnCore::new(flood_ip(), now_ms, outbound_limit));
                    wheel.schedule(key, now_ms + idle_ms);
                    flood_keys.push(key);
                }
                AdmitDecision::PerIpCap | AdmitDecision::MaxConnections => {
                    flood_rejected += 1;
                }
            }
        }
        let key = active_keys[n % active_keys.len()];
        let core = table
            .get_mut(key)
            .expect("scenario invariant: active connections are never reaped here");
        let start = Instant::now();
        exchange(core, &framework, &features, &resources, n as u64);
        under_flood_ns.push(start.elapsed().as_nanos() as u64);
        core.last_activity_ms = now_ms;
    }
    // Drain any remaining attempts so the rejection count reflects the
    // configured flood size regardless of the exchange count.
    while attempts_done < config.flood_attempts {
        attempts_done += 1;
        match gate.try_admit(flood_ip()) {
            AdmitDecision::Admit => {
                flood_admitted += 1;
                let key = table.insert(ConnCore::new(flood_ip(), now_ms, outbound_limit));
                wheel.schedule(key, now_ms + idle_ms);
                flood_keys.push(key);
            }
            AdmitDecision::PerIpCap | AdmitDecision::MaxConnections => flood_rejected += 1,
        }
    }
    let peak_open_connections = gate.open_connections();

    // Phase 4: idle memory audit. Every idle connection's buffers have
    // never held more than one small frame, so their shrunk heap cost
    // must sit under the per-connection budget.
    let mut idle_heap = 0usize;
    let mut idle_count = 0usize;
    for (key, core) in table.iter_mut() {
        if !active_keys.contains(&key) && !flood_keys.contains(&key) {
            idle_heap += core.heap_memory();
            idle_count += 1;
        }
    }
    let idle_heap_bytes_per_conn = idle_heap as f64 / idle_count.max(1) as f64;

    // Phase 5: the reaper. Advance past the idle deadline; every benign
    // idle and flood connection goes; the active set was touched (its
    // `last_activity_ms` advanced) but this sweep's deadline has passed
    // for it too at +2x idle, so the table must fully drain and the gate
    // must return to zero — the leak check.
    now_ms += 2 * idle_ms + wheel.granularity_ms();
    let mut reaped = 0usize;
    wheel.expire(now_ms, |key| {
        if let Some(core) = table.get_mut(key) {
            if now_ms.saturating_sub(core.last_activity_ms) >= idle_ms {
                let ip = core.peer_ip;
                table.remove(key);
                gate.release(ip);
                reaped += 1;
                return None;
            }
            return Some(core.last_activity_ms + idle_ms);
        }
        None
    });
    assert_eq!(table.len(), 0, "reaper left connections in the table");
    assert_eq!(gate.open_connections(), 0, "reaper leaked gate slots");

    ConnfloodOutcome {
        peak_open_connections,
        baseline: phase(baseline_ns),
        under_flood: phase(under_flood_ns),
        per_ip_cap: config.per_ip_cap,
        flood_admitted,
        flood_rejected,
        idle_heap_bytes_per_conn,
        reaped,
    }
}

/// Renders an outcome as a Markdown table for EXPERIMENTS.md.
pub fn connflood_to_markdown(outcome: &ConnfloodOutcome) -> String {
    format!(
        "| metric | value |\n|---|---:|\n\
         | peak open connections | {} |\n\
         | benign p50 baseline (µs) | {:.2} |\n\
         | benign p99 baseline (µs) | {:.2} |\n\
         | benign p50 under flood (µs) | {:.2} |\n\
         | benign p99 under flood (µs) | {:.2} |\n\
         | benign p99 ratio | {:.2} |\n\
         | flood admitted / cap | {} / {} |\n\
         | flood rejected at accept | {} |\n\
         | idle heap bytes per conn | {:.1} |\n\
         | reaped at deadline | {} |\n",
        outcome.peak_open_connections,
        outcome.baseline.p50_ns / 1e3,
        outcome.baseline.p99_ns / 1e3,
        outcome.under_flood.p50_ns / 1e3,
        outcome.under_flood.p99_ns / 1e3,
        outcome.benign_p99_ratio(),
        outcome.flood_admitted,
        outcome.per_ip_cap,
        outcome.flood_rejected,
        outcome.idle_heap_bytes_per_conn,
        outcome.reaped,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connflood_holds_structural_invariants_at_unit_scale() {
        let config = ConnfloodConfig {
            idle_connections: 2_000,
            active_connections: 32,
            exchanges_per_phase: 200,
            per_ip_cap: 16,
            flood_attempts: 1_000,
            max_connections: 4_096,
            ..Default::default()
        };
        let outcome = run_connflood(&config);
        // The cap is exact: the flooder holds precisely its allowance.
        assert_eq!(outcome.flood_admitted, 16);
        assert_eq!(outcome.flood_rejected, 1_000 - 16);
        // The whole benign population was concurrently resident.
        assert!(outcome.peak_open_connections >= 2_032);
        // Idle connections cost (shrunk) bounded heap.
        assert!(
            outcome.idle_heap_bytes_per_conn <= config.idle_memory_budget_bytes as f64,
            "idle heap {:.1} B/conn over budget {}",
            outcome.idle_heap_bytes_per_conn,
            config.idle_memory_budget_bytes
        );
        // Everything reaped at the end (asserted structurally inside the
        // run too; the count is reported for the suite).
        assert_eq!(outcome.reaped, 2_032 + 16);
        assert!(outcome.baseline.p50_ns > 0.0);
        let md = connflood_to_markdown(&outcome);
        assert!(md.contains("flood admitted"));
    }

    #[test]
    fn flood_capped_even_when_global_ceiling_is_tight() {
        // The global ceiling binds before the per-IP cap: the flooder is
        // then refused on MaxConnections, still at accept time.
        let outcome = run_connflood(&ConnfloodConfig {
            idle_connections: 100,
            active_connections: 8,
            exchanges_per_phase: 50,
            per_ip_cap: 64,
            flood_attempts: 200,
            max_connections: 120,
            ..Default::default()
        });
        assert_eq!(outcome.flood_admitted, 12, "108 benign + 12 = ceiling");
        assert_eq!(outcome.flood_rejected, 188);
    }
}
