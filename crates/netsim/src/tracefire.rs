//! The *tracefire* scenario: end-to-end proof of the tracing subsystem.
//!
//! A benign client and a flooder drive the real admission pipeline with
//! a tracer attached at 1-in-1 sampling. The flooder submits
//! garbage solutions (a valid issued challenge with nonce 0) fast enough
//! to push the rejection rate through the flight recorder's
//! `rejection_rate` trigger on the next metrics heartbeat. The scenario
//! then *hand-parses the frozen JSONL dump* — not the tracer's in-memory
//! API — and checks the structural claims the observability layer makes:
//!
//! - the trigger tripped, with reason `rejection_rate`;
//! - at least one of the flooder's request chains is **complete**
//!   (slots 0..=4, `score → bypass → policy → issue →
//!   request_telemetry`, in order);
//! - **zero broken stage orderings**: within every trace, slots appear
//!   in strictly increasing order (the per-shard rings preserve
//!   emission order, and a trace's spans all land in one shard);
//! - distinct requests carry distinct trace IDs.
//!
//! Driven by the clock, not wall time: the run is deterministic modulo
//! span durations (which the assertions never read).
//!
//! ```
//! use aipow_netsim::tracefire::{run_tracefire, TracefireConfig};
//!
//! let report = run_tracefire(&TracefireConfig::default());
//! assert!(report.tripped && report.broken_orderings == 0);
//! ```

use aipow_core::{Framework, FrameworkBuilder};
use aipow_pow::{ManualClock, NonceWidth, Solution, TimeSource};
use aipow_reputation::model::FixedScoreModel;
use aipow_reputation::{FeatureVector, ReputationScore};
use aipow_trace::{TraceConfig, Tracer, TriggerConfig};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};
use std::sync::Arc;

/// Parameters for one tracefire run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracefireConfig {
    /// Benign requests before the flood (request chains only).
    pub benign_requests: usize,
    /// Flood iterations; each is one request plus one garbage solution,
    /// so each contributes one rejection to the rate window.
    pub flood_requests: usize,
    /// The `rejection_rate` trigger threshold handed to the tracer.
    pub max_rejections_per_s: f64,
    /// Per-shard span ring capacity (the flight recorder's memory).
    pub ring_capacity: usize,
}

impl Default for TracefireConfig {
    fn default() -> Self {
        TracefireConfig {
            benign_requests: 32,
            flood_requests: 200,
            max_rejections_per_s: 50.0,
            ring_capacity: 4_096,
        }
    }
}

/// One parsed span line from the flight dump.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DumpSpan {
    trace_id: u64,
    slot: u8,
    ip: String,
}

/// What the frozen dump proved.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracefireReport {
    /// Whether the flight recorder tripped during the run.
    pub tripped: bool,
    /// The trip reason (empty when `tripped` is false).
    pub reason: String,
    /// Spans captured in the frozen dump.
    pub dump_spans: usize,
    /// Distinct trace IDs in the dump.
    pub distinct_traces: usize,
    /// Flooder request chains in the dump that are complete
    /// (slots 0,1,2,3,4 in order).
    pub complete_flooder_chains: usize,
    /// Traces whose slots appear out of order — must be zero.
    pub broken_orderings: usize,
    /// Spans the tracer dropped (ring full or contended) during the run.
    pub dropped: u64,
}

fn tracefire_framework(config: &TracefireConfig) -> (Framework, ManualClock, Arc<Tracer>) {
    let tracer = Arc::new(Tracer::new(TraceConfig {
        sample_every: 1,
        ring_capacity: config.ring_capacity,
        triggers: TriggerConfig {
            max_rejections_per_s: config.max_rejections_per_s,
            max_stage_p99_ns: 0,
        },
        ..TraceConfig::default()
    }));
    // Start the clock away from zero: the metrics rate window treats
    // `prev_ms == 0` as "no previous sample".
    let clock = ManualClock::at(5_000);
    let framework = FrameworkBuilder::new()
        .master_key([0x7Au8; 32])
        .model(FixedScoreModel::new(
            ReputationScore::new(5.0).expect("score 5.0 in [0,10]: range invariant"),
        ))
        .policy(aipow_policy::LinearPolicy::policy2())
        .clock(Arc::new(clock.clone()) as Arc<dyn TimeSource>)
        .tracer(Arc::clone(&tracer))
        .build()
        .expect("static config: builder invariant");
    (framework, clock, tracer)
}

/// Extracts `"key":<integer>` from one JSONL span line.
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Extracts `"key":"<string>"` from one JSONL span line.
fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let start = line.find(&needle)? + needle.len();
    line[start..].split('"').next()
}

fn parse_dump(jsonl: &str) -> Vec<DumpSpan> {
    jsonl
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|line| DumpSpan {
            trace_id: json_u64(line, "trace_id").expect("dump format invariant: trace_id"),
            slot: json_u64(line, "slot").expect("dump format invariant: slot") as u8,
            ip: json_str(line, "ip")
                .expect("dump format invariant: ip")
                .to_string(),
        })
        .collect()
}

/// Runs the scenario and reports what the frozen dump contained.
pub fn run_tracefire(config: &TracefireConfig) -> TracefireReport {
    let (framework, clock, tracer) = tracefire_framework(config);
    let benign = IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1));
    let flooder = IpAddr::V4(Ipv4Addr::new(192, 0, 2, 66));

    // Establish the rate window before anything is counted.
    let _ = framework.metrics_snapshot();

    // Benign phase: plain request chains.
    for _ in 0..config.benign_requests {
        let _ = framework.handle_request(benign, &FeatureVector::zeros());
    }

    // Flood phase: each iteration issues a real challenge to the flooder
    // and answers it with nonce 0 — a structurally valid submission that
    // (essentially surely) misses the target, so every iteration is one
    // rejection in the rate window without any solver work.
    for _ in 0..config.flood_requests {
        if let Some(issued) = framework
            .handle_request(flooder, &FeatureVector::zeros())
            .challenge()
        {
            let garbage = Solution {
                backend: issued.challenge.backend(),
                challenge: issued.challenge,
                nonce: 0,
                width: NonceWidth::U64,
            };
            let _ = framework.handle_solution(&garbage, flooder);
        }
    }

    // One second later the heartbeat sees the rejection rate and (if the
    // flood was fast enough for the configured threshold) trips the
    // flight recorder, freezing the rings.
    clock.advance(1_000);
    let _ = framework.metrics_snapshot();

    let dump = tracer.flight_dump();
    let (tripped, reason, jsonl, dump_spans) = match dump {
        Some(d) => (true, d.reason, d.jsonl, d.spans),
        None => (false, String::new(), String::new(), 0),
    };

    // Group the dump's lines by trace, preserving per-shard emission
    // order (a trace's spans all land in one shard, so per-trace order
    // survives the dump).
    let spans = parse_dump(&jsonl);
    let mut chains: HashMap<u64, Vec<&DumpSpan>> = HashMap::new();
    for span in &spans {
        chains.entry(span.trace_id).or_default().push(span);
    }

    let flooder_ip = flooder.to_string();
    let mut complete_flooder_chains = 0;
    let mut broken_orderings = 0;
    for chain in chains.values() {
        if chain.windows(2).any(|w| w[1].slot <= w[0].slot) {
            broken_orderings += 1;
        }
        let slots: Vec<u8> = chain.iter().map(|s| s.slot).collect();
        if chain[0].ip == flooder_ip && slots == [0, 1, 2, 3, 4] {
            complete_flooder_chains += 1;
        }
    }

    TracefireReport {
        tripped,
        reason,
        dump_spans,
        distinct_traces: chains.len(),
        complete_flooder_chains,
        broken_orderings,
        dropped: tracer.dropped(),
    }
}

/// Renders a report as a Markdown table for EXPERIMENTS.md.
pub fn tracefire_to_markdown(report: &TracefireReport) -> String {
    format!(
        "| tripped | reason | dump spans | traces | complete flooder chains | broken orderings | dropped |\n\
         |---|---|---:|---:|---:|---:|---:|\n\
         | {} | {} | {} | {} | {} | {} | {} |\n",
        report.tripped,
        if report.reason.is_empty() {
            "-"
        } else {
            &report.reason
        },
        report.dump_spans,
        report.distinct_traces,
        report.complete_flooder_chains,
        report.broken_orderings,
        report.dropped,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracefire_trips_and_freezes_ordered_chains() {
        let report = run_tracefire(&TracefireConfig::default());
        assert!(report.tripped, "flood did not trip the recorder");
        assert_eq!(report.reason, "rejection_rate");
        assert!(report.dump_spans > 0);
        assert!(
            report.complete_flooder_chains >= 1,
            "no complete flooder chain in the dump: {report:?}"
        );
        assert_eq!(report.broken_orderings, 0, "{report:?}");
        // Benign + flooder requests and flood solutions each carry their
        // own trace.
        assert!(report.distinct_traces > 200, "{report:?}");
    }

    #[test]
    fn quiet_run_does_not_trip() {
        let report = run_tracefire(&TracefireConfig {
            flood_requests: 10,
            max_rejections_per_s: 50.0,
            ..Default::default()
        });
        assert!(!report.tripped, "{report:?}");
        assert_eq!(report.dump_spans, 0);
    }

    #[test]
    fn markdown_renders_both_shapes() {
        let report = run_tracefire(&TracefireConfig {
            benign_requests: 4,
            flood_requests: 60,
            ..Default::default()
        });
        let md = tracefire_to_markdown(&report);
        assert!(md.contains("tripped"));
        assert!(md.lines().count() >= 3);
    }

    #[test]
    fn dump_line_parsers_extract_fields() {
        let line = "{\"trace_id\":7,\"ip\":\"10.0.0.1\",\"stage\":\"score\",\"slot\":0,\
                    \"batch\":1,\"start_ns\":5,\"duration_ns\":9,\"difficulty\":null,\
                    \"verdict\":\"pending\"}";
        assert_eq!(json_u64(line, "trace_id"), Some(7));
        assert_eq!(json_u64(line, "slot"), Some(0));
        assert_eq!(json_str(line, "ip"), Some("10.0.0.1"));
        assert_eq!(json_u64(line, "missing"), None);
    }
}
