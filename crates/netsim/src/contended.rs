//! Contended-admission throughput: the scaling proof for sharded state.
//!
//! Unlike the rest of this crate, this scenario is **not** a simulation:
//! it drives N real OS threads of distinct-IP admissions through the
//! real request-side path — per-IP rate limiter, feature table, then
//! [`aipow_core::Framework::handle_request`] (metrics + audit log) —
//! and measures aggregate wall-clock throughput. The point is the
//! concurrency story: before the per-client structures were sharded,
//! every admission serialized on global locks and thread counts beyond
//! one bought nothing; after sharding, distinct clients contend only on
//! hash-colliding shards. The solution-side structures (replay guard,
//! cost ledger) are covered by the `stress_sharded` integration tests,
//! where exactness rather than throughput is the claim. Results are
//! machine- and load-dependent, not bit-reproducible like the
//! event-engine scenarios.
//!
//! ```
//! use aipow_netsim::contended::{run_contended, ContendedConfig};
//!
//! let report = run_contended(&ContendedConfig {
//!     threads: vec![1, 2],
//!     ops_per_thread: 2_000,
//!     ..Default::default()
//! });
//! assert_eq!(report.rows.len(), 2);
//! assert!(report.rows[0].ops_per_sec > 0.0);
//! ```

use aipow_core::{
    FeatureSource, Framework, FrameworkBuilder, OnlineSettings, RateLimiter, StaticFeatureSource,
};
use aipow_online::OnlineLoop;
use aipow_policy::LinearPolicy;
use aipow_reputation::model::FixedScoreModel;
use aipow_reputation::{FeatureVector, ReputationScore};
use serde::{Deserialize, Serialize};
use std::net::{IpAddr, Ipv4Addr};
use std::sync::Arc;
use std::time::Instant;

/// Parameters for the contended-admission measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContendedConfig {
    /// Thread counts to measure, in order (the paper-style scaling report
    /// uses 1, 4, 8).
    pub threads: Vec<usize>,
    /// Admissions each thread performs per measurement.
    pub ops_per_thread: usize,
    /// Distinct client IPs each thread cycles through (distinct across
    /// threads too, so admissions never share a client).
    pub ips_per_thread: usize,
    /// Explicit shard count for the framework's per-client structures;
    /// `None` uses the automatic choice.
    pub shard_count: Option<usize>,
    /// Attach the online behavior recorder (`aipow-online`) and serve
    /// features from the blending behavioral source, so the measurement
    /// covers the full online-loop admission path. The acceptance bar:
    /// throughput with the recorder enabled stays within ~10 % of the
    /// recorder-free path (no new global lock).
    pub online: bool,
}

impl Default for ContendedConfig {
    fn default() -> Self {
        ContendedConfig {
            threads: vec![1, 4, 8],
            ops_per_thread: 50_000,
            ips_per_thread: 1_024,
            shard_count: None,
            online: false,
        }
    }
}

/// One measured thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContendedRow {
    /// Number of admission threads.
    pub threads: usize,
    /// Total admissions completed across all threads.
    pub total_ops: u64,
    /// Wall-clock time for the batch, milliseconds.
    pub elapsed_ms: f64,
    /// Aggregate throughput in admissions per second.
    pub ops_per_sec: f64,
}

/// The full scaling report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContendedReport {
    /// One row per measured thread count, in config order.
    pub rows: Vec<ContendedRow>,
    /// Shard count of the audit log (the admission path's hottest shared
    /// structure), recorded so reports are interpretable.
    pub audit_shards: u64,
}

/// The request-side admission path under measurement, mirroring what the
/// TCP server runs per `RequestResource`: rate-limit check → feature
/// lookup → `Framework::handle_request` (which records metrics and the
/// audit event). The solution-side structures (replay guard, cost
/// ledger) are not on this path — their concurrent exactness is covered
/// by `tests/stress_sharded.rs` instead, since driving them here would
/// mostly measure SHA-256 solving, not lock contention.
pub struct AdmissionPath {
    /// The composed framework (audit log, metrics, issuer).
    pub framework: Arc<Framework>,
    /// The server-layer per-IP rate limiter (sized to never deny, so the
    /// measurement stays about contention, not rejection short-circuits).
    pub limiter: RateLimiter,
    /// The server-layer per-IP feature source (the static table, or the
    /// behavioral source when the online loop is attached).
    pub features: Arc<dyn FeatureSource>,
    /// The attached online loop, when measuring the recorder-enabled
    /// path.
    pub online: Option<Arc<OnlineLoop>>,
}

impl std::fmt::Debug for AdmissionPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionPath")
            .field("framework", &self.framework)
            .field("online", &self.online.is_some())
            .finish_non_exhaustive()
    }
}

/// Builds the admission path under a fixed mid-range score through
/// Policy 2, so the measured cost is the pipeline itself, not model
/// inference. Shared by the scenario and the criterion bench. With
/// `online`, the behavior recorder taps every admission and features are
/// served through the blending behavioral source — the full online-loop
/// hot path.
pub fn contended_path_with(shard_count: Option<usize>, online: bool) -> AdmissionPath {
    let mut builder = FrameworkBuilder::new()
        .master_key([0x5Au8; 32])
        .model(FixedScoreModel::new(
            ReputationScore::new(5.0).expect("score in range"),
        ))
        .policy(LinearPolicy::policy2());
    if let Some(shards) = shard_count {
        builder = builder.shard_count(shards);
    }
    let limiter = match shard_count {
        Some(shards) => RateLimiter::with_shards(1e12, 1e6, 1 << 20, shards),
        None => RateLimiter::new(1e12, 1e6, 1 << 20),
    };
    let table = match shard_count {
        Some(shards) => StaticFeatureSource::with_shards(FeatureVector::zeros(), shards),
        None => StaticFeatureSource::new(FeatureVector::zeros()),
    };
    let framework = Arc::new(builder.build().expect("framework builds"));
    let (features, online) = if online {
        let settings = OnlineSettings {
            // Room for every distinct IP the drivers cycle through, so
            // the measurement covers recording, not eviction churn.
            capacity: 1 << 20,
            shard_count,
            ..Default::default()
        };
        let online = OnlineLoop::attach(Arc::clone(&framework), Arc::new(table), settings)
            .expect("fresh framework has no sink");
        (online.source() as Arc<dyn FeatureSource>, Some(online))
    } else {
        (Arc::new(table) as Arc<dyn FeatureSource>, None)
    };
    AdmissionPath {
        framework,
        limiter,
        features,
        online,
    }
}

/// [`contended_path_with`] without the online loop (the PR 2 baseline).
pub fn contended_path(shard_count: Option<usize>) -> AdmissionPath {
    contended_path_with(shard_count, false)
}

/// The per-thread admission loop: `ops` requests from this thread's
/// private slice of the IP space. Public so the `contended_admission`
/// criterion bench drives the exact same workload this scenario reports.
pub fn drive(path: &AdmissionPath, thread_id: usize, ops: usize, ips: usize) {
    for i in 0..ops {
        // 10.T.x.y — thread-private /16 so clients are distinct across
        // threads and cycle within each thread.
        let low = (i % ips.max(1)) as u32;
        let ip = IpAddr::V4(Ipv4Addr::from(
            (10u32 << 24) | ((thread_id as u32) << 16) | low,
        ));
        let _ = path.limiter.allow(ip, i as u64);
        let features = path.features.features_for(ip);
        let _ = path.framework.handle_request(ip, &features);
    }
}

/// Builds a framework and measures aggregate `handle_request` throughput
/// at each configured thread count.
pub fn run_contended(config: &ContendedConfig) -> ContendedReport {
    let path = contended_path_with(config.shard_count, config.online);
    let audit_shards = path.framework.audit().shard_count() as u64;

    let rows = config
        .threads
        .iter()
        .map(|&threads| {
            let threads = threads.max(1);
            let start = Instant::now();
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let path = &path;
                    scope.spawn(move || {
                        drive(path, t, config.ops_per_thread, config.ips_per_thread)
                    });
                }
            });
            let elapsed = start.elapsed();
            let total_ops = (threads * config.ops_per_thread) as u64;
            let secs = elapsed.as_secs_f64().max(f64::EPSILON);
            ContendedRow {
                threads,
                total_ops,
                elapsed_ms: elapsed.as_secs_f64() * 1_000.0,
                ops_per_sec: total_ops as f64 / secs,
            }
        })
        .collect();

    ContendedReport { rows, audit_shards }
}

/// Renders the report as a Markdown table for EXPERIMENTS.md.
pub fn contended_to_markdown(report: &ContendedReport) -> String {
    let mut out = String::new();
    out.push_str("| threads | total ops | elapsed (ms) | ops/sec |\n");
    out.push_str("|---|---|---|---|\n");
    for row in &report.rows {
        out.push_str(&format!(
            "| {} | {} | {:.1} | {:.0} |\n",
            row.threads, row.total_ops, row.elapsed_ms, row.ops_per_sec
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ContendedConfig {
        ContendedConfig {
            threads: vec![1, 4, 8],
            ops_per_thread: 1_000,
            ips_per_thread: 64,
            shard_count: Some(8),
            online: false,
        }
    }

    #[test]
    fn reports_every_thread_count_with_positive_throughput() {
        let report = run_contended(&tiny());
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.audit_shards, 8);
        for (row, threads) in report.rows.iter().zip([1, 4, 8]) {
            assert_eq!(row.threads, threads);
            assert_eq!(row.total_ops, (threads * 1_000) as u64);
            assert!(row.ops_per_sec > 0.0);
            assert!(row.elapsed_ms > 0.0);
        }
    }

    #[test]
    fn markdown_table_has_a_row_per_measurement() {
        let report = run_contended(&ContendedConfig {
            threads: vec![1],
            ops_per_thread: 100,
            ..tiny()
        });
        let md = contended_to_markdown(&report);
        assert_eq!(md.lines().count(), 3); // header + separator + 1 row
        assert!(md.contains("| 1 | 100 |"));
    }

    #[test]
    fn online_path_records_every_admission() {
        let path = contended_path_with(Some(8), true);
        drive(&path, 0, 1_000, 64);
        let online = path.online.as_ref().expect("online loop attached");
        assert_eq!(online.recorder().total_requests(), 1_000);
        assert_eq!(online.recorder().len(), 64);
        // The report runs too, with the recorder on the path.
        let report = run_contended(&ContendedConfig {
            threads: vec![1, 4],
            ops_per_thread: 1_000,
            online: true,
            ..tiny()
        });
        assert_eq!(report.rows.len(), 2);
        assert!(report.rows.iter().all(|r| r.ops_per_sec > 0.0));
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let report = run_contended(&ContendedConfig {
            threads: vec![0],
            ops_per_thread: 10,
            ..tiny()
        });
        assert_eq!(report.rows[0].threads, 1);
    }
}
