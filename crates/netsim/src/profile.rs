//! Solver/latency profiles.
//!
//! A profile captures the two constants that set the latency scale of the
//! whole evaluation: the client's effective hash rate and the fixed
//! per-request overhead (network round trips plus server processing).
//!
//! [`SolverProfile::testbed_2022`] is calibrated against the paper's two
//! anchors: “it takes 31 ms on average to solve a 1-difficult puzzle” and
//! the ≈ 900 ms median of Policy 2 at reputation 10 in Figure 2. Those pin
//! `overhead ≈ 30 ms` and `hash rate ≈ 26 kH/s` (a Python-grade solver on
//! the authors' testbed). Native profiles measure this machine instead.

use crate::sample;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A client latency model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverProfile {
    /// Hash evaluations per second the client sustains.
    pub hash_rate_hz: f64,
    /// Fixed per-request overhead in milliseconds: network round trips
    /// (request → challenge, solution → response) plus server processing.
    pub overhead_ms: f64,
}

impl SolverProfile {
    /// The calibrated reproduction of the paper's testbed (see module
    /// docs and EXPERIMENTS.md §calibration).
    pub fn testbed_2022() -> Self {
        SolverProfile {
            hash_rate_hz: 26_000.0,
            overhead_ms: 30.0,
        }
    }

    /// A native profile with an explicitly measured hash rate (use
    /// [`aipow_pow::solver::measure_hash_rate`]) and loopback-grade
    /// overhead.
    pub fn native(hash_rate_hz: f64) -> Self {
        SolverProfile {
            hash_rate_hz,
            overhead_ms: 0.3,
        }
    }

    /// Creates a fully custom profile.
    ///
    /// # Panics
    ///
    /// Panics if the hash rate is not finite-positive or the overhead is
    /// negative.
    pub fn new(hash_rate_hz: f64, overhead_ms: f64) -> Self {
        assert!(
            hash_rate_hz.is_finite() && hash_rate_hz > 0.0,
            "hash rate must be positive"
        );
        assert!(
            overhead_ms.is_finite() && overhead_ms >= 0.0,
            "overhead must be non-negative"
        );
        SolverProfile {
            hash_rate_hz,
            overhead_ms,
        }
    }

    /// Samples one end-to-end request latency (ms) at the given difficulty:
    /// overhead plus `Geometric(2^-d)` attempts at the profile's hash rate.
    pub fn sample_latency_ms<R: Rng + ?Sized>(&self, rng: &mut R, difficulty_bits: u8) -> f64 {
        let attempts = sample::attempts_to_solve(rng, difficulty_bits);
        self.overhead_ms + attempts as f64 / self.hash_rate_hz * 1_000.0
    }

    /// Samples only the solve time (ms), without overhead — what the DDoS
    /// simulator charges a bot between request and submission.
    pub fn sample_solve_ms<R: Rng + ?Sized>(&self, rng: &mut R, difficulty_bits: u8) -> f64 {
        let attempts = sample::attempts_to_solve(rng, difficulty_bits);
        attempts as f64 / self.hash_rate_hz * 1_000.0
    }

    /// Expected (mean) end-to-end latency in ms at a difficulty.
    pub fn expected_latency_ms(&self, difficulty_bits: u8) -> f64 {
        self.overhead_ms + (difficulty_bits as f64).exp2() / self.hash_rate_hz * 1_000.0
    }

    /// Median end-to-end latency in ms at a difficulty (geometric median
    /// ≈ `ln 2 · 2^d` attempts).
    pub fn median_latency_ms(&self, difficulty_bits: u8) -> f64 {
        let median_attempts = if difficulty_bits == 0 {
            1.0
        } else {
            core::f64::consts::LN_2 * (difficulty_bits as f64).exp2()
        };
        self.overhead_ms + median_attempts / self.hash_rate_hz * 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Calibration anchor 1: the paper's “31 ms on average to solve a
    /// 1-difficult puzzle”.
    #[test]
    fn testbed_anchor_one_difficult_31ms() {
        let p = SolverProfile::testbed_2022();
        let mean = p.expected_latency_ms(1);
        assert!(
            (mean - 31.0).abs() < 2.0,
            "1-difficult mean {mean:.1} ms, paper says 31 ms"
        );
    }

    /// Calibration anchor 2: Figure 2's Policy 2 tops out near 900 ms at
    /// reputation 10 (difficulty 15), reading medians.
    #[test]
    fn testbed_anchor_policy2_top_900ms() {
        let p = SolverProfile::testbed_2022();
        let median = p.median_latency_ms(15);
        assert!(
            (800.0..1_000.0).contains(&median),
            "15-difficult median {median:.0} ms, Figure 2 shows ≈ 900 ms"
        );
    }

    #[test]
    fn latency_doubles_per_bit_asymptotically() {
        let p = SolverProfile::testbed_2022();
        let high = p.expected_latency_ms(16) - p.overhead_ms;
        let low = p.expected_latency_ms(15) - p.overhead_ms;
        assert!((high / low - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sampled_latency_mean_matches_expectation() {
        let p = SolverProfile::testbed_2022();
        let mut rng = StdRng::seed_from_u64(11);
        let d = 8u8;
        let n = 20_000;
        let total: f64 = (0..n).map(|_| p.sample_latency_ms(&mut rng, d)).sum();
        let mean = total / n as f64;
        let expected = p.expected_latency_ms(d);
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "sampled {mean:.2} vs expected {expected:.2}"
        );
    }

    #[test]
    fn solve_ms_excludes_overhead() {
        let p = SolverProfile::new(1_000.0, 100.0);
        let mut rng = StdRng::seed_from_u64(12);
        // d=0: exactly one attempt = 1 ms at 1 kH/s.
        assert!((p.sample_solve_ms(&mut rng, 0) - 1.0).abs() < 1e-9);
        assert!((p.sample_latency_ms(&mut rng, 0) - 101.0).abs() < 1e-9);
    }

    #[test]
    fn native_profile_has_small_overhead() {
        let p = SolverProfile::native(5_000_000.0);
        assert!(p.overhead_ms < 1.0);
        assert!(p.expected_latency_ms(20) < 1_000.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_hash_rate_panics() {
        SolverProfile::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_overhead_panics() {
        SolverProfile::new(1.0, -1.0);
    }

    #[test]
    fn median_below_mean() {
        let p = SolverProfile::testbed_2022();
        for d in 1..=20u8 {
            assert!(p.median_latency_ms(d) < p.expected_latency_ms(d));
        }
    }
}
