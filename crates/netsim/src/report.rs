//! CSV and Markdown rendering for experiment results.
//!
//! The `reproduce` binary (in `aipow-bench`) writes these artifacts under
//! `experiments/`; EXPERIMENTS.md quotes them.

use crate::fig2::Fig2Table;
use crate::scenario::DdosOutcome;
use aipow_metrics::Summary;

/// Renders the Figure 2 table as CSV:
/// `policy,reputation,mean_difficulty_bits,<summary fields>`.
pub fn fig2_to_csv(table: &Fig2Table) -> String {
    let mut out = String::new();
    out.push_str("policy,reputation,mean_difficulty_bits,");
    out.push_str(Summary::CSV_HEADER);
    out.push('\n');
    for row in &table.rows {
        out.push_str(&format!(
            "{},{},{:.2},{}\n",
            row.policy,
            row.reputation,
            row.mean_difficulty_bits,
            row.summary.to_csv_fields()
        ));
    }
    out
}

/// Renders the Figure 2 table as a Markdown table of median latencies
/// (ms), one row per reputation score, one column per policy — the same
/// series the paper plots.
pub fn fig2_to_markdown(table: &Fig2Table) -> String {
    let policies = table.policies();
    let mut out = String::new();
    out.push_str("| reputation |");
    for p in &policies {
        out.push_str(&format!(" {p} median (ms) |"));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in &policies {
        out.push_str("---|");
    }
    out.push('\n');
    for band in 0u8..=10 {
        out.push_str(&format!("| {band} |"));
        for p in &policies {
            match table.median_ms(p, band) {
                Some(m) => out.push_str(&format!(" {m:.1} |")),
                None => out.push_str(" — |"),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders a set of labelled DDoS outcomes as a Markdown comparison table.
pub fn ddos_to_markdown(outcomes: &[(String, DdosOutcome)]) -> String {
    let mut out = String::new();
    out.push_str(
        "| scenario | benign goodput (rps) | bot goodput (rps) | benign share | \
         benign p50 latency (ms) | server util | peak queue |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|\n");
    for (label, o) in outcomes {
        out.push_str(&format!(
            "| {} | {:.1} | {:.1} | {:.2} | {:.1} | {:.2} | {} |\n",
            label,
            o.benign_goodput_rps,
            o.bot_goodput_rps,
            o.benign_share,
            o.benign_latency_ms.median,
            o.server_utilization,
            o.peak_queue,
        ));
    }
    out
}

/// Renders labelled DDoS outcomes as CSV.
pub fn ddos_to_csv(outcomes: &[(String, DdosOutcome)]) -> String {
    let mut out = String::from(
        "scenario,benign_goodput_rps,bot_goodput_rps,benign_share,benign_p50_ms,\
         benign_p99_ms,server_utilization,peak_queue,benign_dropped,bot_dropped,\
         challenges_issued,challenges_abandoned\n",
    );
    for (label, o) in outcomes {
        out.push_str(&format!(
            "{},{:.3},{:.3},{:.4},{:.3},{:.3},{:.4},{},{},{},{},{}\n",
            label,
            o.benign_goodput_rps,
            o.bot_goodput_rps,
            o.benign_share,
            o.benign_latency_ms.median,
            o.benign_latency_ms.p99,
            o.server_utilization,
            o.peak_queue,
            o.benign_dropped,
            o.bot_dropped,
            o.challenges_issued,
            o.challenges_abandoned,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig2::{run_paper_policies, Fig2Config};
    use crate::scenario::{self, DdosConfig};
    use aipow_policy::LinearPolicy;

    fn small_fig2() -> Fig2Table {
        run_paper_policies(&Fig2Config {
            trials: 5,
            ..Default::default()
        })
    }

    #[test]
    fn fig2_csv_shape() {
        let csv = fig2_to_csv(&small_fig2());
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 1 + 33);
        assert!(lines[0].starts_with("policy,reputation,"));
        let fields = lines[1].split(',').count();
        assert_eq!(fields, lines[0].split(',').count());
    }

    #[test]
    fn fig2_markdown_has_all_bands() {
        let md = fig2_to_markdown(&small_fig2());
        for band in 0..=10 {
            assert!(md.contains(&format!("| {band} |")), "missing band {band}");
        }
        assert!(md.contains("policy1"));
        assert!(md.contains("policy3"));
    }

    #[test]
    fn ddos_renderers_cover_labels() {
        let cfg = DdosConfig {
            duration_s: 5.0,
            n_benign: 5,
            n_bots: 10,
            ..Default::default()
        };
        let outcome = scenario::run(&LinearPolicy::policy2(), &cfg);
        let rows = vec![("defended".to_string(), outcome)];
        let md = ddos_to_markdown(&rows);
        assert!(md.contains("defended"));
        let csv = ddos_to_csv(&rows);
        assert!(csv.lines().count() == 2);
        assert!(csv.contains("defended"));
    }
}
