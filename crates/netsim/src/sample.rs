//! Distributions of the solve process.
//!
//! Each hash evaluation of a `d`-difficult puzzle succeeds independently
//! with probability `p = 2^-d`, so the attempt count is geometric. Sampling
//! it exactly (rather than hashing) is what lets the simulator reproduce
//! the paper's latency curves in microseconds of CPU time — the
//! distribution is identical to the real solver's by construction, which
//! the `attempts_distribution_matches_solver` test below verifies against
//! `aipow-pow`.

use rand::Rng;

/// Samples the number of attempts to solve a `d`-difficult puzzle:
/// `Geometric(p = 2^-d)`, support `{1, 2, …}`, via inversion.
///
/// Exact for `d = 0` (always 1 attempt) and numerically stable for large
/// `d`, where the geometric is indistinguishable from an exponential with
/// mean `2^d`.
///
/// # Panics
///
/// Panics if `difficulty_bits > 64`.
pub fn attempts_to_solve<R: Rng + ?Sized>(rng: &mut R, difficulty_bits: u8) -> u64 {
    assert!(difficulty_bits <= 64, "difficulty exceeds 64 bits");
    if difficulty_bits == 0 {
        return 1;
    }
    let p = (-(difficulty_bits as f64)).exp2();
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    // Inversion: ceil(ln U / ln(1-p)). For small p, ln(1-p) ≈ -p suffers no
    // practical loss; use ln_1p for accuracy.
    let attempts = (u.ln() / (-p).ln_1p()).ceil();
    if attempts < 1.0 {
        1
    } else if attempts >= u64::MAX as f64 {
        u64::MAX
    } else {
        attempts as u64
    }
}

/// Samples an exponential inter-arrival gap with the given mean (used for
/// Poisson request processes).
///
/// # Panics
///
/// Panics if `mean` is not finite and positive.
pub fn exponential_gap<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(
        mean.is_finite() && mean > 0.0,
        "exponential mean must be positive"
    );
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// A standard normal draw (Box–Muller), for score-noise modelling.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_difficulty_is_one_attempt() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(attempts_to_solve(&mut rng, 0), 1);
        }
    }

    #[test]
    fn mean_attempts_near_two_pow_d() {
        let mut rng = StdRng::seed_from_u64(2);
        for d in [4u8, 8, 10] {
            let n = 20_000;
            let total: u64 = (0..n).map(|_| attempts_to_solve(&mut rng, d)).sum();
            let mean = total as f64 / n as f64;
            let expected = (d as f64).exp2();
            let rel = (mean - expected).abs() / expected;
            assert!(rel < 0.05, "d={d}: mean {mean} vs {expected}");
        }
    }

    #[test]
    fn median_attempts_near_ln2_fraction() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = 10u8;
        let mut samples: Vec<u64> = (0..20_001)
            .map(|_| attempts_to_solve(&mut rng, d))
            .collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2] as f64;
        let expected = 0.693 * 1024.0;
        assert!(
            (median - expected).abs() / expected < 0.08,
            "median {median} vs {expected}"
        );
    }

    /// The sampled distribution must match the *real* solver's attempt
    /// distribution — this is the bridge that justifies simulating instead
    /// of hashing (DESIGN.md §5.6).
    #[test]
    fn attempts_distribution_matches_solver() {
        use aipow_pow::{solver, Difficulty, Issuer};
        use std::net::{IpAddr, Ipv4Addr};

        let d = 6u8; // mean 64 attempts: cheap but nontrivial
        let trials = 300;

        let issuer = Issuer::new(&[17u8; 32]);
        let ip = IpAddr::V4(Ipv4Addr::new(192, 0, 2, 77));
        let mut real_total = 0u64;
        for _ in 0..trials {
            let c = issuer.issue(ip, Difficulty::new(d).unwrap());
            real_total += solver::solve(&c, ip, &Default::default()).unwrap().attempts;
        }
        let real_mean = real_total as f64 / trials as f64;

        let mut rng = StdRng::seed_from_u64(4);
        let sim_total: u64 = (0..trials).map(|_| attempts_to_solve(&mut rng, d)).sum();
        let sim_mean = sim_total as f64 / trials as f64;

        // Both estimate a mean-64 geometric from 300 samples; the standard
        // error is 64/sqrt(300) ≈ 3.7, so a 35 % band is conservative but
        // non-vacuous.
        let rel = (real_mean - sim_mean).abs() / real_mean;
        assert!(
            rel < 0.35,
            "real mean {real_mean:.1} vs simulated {sim_mean:.1}"
        );
    }

    #[test]
    fn large_difficulty_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = attempts_to_solve(&mut rng, 64);
        assert!(v >= 1);
    }

    #[test]
    #[should_panic(expected = "64 bits")]
    fn oversized_difficulty_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        attempts_to_solve(&mut rng, 65);
    }

    #[test]
    fn exponential_mean_checks_out() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| exponential_gap(&mut rng, 5.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 5.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_bad_mean() {
        let mut rng = StdRng::seed_from_u64(8);
        exponential_gap(&mut rng, 0.0);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03);
        assert!((var - 1.0).abs() < 0.05);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(10);
        let mut b = StdRng::seed_from_u64(10);
        for _ in 0..100 {
            assert_eq!(attempts_to_solve(&mut a, 12), attempts_to_solve(&mut b, 12));
        }
    }
}
