//! Pipelined-burst admission: the batch path measured against the
//! sequential path it must be equivalent to.
//!
//! The scenario models the traffic the TCP server's frame-draining loop
//! produces: clients whose requests arrive in pipelined bursts of `k`,
//! admitted through [`aipow_core::Framework::handle_request_batch`] in
//! one pipeline pass per burst. Two identically configured frameworks
//! run the same request schedule — one a request at a time, one a burst
//! at a time — and the scenario reports:
//!
//! - **decision equivalence**: every burst's batch decisions must equal
//!   the sequential path's (score, bypass flag, difficulty), which is
//!   the batching correctness claim at scenario scale (the
//!   `batch_equivalence` proptest proves it exhaustively at unit
//!   scale);
//! - **admission latency**: per-request p50/p99 for both paths, where
//!   the batch path's per-request cost must *hold* (not regress) as the
//!   fixed costs amortize across the burst.
//!
//! Like [`crate::contended`], this is a real-thread measurement against
//! a live framework, machine-dependent by design; the decision
//! equivalence half is exact on any machine.

use aipow_core::{AdmissionDecision, Framework, FrameworkBuilder};
use aipow_policy::LinearPolicy;
use aipow_reputation::{FeatureVector, ReputationModel, ReputationScore};
use serde::{Deserialize, Serialize};
use std::net::{IpAddr, Ipv4Addr};
use std::time::Instant;

/// Scores lane 0 of the feature vector directly, so the scenario can
/// drive a mix of bypassed and challenged decisions from plain data.
#[derive(Debug, Clone, Copy)]
struct Lane0Model;

impl ReputationModel for Lane0Model {
    fn score(&self, features: &FeatureVector) -> ReputationScore {
        ReputationScore::new(features.get(0).clamp(0.0, 10.0)).expect("clamped into range")
    }

    fn name(&self) -> &'static str {
        "lane0"
    }
}

/// Parameters for the burst measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BurstConfig {
    /// Pipelined requests per burst (the `k` the server's frame drain
    /// would collect from one connection wakeup).
    pub burst_len: usize,
    /// Bursts to run (each from one client, round-robin).
    pub bursts: usize,
    /// Distinct clients cycling through the bursts; client scores are
    /// spread over the policy range so decisions are heterogeneous
    /// (some bypassed, most challenged at varying difficulties).
    pub clients: usize,
    /// Framework batch ceiling (`FrameworkBuilder::max_batch`); bursts
    /// longer than this are chunked by the framework itself.
    pub max_batch: usize,
}

impl Default for BurstConfig {
    fn default() -> Self {
        BurstConfig {
            burst_len: 32,
            bursts: 400,
            clients: 16,
            max_batch: 128,
        }
    }
}

/// The measured outcome of one burst run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BurstReport {
    /// Requests per burst.
    pub burst_len: usize,
    /// Total requests admitted per path.
    pub requests: usize,
    /// Decisions where the batch path diverged from the sequential path
    /// (must be zero).
    pub mismatches: usize,
    /// Bypass admissions observed (sanity: the schedule exercises both
    /// decision shapes).
    pub bypassed: usize,
    /// Sequential per-request admission latency, ns.
    pub seq_p50_ns: f64,
    /// Sequential 99th percentile, ns.
    pub seq_p99_ns: f64,
    /// Batch-path per-request admission latency (burst time / burst
    /// length), ns.
    pub batch_p50_ns: f64,
    /// Batch-path 99th percentile, ns.
    pub batch_p99_ns: f64,
}

impl BurstReport {
    /// Sequential p50 over batch p50: >1 means the batch path is
    /// faster per request.
    pub fn p50_speedup(&self) -> f64 {
        self.seq_p50_ns / self.batch_p50_ns.max(1.0)
    }
}

fn build_framework(max_batch: usize) -> Framework {
    FrameworkBuilder::new()
        .master_key([0x42u8; 32])
        .model(Lane0Model)
        .policy(LinearPolicy::policy2())
        .bypass_threshold(1.0)
        .max_batch(max_batch)
        .build()
        .expect("framework builds")
}

fn client_ip(client: usize) -> IpAddr {
    IpAddr::V4(Ipv4Addr::from(0x0A20_0000u32 | client as u32))
}

/// The per-client score schedule: spread over `[0, 8]` so client 0
/// bypasses (score 0 < threshold 1) and the rest land on distinct
/// Policy-2 difficulties.
fn client_features(client: usize, clients: usize) -> FeatureVector {
    let score = 8.0 * client as f64 / clients.max(1) as f64;
    FeatureVector::zeros().with(0, score)
}

fn percentile(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64
}

/// Runs the same burst schedule through the sequential and batch paths
/// and compares decisions burst by burst.
pub fn run_burst(config: &BurstConfig) -> BurstReport {
    let burst_len = config.burst_len.max(1);
    let seq = build_framework(config.max_batch.max(1));
    let batch = build_framework(config.max_batch.max(1));

    let features: Vec<FeatureVector> = (0..config.clients.max(1))
        .map(|c| client_features(c, config.clients.max(1)))
        .collect();

    let mut mismatches = 0usize;
    let mut bypassed = 0usize;
    let mut seq_ns: Vec<u64> = Vec::with_capacity(config.bursts);
    let mut batch_ns: Vec<u64> = Vec::with_capacity(config.bursts);

    for b in 0..config.bursts {
        let client = b % features.len();
        let ip = client_ip(client);
        let fv = &features[client];

        let start = Instant::now();
        let seq_decisions: Vec<AdmissionDecision> =
            (0..burst_len).map(|_| seq.handle_request(ip, fv)).collect();
        seq_ns.push((start.elapsed().as_nanos() as u64) / burst_len as u64);

        let requests: Vec<(IpAddr, &FeatureVector)> = vec![(ip, fv); burst_len];
        let start = Instant::now();
        let batch_decisions = batch.handle_request_batch(&requests);
        batch_ns.push((start.elapsed().as_nanos() as u64) / burst_len as u64);

        for (s, g) in seq_decisions.iter().zip(&batch_decisions) {
            let same = match (s, g) {
                (AdmissionDecision::Admit { score: a }, AdmissionDecision::Admit { score: b }) => {
                    bypassed += 1;
                    a == b
                }
                (AdmissionDecision::Challenge(a), AdmissionDecision::Challenge(b)) => {
                    a.score == b.score && a.difficulty == b.difficulty
                }
                _ => false,
            };
            if !same {
                mismatches += 1;
            }
        }
    }

    seq_ns.sort_unstable();
    batch_ns.sort_unstable();
    BurstReport {
        burst_len,
        requests: config.bursts * burst_len,
        mismatches,
        bypassed,
        seq_p50_ns: percentile(&seq_ns, 0.50),
        seq_p99_ns: percentile(&seq_ns, 0.99),
        batch_p50_ns: percentile(&batch_ns, 0.50),
        batch_p99_ns: percentile(&batch_ns, 0.99),
    }
}

/// Renders the report as a Markdown table for EXPERIMENTS.md.
pub fn burst_to_markdown(report: &BurstReport) -> String {
    let mut out = String::new();
    out.push_str("| burst | requests | seq p50 (ns) | seq p99 (ns) | batch p50 (ns) | batch p99 (ns) | p50 speedup |\n");
    out.push_str("|---|---|---|---|---|---|---|\n");
    out.push_str(&format!(
        "| {} | {} | {:.0} | {:.0} | {:.0} | {:.0} | {:.2}x |\n",
        report.burst_len,
        report.requests,
        report.seq_p50_ns,
        report.seq_p99_ns,
        report.batch_p50_ns,
        report.batch_p99_ns,
        report.p50_speedup(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BurstConfig {
        BurstConfig {
            burst_len: 8,
            bursts: 30,
            clients: 6,
            max_batch: 32,
        }
    }

    #[test]
    fn burst_decisions_always_match_sequential() {
        let report = run_burst(&tiny());
        assert_eq!(report.mismatches, 0);
        assert_eq!(report.requests, 240);
        assert!(report.bypassed > 0, "schedule must exercise the bypass");
        assert!(report.seq_p50_ns > 0.0);
        assert!(report.batch_p50_ns > 0.0);
    }

    #[test]
    fn burst_longer_than_max_batch_is_chunked_not_truncated() {
        let report = run_burst(&BurstConfig {
            burst_len: 16,
            bursts: 10,
            clients: 3,
            max_batch: 4,
        });
        assert_eq!(report.mismatches, 0);
        assert_eq!(report.requests, 160);
    }

    #[test]
    fn markdown_has_one_data_row() {
        let md = burst_to_markdown(&run_burst(&tiny()));
        assert_eq!(md.lines().count(), 3);
        assert!(md.contains("| 8 | 240 |"));
    }
}
