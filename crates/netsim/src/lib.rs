//! Deterministic evaluation testbed for the framework (paper §III).
//!
//! The paper's evaluation ran on the authors' (Python, networked) testbed:
//! 31 ms to solve a 1-difficult puzzle, ~900 ms at the top of Policy 2.
//! A native Rust solver is three orders of magnitude faster, so absolute
//! reproduction is impossible by construction. This crate therefore
//! provides:
//!
//! - [`profile`] — solver/latency profiles, including the calibrated
//!   [`SolverProfile::testbed_2022`] that matches the paper's absolute
//!   scale, and native profiles for honest measurement on this machine;
//! - [`sample`] — exact distributions of the solve process (the attempt
//!   count of a `d`-difficult puzzle is geometric with `p = 2^-d`);
//! - [`fig2`] — the Figure 2 experiment: median-of-30-trials latency per
//!   reputation score for Policies 1, 2, 3;
//! - [`engine`] — a deterministic discrete-event queue;
//! - [`scenario`] — DDoS scenarios over the event engine (claim C5:
//!   “our approach effectively throttles untrustworthy traffic”);
//! - [`contended`] — real-thread contended-admission throughput against a
//!   live [`aipow_core::Framework`] (the sharded-state scaling proof),
//!   with and without the online behavior recorder attached;
//! - [`behavior`] — the online-reputation-loop scenarios (*behavior-shift*
//!   and *redemption*): the model's input produced by the system itself;
//! - [`flood`] — the address-cycling flood against the capacity-bounded
//!   admission tables: per-request latency must stay flat while the rate
//!   limiter and cost ledger churn at capacity (the bounded per-shard
//!   eviction proof);
//! - [`burst`] — pipelined bursts of `k` requests through the batch
//!   admission path, asserting decision equivalence with the sequential
//!   path and that per-request latency holds as fixed costs amortize;
//! - [`connflood`] — the reactor's connection-scale proof: tens of
//!   thousands of concurrent connections on the fd-free reactor core,
//!   benign latency flat while a per-IP connection flood is capped at
//!   accept, idle connections within a fixed heap budget;
//! - [`tracefire`] — the observability proof: a flood trips the flight
//!   recorder's rejection-rate trigger and the frozen JSONL dump is
//!   hand-parsed for complete, correctly-ordered span chains;
//! - [`report`] — CSV/Markdown rendering for EXPERIMENTS.md.
//!
//! Everything except [`contended`] is seeded; two runs with the same
//! config are bit-identical. The contended scenario measures real
//! wall-clock throughput and is machine-dependent by design.
//!
//! # Example
//!
//! ```
//! use aipow_netsim::fig2::{Fig2Config, run_paper_policies};
//!
//! let table = run_paper_policies(&Fig2Config::default());
//! let p2_at_10 = table.median_ms("policy2", 10).unwrap();
//! let p2_at_0 = table.median_ms("policy2", 0).unwrap();
//! assert!(p2_at_10 / p2_at_0 > 5.0, "policy 2 must escalate sharply");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backends;
pub mod behavior;
pub mod burst;
pub mod connflood;
pub mod contended;
pub mod engine;
pub mod fig2;
pub mod flood;
pub mod lanes;
pub mod profile;
pub mod report;
pub mod sample;
pub mod scenario;
pub mod tracefire;

pub use backends::{BackendsConfig, BackendsReport};
pub use behavior::{BehaviorConfig, BehaviorShiftOutcome, RedemptionOutcome, TrajectoryPoint};
pub use burst::{BurstConfig, BurstReport};
pub use connflood::{ConnfloodConfig, ConnfloodOutcome};
pub use contended::{ContendedConfig, ContendedReport, ContendedRow};
pub use engine::EventQueue;
pub use fig2::{Fig2Config, Fig2Row, Fig2Table};
pub use flood::{FloodConfig, FloodOutcome, FloodPair};
pub use profile::SolverProfile;
pub use scenario::{AttackStrategy, DdosConfig, DdosOutcome};
pub use tracefire::{TracefireConfig, TracefireReport};
