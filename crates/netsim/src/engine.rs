//! A deterministic discrete-event queue.
//!
//! Events fire in timestamp order; ties break by insertion order (FIFO), so
//! simulation runs are fully reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Virtual time in nanoseconds.
pub type SimTime = u64;

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap pops the *earliest* event; ties go to
        // the lowest sequence number (FIFO).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with a virtual clock.
///
/// ```
/// use aipow_netsim::EventQueue;
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule_at(10, "b");
/// q.schedule_at(5, "a");
/// q.schedule_at(10, "c"); // same time as "b": FIFO
/// assert_eq!(q.pop(), Some((5, "a")));
/// assert_eq!(q.pop(), Some((10, "b")));
/// assert_eq!(q.pop(), Some((10, "c")));
/// assert_eq!(q.now(), 10);
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    seq: u64,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: 0,
            seq: 0,
            processed: 0,
        }
    }

    /// Current virtual time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time — causality violation.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {} < {}",
            at,
            self.now
        );
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedules `event` after a relative delay (saturating).
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let scheduled = self.heap.pop()?;
        self.now = scheduled.at;
        self.processed += 1;
        Some((scheduled.at, scheduled.event))
    }
}

impl<E> core::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("processed", &self.processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule_at(30, 3);
        q.schedule_at(10, 1);
        q.schedule_at(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(5, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 5);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(100, "first");
        q.pop();
        q.schedule_in(50, "second");
        assert_eq!(q.pop(), Some((150, "second")));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(100, ());
        q.pop();
        q.schedule_at(99, ());
    }

    #[test]
    fn counters_track_activity() {
        let mut q = EventQueue::new();
        q.schedule_at(1, ());
        q.schedule_at(2, ());
        assert_eq!(q.pending(), 2);
        q.pop();
        assert_eq!(q.pending(), 1);
        assert_eq!(q.processed(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        // Event handlers scheduling follow-ups is the normal pattern.
        let mut q = EventQueue::new();
        q.schedule_at(10, 0u32);
        let mut fired = Vec::new();
        while let Some((t, e)) = q.pop() {
            fired.push((t, e));
            if e < 3 {
                q.schedule_in(10, e + 1);
            }
        }
        assert_eq!(fired, vec![(10, 0), (20, 1), (30, 2), (40, 3)]);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Pop order is globally sorted by (time, insertion order).
            #[test]
            fn pop_order_sorted(times in proptest::collection::vec(0u64..1_000, 1..200)) {
                let mut q = EventQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.schedule_at(t, i);
                }
                let mut last: Option<(u64, usize)> = None;
                while let Some((t, i)) = q.pop() {
                    if let Some((lt, li)) = last {
                        prop_assert!(t > lt || (t == lt && i > li));
                    }
                    last = Some((t, i));
                }
            }
        }
    }
}
