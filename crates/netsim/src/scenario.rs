//! DDoS scenarios over the event engine (claim C5).
//!
//! The paper's motivating claim: the framework “effectively throttles
//! untrustworthy traffic”, preserving service for benign clients while a
//! botnet floods the server. The scenario models:
//!
//! - a population of benign clients and bots, each with a Poisson request
//!   process and a per-client sequential solver (one CPU: a client cannot
//!   solve two puzzles at once — this is exactly the throttle);
//! - an AI model with error `ϵ`: observed score = true score + Gaussian
//!   noise, clamped to `[0, 10]`;
//! - a policy mapping scores to difficulties;
//! - a single-resource server: issuance and verification cost microseconds
//!   (the verifier is lightweight), service costs milliseconds, and a
//!   bounded FIFO queue sheds overload.
//!
//! Comparing `pow_enabled = false` (baseline) against the framework shows
//! who gets served under attack.

use crate::engine::EventQueue;
use crate::profile::SolverProfile;
use crate::sample;
use aipow_metrics::{Summary, TrialSet};
use aipow_policy::{Policy, PolicyContext};
use aipow_reputation::ReputationScore;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// What bots do with the puzzles they receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackStrategy {
    /// Bots solve every puzzle (they pay the work — and are throttled by
    /// their own hash rate).
    Solve,
    /// Bots request challenges but never solve them (cheap flood; the
    /// server spends only issuance cost on them and they receive nothing).
    Flood,
}

/// Scenario parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DdosConfig {
    /// Number of benign clients.
    pub n_benign: usize,
    /// Number of bots.
    pub n_bots: usize,
    /// Simulated duration in seconds.
    pub duration_s: f64,
    /// Per-benign-client request rate (requests/second).
    pub benign_rps: f64,
    /// Per-bot attempted request rate (requests/second).
    pub bot_rps: f64,
    /// Whether the framework fronts the server (false = undefended
    /// baseline).
    pub pow_enabled: bool,
    /// Bot behaviour.
    pub strategy: AttackStrategy,
    /// Latency/solve model for benign clients.
    pub profile: SolverProfile,
    /// Bots' hash-rate advantage over the profile (1.0 = same hardware).
    pub bot_hash_multiplier: f64,
    /// AI-model score error `ϵ` (std-dev of observation noise).
    pub score_epsilon: f64,
    /// Ground-truth score of benign clients.
    pub benign_true_score: f64,
    /// Ground-truth score of bots.
    pub bot_true_score: f64,
    /// Server service rate in requests/second (service time = 1/rate).
    pub server_capacity_rps: f64,
    /// Service queue limit; arrivals beyond it are dropped.
    pub queue_limit: usize,
    /// Challenge issuance CPU cost in milliseconds.
    pub issue_cost_ms: f64,
    /// Solution verification CPU cost in milliseconds.
    pub verify_cost_ms: f64,
    /// Whether the deployment has declared the attack to its policies:
    /// policy decisions then see `under_attack = true` and full server
    /// load, activating adaptive policies
    /// (e.g. [`aipow_policy::LoadAdaptivePolicy`]).
    pub declare_attack: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DdosConfig {
    fn default() -> Self {
        DdosConfig {
            n_benign: 50,
            n_bots: 50,
            duration_s: 60.0,
            benign_rps: 0.5,
            bot_rps: 20.0,
            pow_enabled: true,
            strategy: AttackStrategy::Solve,
            profile: SolverProfile::testbed_2022(),
            bot_hash_multiplier: 1.0,
            score_epsilon: 1.0,
            benign_true_score: 1.5,
            bot_true_score: 9.0,
            server_capacity_rps: 200.0,
            queue_limit: 100,
            issue_cost_ms: 0.05,
            verify_cost_ms: 0.02,
            declare_attack: false,
            seed: 7,
        }
    }
}

/// Scenario results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DdosOutcome {
    /// Requests served to benign clients.
    pub benign_granted: u64,
    /// Requests served to bots.
    pub bot_granted: u64,
    /// Benign requests dropped at the service queue.
    pub benign_dropped: u64,
    /// Bot requests dropped at the service queue.
    pub bot_dropped: u64,
    /// Benign goodput in responses/second.
    pub benign_goodput_rps: f64,
    /// Bot goodput in responses/second.
    pub bot_goodput_rps: f64,
    /// Share of served requests that were benign, in `[0, 1]`.
    pub benign_share: f64,
    /// End-to-end benign latency (request → response) in ms.
    pub benign_latency_ms: Summary,
    /// Fraction of the simulated time the server CPU was busy.
    pub server_utilization: f64,
    /// Largest service-queue depth observed.
    pub peak_queue: usize,
    /// Challenges issued (0 when PoW is disabled).
    pub challenges_issued: u64,
    /// Challenges bots abandoned (Flood strategy).
    pub challenges_abandoned: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Benign,
    Bot,
}

#[derive(Debug)]
enum Ev {
    /// A client decides to request the resource.
    Arrive { client: usize },
    /// A solved puzzle arrives back at the server.
    Submit { client: usize, requested_at: u64 },
    /// The server finishes serving a request.
    ServiceDone { client: usize, requested_at: u64 },
}

const NS_PER_MS: f64 = 1_000_000.0;

fn ms_to_ns(ms: f64) -> u64 {
    (ms * NS_PER_MS).round() as u64
}

/// Runs the scenario with the given policy (ignored when
/// `config.pow_enabled` is false).
pub fn run(policy: &dyn Policy, config: &DdosConfig) -> DdosOutcome {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut queue: EventQueue<Ev> = EventQueue::new();
    let duration_ns = ms_to_ns(config.duration_s * 1_000.0);
    let n_clients = config.n_benign + config.n_bots;
    let ctx = if config.declare_attack {
        PolicyContext::with_load(1.0).attacked()
    } else {
        PolicyContext::default()
    };

    let class_of = |client: usize| {
        if client < config.n_benign {
            Class::Benign
        } else {
            Class::Bot
        }
    };

    // Per-client sequential-solver availability.
    let mut solver_free_at = vec![0u64; n_clients];

    // Server state: virtual single server with FIFO queue.
    let mut server_free_at = 0u64;
    let mut queue_len = 0usize;
    let mut peak_queue = 0usize;
    let mut busy_ns: u64 = 0;
    let service_ns = ms_to_ns(1_000.0 / config.server_capacity_rps);

    // Outcome accumulators.
    let mut granted = [0u64; 2];
    let mut dropped = [0u64; 2];
    let mut challenges_issued = 0u64;
    let mut challenges_abandoned = 0u64;
    let mut benign_latency = TrialSet::new();

    // Seed initial arrivals.
    for client in 0..n_clients {
        let rps = match class_of(client) {
            Class::Benign => config.benign_rps,
            Class::Bot => config.bot_rps,
        };
        let gap_ms = sample::exponential_gap(&mut rng, 1_000.0 / rps);
        queue.schedule_at(ms_to_ns(gap_ms), Ev::Arrive { client });
    }

    while let Some((now, event)) = queue.pop() {
        if now > duration_ns {
            break;
        }
        match event {
            Ev::Arrive { client } => {
                let class = class_of(client);
                // Schedule the client's next request (open-loop arrivals).
                let rps = match class {
                    Class::Benign => config.benign_rps,
                    Class::Bot => config.bot_rps,
                };
                let gap = ms_to_ns(sample::exponential_gap(&mut rng, 1_000.0 / rps));
                if now + gap <= duration_ns {
                    queue.schedule_at(now + gap, Ev::Arrive { client });
                }

                if !config.pow_enabled {
                    // Undefended baseline: straight to the service queue.
                    enqueue_service(
                        now,
                        client,
                        now,
                        &mut queue,
                        &mut server_free_at,
                        &mut queue_len,
                        &mut peak_queue,
                        &mut busy_ns,
                        service_ns,
                        config.queue_limit,
                        &mut dropped,
                        class,
                    );
                    continue;
                }

                // Framework path: score → policy → challenge.
                busy_ns += ms_to_ns(config.issue_cost_ms);
                challenges_issued += 1;
                let true_score = match class {
                    Class::Benign => config.benign_true_score,
                    Class::Bot => config.bot_true_score,
                };
                let observed = ReputationScore::clamped(
                    true_score + config.score_epsilon * sample::gaussian(&mut rng),
                );
                let difficulty = policy.difficulty_for(observed, &ctx);

                if class == Class::Bot && config.strategy == AttackStrategy::Flood {
                    challenges_abandoned += 1;
                    continue;
                }

                // Sequential solving on the client's CPU.
                let hash_rate = match class {
                    Class::Benign => config.profile.hash_rate_hz,
                    Class::Bot => config.profile.hash_rate_hz * config.bot_hash_multiplier,
                };
                let attempts = sample::attempts_to_solve(&mut rng, difficulty.bits());
                let solve_ns = ms_to_ns(attempts as f64 / hash_rate * 1_000.0);
                let start = now.max(solver_free_at[client]);
                let done = start + solve_ns;
                solver_free_at[client] = done;
                queue.schedule_at(
                    done,
                    Ev::Submit {
                        client,
                        requested_at: now,
                    },
                );
            }
            Ev::Submit {
                client,
                requested_at,
            } => {
                busy_ns += ms_to_ns(config.verify_cost_ms);
                let class = class_of(client);
                enqueue_service(
                    now,
                    client,
                    requested_at,
                    &mut queue,
                    &mut server_free_at,
                    &mut queue_len,
                    &mut peak_queue,
                    &mut busy_ns,
                    service_ns,
                    config.queue_limit,
                    &mut dropped,
                    class,
                );
            }
            Ev::ServiceDone {
                client,
                requested_at,
            } => {
                queue_len = queue_len.saturating_sub(1);
                let class = class_of(client);
                granted[class as usize] += 1;
                if class == Class::Benign {
                    benign_latency.record((now - requested_at) as f64 / NS_PER_MS);
                }
            }
        }
    }

    let total_granted = granted[0] + granted[1];
    DdosOutcome {
        benign_granted: granted[Class::Benign as usize],
        bot_granted: granted[Class::Bot as usize],
        benign_dropped: dropped[Class::Benign as usize],
        bot_dropped: dropped[Class::Bot as usize],
        benign_goodput_rps: granted[Class::Benign as usize] as f64 / config.duration_s,
        bot_goodput_rps: granted[Class::Bot as usize] as f64 / config.duration_s,
        benign_share: if total_granted == 0 {
            0.0
        } else {
            granted[Class::Benign as usize] as f64 / total_granted as f64
        },
        benign_latency_ms: Summary::from_trials(&benign_latency),
        server_utilization: (busy_ns as f64 / duration_ns as f64).min(1.0),
        peak_queue,
        challenges_issued,
        challenges_abandoned,
    }
}

/// Admits a request to the single-server FIFO queue, or drops it.
#[allow(clippy::too_many_arguments)]
fn enqueue_service(
    now: u64,
    client: usize,
    requested_at: u64,
    queue: &mut EventQueue<Ev>,
    server_free_at: &mut u64,
    queue_len: &mut usize,
    peak_queue: &mut usize,
    busy_ns: &mut u64,
    service_ns: u64,
    queue_limit: usize,
    dropped: &mut [u64; 2],
    class: Class,
) {
    if *queue_len >= queue_limit {
        dropped[class as usize] += 1;
        return;
    }
    *queue_len += 1;
    *peak_queue = (*peak_queue).max(*queue_len);
    let start = now.max(*server_free_at);
    let done = start + service_ns;
    *server_free_at = done;
    *busy_ns += service_ns;
    queue.schedule_at(
        done,
        Ev::ServiceDone {
            client,
            requested_at,
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipow_policy::LinearPolicy;

    fn policy2() -> LinearPolicy {
        LinearPolicy::policy2()
    }

    fn quick(config: DdosConfig) -> DdosOutcome {
        run(&policy2(), &config)
    }

    fn short() -> DdosConfig {
        DdosConfig {
            duration_s: 20.0,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(quick(short()), quick(short()));
    }

    #[test]
    fn different_seeds_differ() {
        let a = quick(short());
        let b = quick(DdosConfig { seed: 8, ..short() });
        assert_ne!(a, b);
    }

    /// Claim C5 core: under attack, the framework multiplies both the
    /// benign share of served traffic and absolute benign goodput versus
    /// the undefended baseline.
    #[test]
    fn framework_raises_benign_share_under_attack() {
        let undefended = quick(DdosConfig {
            pow_enabled: false,
            ..short()
        });
        let defended = quick(short());
        assert!(
            defended.benign_share > 4.0 * undefended.benign_share,
            "undefended share {:.3}, defended share {:.3}",
            undefended.benign_share,
            defended.benign_share
        );
        assert!(
            defended.benign_goodput_rps > 3.0 * undefended.benign_goodput_rps,
            "benign goodput: undefended {:.1} rps, defended {:.1} rps",
            undefended.benign_goodput_rps,
            defended.benign_goodput_rps
        );
    }

    /// Bots attempting 1000 rps aggregate are throttled to what their own
    /// hash rate can sustain at the policy's bot-range difficulty.
    #[test]
    fn bot_goodput_is_suppressed() {
        let undefended = quick(DdosConfig {
            pow_enabled: false,
            ..short()
        });
        let defended = quick(short());
        assert!(
            defended.bot_goodput_rps < 0.6 * undefended.bot_goodput_rps,
            "bots: undefended {:.0} rps vs defended {:.0} rps",
            undefended.bot_goodput_rps,
            defended.bot_goodput_rps
        );
    }

    /// Benign clients keep most of their goodput under the framework
    /// (they request 25 rps aggregate against 200 rps capacity).
    #[test]
    fn benign_goodput_preserved_with_framework() {
        let defended = quick(short());
        let offered = 50.0 * 0.5; // n_benign × benign_rps
        assert!(
            defended.benign_goodput_rps > 0.8 * offered,
            "benign goodput {:.1} rps of {offered:.1} offered",
            defended.benign_goodput_rps
        );
    }

    /// Flood bots cost the server almost nothing and get nothing.
    #[test]
    fn flood_strategy_starves_bots_not_server() {
        let outcome = quick(DdosConfig {
            strategy: AttackStrategy::Flood,
            ..short()
        });
        assert_eq!(outcome.bot_granted, 0);
        assert!(outcome.challenges_abandoned > 0);
        assert!(outcome.benign_share > 0.99);
        assert!(outcome.server_utilization < 0.5);
    }

    /// The undefended baseline under this attack drops traffic and fills
    /// the queue — the situation the framework exists to prevent.
    #[test]
    fn undefended_baseline_overloads() {
        let outcome = quick(DdosConfig {
            pow_enabled: false,
            ..short()
        });
        // Offered: 25 + 1000 rps against 200 rps capacity.
        assert_eq!(outcome.peak_queue, 100, "queue should saturate");
        assert!(outcome.benign_dropped + outcome.bot_dropped > 0);
        assert!(outcome.server_utilization > 0.95);
    }

    /// Better bot hardware erodes the throttle (and motivates raising
    /// difficulty adaptively).
    #[test]
    fn bot_hash_advantage_increases_bot_goodput() {
        let weak = quick(short());
        let strong = quick(DdosConfig {
            bot_hash_multiplier: 64.0,
            ..short()
        });
        assert!(
            strong.bot_goodput_rps > weak.bot_goodput_rps * 2.0,
            "weak {:.1} vs strong {:.1}",
            weak.bot_goodput_rps,
            strong.bot_goodput_rps
        );
    }

    #[test]
    fn no_bots_means_everything_benign() {
        let outcome = quick(DdosConfig {
            n_bots: 0,
            ..short()
        });
        assert_eq!(outcome.bot_granted, 0);
        assert_eq!(outcome.benign_share, 1.0);
        assert!(outcome.benign_granted > 0);
    }

    #[test]
    fn benign_latency_includes_solve_overhead() {
        let outcome = quick(short());
        // Benign scores ~1.5 → policy2 difficulty ~6-7 → solve ≈ 2-5 ms at
        // 26 kH/s plus ~5 ms service; medians land in single-digit to
        // tens-of-ms. They must at least exceed the bare service time.
        assert!(outcome.benign_latency_ms.median >= 5.0);
    }

    /// Ablation A5: against 64× bot hashpower, static Policy 2 collapses
    /// but a declared attack + load-adaptive boost restores the throttle.
    #[test]
    fn adaptive_policy_survives_hashpower_advantage() {
        use aipow_policy::LoadAdaptivePolicy;

        let strong_bots = DdosConfig {
            bot_hash_multiplier: 64.0,
            ..short()
        };
        let static_outcome = run(&LinearPolicy::policy2(), &strong_bots);

        let adaptive = LoadAdaptivePolicy::new(LinearPolicy::policy2(), 3, 4);
        let adaptive_outcome = run(
            &adaptive,
            &DdosConfig {
                declare_attack: true,
                ..strong_bots
            },
        );

        assert!(
            adaptive_outcome.benign_goodput_rps > 2.0 * static_outcome.benign_goodput_rps,
            "static benign {:.1} rps vs adaptive benign {:.1} rps",
            static_outcome.benign_goodput_rps,
            adaptive_outcome.benign_goodput_rps
        );
        assert!(
            adaptive_outcome.bot_goodput_rps < 0.7 * static_outcome.bot_goodput_rps,
            "static bots {:.0} rps vs adaptive bots {:.0} rps",
            static_outcome.bot_goodput_rps,
            adaptive_outcome.bot_goodput_rps
        );
    }

    #[test]
    fn declared_attack_without_adaptive_policy_changes_nothing() {
        // Static policies ignore the context; declaring the attack must be
        // a no-op for them.
        let base = short();
        let declared = DdosConfig {
            declare_attack: true,
            ..base
        };
        assert_eq!(
            run(&LinearPolicy::policy2(), &base),
            run(&LinearPolicy::policy2(), &declared)
        );
    }

    /// A flash crowd — a legitimate surge, no bots — is *served*, not
    /// starved: the framework adds only benign-difficulty latency and the
    /// server handles the offered load.
    #[test]
    fn flash_crowd_is_served_with_modest_latency() {
        let crowd = DdosConfig {
            n_benign: 300, // 6× the usual population
            n_bots: 0,
            benign_rps: 0.5, // 150 rps offered against 200 rps capacity
            duration_s: 20.0,
            ..Default::default()
        };
        let outcome = quick(crowd);
        let offered = 300.0 * 0.5;
        assert!(
            outcome.benign_goodput_rps > 0.85 * offered,
            "flash crowd goodput {:.1} of {offered:.1} offered",
            outcome.benign_goodput_rps
        );
        // Benign scores ~1.5 → policy2 d≈6-7 → solve ≈ 2-5 ms; with queueing
        // the p50 stays well under the undefended-attack collapse (~500 ms).
        assert!(
            outcome.benign_latency_ms.median < 120.0,
            "flash crowd p50 {:.1} ms",
            outcome.benign_latency_ms.median
        );
        assert_eq!(outcome.benign_share, 1.0);
    }

    #[test]
    fn challenges_issued_only_with_pow() {
        assert_eq!(
            quick(DdosConfig {
                pow_enabled: false,
                ..short()
            })
            .challenges_issued,
            0
        );
        assert!(quick(short()).challenges_issued > 0);
    }
}
