//! Online-reputation scenarios: *behavior-shift* and *redemption*.
//!
//! Everything else in the workspace scores clients from static tables;
//! these two scenarios exercise the `aipow-online` loop, where the model's
//! input is produced by the system's own admission stream:
//!
//! - **behavior-shift** — a client behaves benignly (low rate, solves
//!   every puzzle), then turns flooder mid-run (high rate, abandons every
//!   puzzle). The issued difficulty must climb by several bits within a
//!   bounded number of flood requests, while a concurrently benign
//!   client's difficulty stays flat.
//! - **redemption** — a flooder goes quiet. Confidence in the behavioral
//!   evidence decays with the configured half-life, the score falls back
//!   toward the prior, and once it crosses the bypass threshold the
//!   client is admitted without work again; eventually the sketch is
//!   pruned entirely.
//!
//! Both run on a [`ManualClock`] and are fully deterministic. Solving is
//! *simulated* (the accepted-solution event is injected into the tap at
//! the arrival instant plus a fixed solve latency) — hashing for real
//! would only slow the scenario without changing what the recorder sees.
//! The model is the transparent [`BlocklistHeuristic`]
//! (`score ≈ min(rate/10, 3) + 4·syn_ratio + min(2·blacklist, 4)`), so
//! the assertions below are inspectable arithmetic rather than artifacts
//! of a trained model; swap in a trained
//! [`DabrModel`](aipow_reputation::DabrModel) to reproduce the same
//! shape with the paper's AI component (the `aipow observe` CLI does).

use aipow_core::tap::BehaviorSink;
use aipow_core::{Framework, FrameworkBuilder, OnlineSettings, StaticFeatureSource};
use aipow_online::OnlineLoop;
use aipow_policy::LinearPolicy;
use aipow_pow::{ManualClock, TimeSource};
use aipow_reputation::baseline::BlocklistHeuristic;
use aipow_reputation::{FeatureVector, ReputationModel};
use serde::{Deserialize, Serialize};
use std::net::{IpAddr, Ipv4Addr};
use std::sync::Arc;

/// The residential-looking prior cold clients score with: low rate, few
/// incomplete handshakes, no blocklist history.
pub fn residential_prior() -> FeatureVector {
    FeatureVector::new([2.0, 0.05, 2.0, 4.3, 0.15, 0.12, 0.05, 0.05, 140.0, 0.02])
}

/// Parameters shared by both online scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BehaviorConfig {
    /// Benign request rate, requests/second.
    pub benign_rps: f64,
    /// Flood request rate, requests/second.
    pub flood_rps: f64,
    /// Seconds of benign behaviour before the shift (behavior-shift) or
    /// of flooding before going quiet (redemption).
    pub phase_s: f64,
    /// Seconds of the second phase (flooding, or silence).
    pub second_phase_s: f64,
    /// Decay half-life, ms.
    pub half_life_ms: u64,
    /// Events at which live behaviour and the prior weigh equally.
    pub prior_strength: f64,
    /// Simulated solve latency for clients that solve, ms.
    pub solve_latency_ms: u64,
    /// Background sweep period, ms (the decay worker's cadence).
    pub sweep_every_ms: u64,
    /// Bypass threshold for the redemption scenario (scores strictly
    /// below are admitted without work).
    pub bypass_threshold: f64,
}

impl Default for BehaviorConfig {
    fn default() -> Self {
        BehaviorConfig {
            benign_rps: 1.0,
            flood_rps: 100.0,
            phase_s: 30.0,
            second_phase_s: 60.0,
            half_life_ms: 10_000,
            prior_strength: 16.0,
            solve_latency_ms: 40,
            sweep_every_ms: 1_000,
            bypass_threshold: 2.0,
        }
    }
}

/// One sampled point of a client's trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryPoint {
    /// Sample instant, ms from scenario start.
    pub t_ms: u64,
    /// The model's score for the client at that instant.
    pub score: f64,
    /// Issued difficulty in bits (`None` = bypassed / not requesting).
    pub bits: Option<u8>,
}

/// Outcome of the behavior-shift scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BehaviorShiftOutcome {
    /// Difficulty issued to the shifting client on its last benign-phase
    /// request.
    pub baseline_bits: u8,
    /// Highest difficulty issued to the shifting client while flooding.
    pub peak_bits: u8,
    /// Flood requests until the issued difficulty first reached
    /// `baseline_bits + 4` (`None` = never climbed that far).
    pub requests_to_climb_4: Option<u64>,
    /// Minimum difficulty issued to the always-benign client.
    pub benign_min_bits: u8,
    /// Maximum difficulty issued to the always-benign client.
    pub benign_max_bits: u8,
    /// The shifting client's sampled trajectory.
    pub shifty: Vec<TrajectoryPoint>,
    /// The benign client's sampled trajectory.
    pub benign: Vec<TrajectoryPoint>,
    /// Peak clients tracked by the recorder.
    pub peak_tracked: u64,
}

/// Outcome of the redemption scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RedemptionOutcome {
    /// The flooder's score at the end of the attack.
    pub peak_score: f64,
    /// Ms after the attack stopped at which the score first fell below
    /// the bypass threshold (`None` = never recovered in-window).
    pub recovered_after_ms: Option<u64>,
    /// Same instant expressed in half-lives.
    pub recovered_after_half_lives: Option<f64>,
    /// The flooder's score at the end of the quiet phase.
    pub final_score: f64,
    /// Whether the quiet client was eventually admitted without work
    /// again (a real bypassed request after recovery).
    pub bypassed_after_recovery: bool,
    /// Whether the sketch was pruned (client fully forgotten) by the end.
    pub pruned: bool,
    /// Score trajectory through the quiet phase.
    pub trajectory: Vec<TrajectoryPoint>,
}

struct OnlineDeployment {
    framework: Arc<Framework>,
    online: Arc<OnlineLoop>,
    clock: ManualClock,
    model: BlocklistHeuristic,
    solve_latency_ms: u64,
}

impl OnlineDeployment {
    fn new(config: &BehaviorConfig, bypass: Option<f64>) -> Self {
        let clock = ManualClock::at(0);
        let mut builder = FrameworkBuilder::new()
            .master_key([0x0Bu8; 32])
            .model(BlocklistHeuristic)
            .policy(LinearPolicy::policy2())
            .clock(Arc::new(clock.clone()));
        if let Some(threshold) = bypass {
            builder = builder.bypass_threshold(threshold);
        }
        let framework = Arc::new(builder.build().expect("framework builds"));
        let online = OnlineLoop::attach(
            Arc::clone(&framework),
            Arc::new(StaticFeatureSource::new(residential_prior())),
            OnlineSettings {
                half_life_ms: config.half_life_ms,
                prior_strength: config.prior_strength,
                shard_count: Some(8),
                ..Default::default()
            },
        )
        .expect("valid settings against a fresh framework");
        OnlineDeployment {
            framework,
            online,
            clock,
            model: BlocklistHeuristic,
            solve_latency_ms: config.solve_latency_ms,
        }
    }

    /// One request at the clock's current instant; returns the sampled
    /// trajectory point. When `solves`, the accepted solution is injected
    /// into the tap after the configured solve latency (simulated solve —
    /// see the module docs).
    fn request(&self, ip: IpAddr, solves: bool) -> TrajectoryPoint {
        let now = self.clock.now_ms();
        let source = self.online.source();
        let features = source.features_at(ip, now);
        let score = self.model.score(&features).value();
        let decision = self.framework.handle_request(ip, &features);
        let bits = decision.challenge().map(|issued| {
            if solves {
                self.online.recorder().on_solution(
                    ip,
                    now + self.solve_latency_ms,
                    Ok(issued.difficulty),
                );
            }
            issued.difficulty.bits()
        });
        TrajectoryPoint {
            t_ms: now,
            score,
            bits,
        }
    }
}

fn gap_ms(rps: f64) -> u64 {
    ((1_000.0 / rps.max(1e-6)).round() as u64).max(1)
}

/// Runs the behavior-shift scenario.
pub fn run_behavior_shift(config: &BehaviorConfig) -> BehaviorShiftOutcome {
    let deploy = OnlineDeployment::new(config, None);
    let benign_ip = IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1));
    let shifty_ip = IpAddr::V4(Ipv4Addr::new(203, 0, 113, 66));

    let benign_gap = gap_ms(config.benign_rps);
    let flood_gap = gap_ms(config.flood_rps);
    let phase1_ms = (config.phase_s * 1_000.0) as u64;
    let end_ms = phase1_ms + (config.second_phase_s * 1_000.0) as u64;

    let mut benign = Vec::new();
    let mut shifty = Vec::new();
    let mut next_benign = 0u64;
    let mut next_shifty = 0u64;
    let mut next_sweep = config.sweep_every_ms;
    let mut peak_tracked = 0u64;

    let mut baseline_bits = 0u8;
    let mut peak_bits = 0u8;
    let mut flood_requests = 0u64;
    let mut requests_to_climb_4 = None;

    loop {
        let t = next_benign.min(next_shifty).min(next_sweep);
        if t > end_ms {
            break;
        }
        deploy.clock.set(t);
        if t == next_sweep {
            deploy.online.sweep_now();
            peak_tracked = peak_tracked.max(deploy.online.recorder().len() as u64);
            next_sweep += config.sweep_every_ms;
            continue;
        }
        if t == next_benign {
            benign.push(deploy.request(benign_ip, true));
            next_benign += benign_gap;
            continue;
        }
        // The shifting client: benign before phase1_ms, flooding after.
        let flooding = t >= phase1_ms;
        let point = deploy.request(shifty_ip, !flooding);
        if let Some(bits) = point.bits {
            if flooding {
                flood_requests += 1;
                peak_bits = peak_bits.max(bits);
                if requests_to_climb_4.is_none() && bits >= baseline_bits.saturating_add(4) {
                    requests_to_climb_4 = Some(flood_requests);
                }
            } else {
                baseline_bits = bits;
            }
        }
        shifty.push(point);
        next_shifty += if flooding { flood_gap } else { benign_gap };
    }

    let benign_bits: Vec<u8> = benign.iter().filter_map(|p| p.bits).collect();
    BehaviorShiftOutcome {
        baseline_bits,
        peak_bits,
        requests_to_climb_4,
        benign_min_bits: benign_bits.iter().copied().min().unwrap_or(0),
        benign_max_bits: benign_bits.iter().copied().max().unwrap_or(0),
        shifty,
        benign,
        peak_tracked,
    }
}

/// Runs the redemption scenario.
pub fn run_redemption(config: &BehaviorConfig) -> RedemptionOutcome {
    let deploy = OnlineDeployment::new(config, Some(config.bypass_threshold));
    let flooder = IpAddr::V4(Ipv4Addr::new(203, 0, 113, 99));
    let flood_gap = gap_ms(config.flood_rps);
    let attack_end = (config.phase_s * 1_000.0) as u64;
    let quiet_end = attack_end + (config.second_phase_s * 1_000.0) as u64;

    // Phase 1: flood (never solving).
    let mut t = 0u64;
    let mut next_sweep = config.sweep_every_ms;
    let mut peak_score: f64 = 0.0;
    while t < attack_end {
        deploy.clock.set(t);
        if t >= next_sweep {
            deploy.online.sweep_now();
            // Re-anchor on the current instant: with a request gap longer
            // than the sweep period, `+=` would lag the deadline behind
            // `t` and fire a sweep on every request.
            next_sweep = t + config.sweep_every_ms;
        }
        let point = deploy.request(flooder, false);
        peak_score = peak_score.max(point.score);
        t += flood_gap;
    }

    // Phase 2: silence. Sample the score each sweep.
    let source = deploy.online.source();
    let mut trajectory = Vec::new();
    let mut recovered_after_ms = None;
    let mut t = attack_end;
    while t <= quiet_end {
        deploy.clock.set(t);
        deploy.online.sweep_now();
        let score = deploy.model.score(&source.features_at(flooder, t)).value();
        trajectory.push(TrajectoryPoint {
            t_ms: t,
            score,
            bits: None,
        });
        if recovered_after_ms.is_none() && score < config.bypass_threshold {
            recovered_after_ms = Some(t - attack_end);
        }
        t += config.sweep_every_ms;
    }

    // Snapshot prune state *before* the final probe request below, which
    // would re-create the sketch through the tap.
    let pruned = deploy
        .online
        .recorder()
        .sketch(flooder, quiet_end)
        .is_none();

    // After recovery the client is genuinely admitted without work again.
    deploy.clock.set(quiet_end);
    let final_decision = deploy
        .framework
        .handle_request(flooder, &source.features_at(flooder, quiet_end));
    let final_score = trajectory.last().map(|p| p.score).unwrap_or(peak_score);

    RedemptionOutcome {
        peak_score,
        recovered_after_ms,
        recovered_after_half_lives: recovered_after_ms
            .map(|ms| ms as f64 / config.half_life_ms as f64),
        final_score,
        bypassed_after_recovery: final_decision.is_bypass(),
        pruned,
        trajectory,
    }
}

/// Renders a behavior-shift outcome as a Markdown summary for
/// EXPERIMENTS.md.
pub fn behavior_shift_to_markdown(outcome: &BehaviorShiftOutcome) -> String {
    let mut out = String::new();
    out.push_str("| client | baseline bits | peak bits | note |\n|---|---|---|---|\n");
    out.push_str(&format!(
        "| shifting | {} | {} | +4 bits after {} flood requests |\n",
        outcome.baseline_bits,
        outcome.peak_bits,
        outcome
            .requests_to_climb_4
            .map(|n| n.to_string())
            .unwrap_or_else(|| "∞".into()),
    ));
    out.push_str(&format!(
        "| benign | {} | {} | flat |\n",
        outcome.benign_min_bits, outcome.benign_max_bits
    ));
    out
}

/// Renders a redemption outcome as a Markdown summary.
pub fn redemption_to_markdown(outcome: &RedemptionOutcome) -> String {
    format!(
        "peak score {:.2} → below threshold after {} ({} half-lives); final score {:.2}; \
         bypassed again: {}; sketch pruned: {}\n",
        outcome.peak_score,
        outcome
            .recovered_after_ms
            .map(|ms| format!("{:.1} s", ms as f64 / 1_000.0))
            .unwrap_or_else(|| "never".into()),
        outcome
            .recovered_after_half_lives
            .map(|h| format!("{h:.1}"))
            .unwrap_or_else(|| "∞".into()),
        outcome.final_score,
        outcome.bypassed_after_recovery,
        outcome.pruned,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> BehaviorConfig {
        BehaviorConfig {
            phase_s: 20.0,
            second_phase_s: 60.0,
            ..Default::default()
        }
    }

    #[test]
    fn scenarios_are_deterministic() {
        assert_eq!(run_behavior_shift(&quick()), run_behavior_shift(&quick()));
        assert_eq!(run_redemption(&quick()), run_redemption(&quick()));
    }

    /// The acceptance criterion: the flooder's issued difficulty rises
    /// ≥ 4 bits within the attack window while the benign client's stays
    /// flat.
    #[test]
    fn behavior_shift_raises_flooder_difficulty_4_bits() {
        let outcome = run_behavior_shift(&quick());
        assert!(
            outcome.peak_bits >= outcome.baseline_bits + 4,
            "baseline {} peak {}",
            outcome.baseline_bits,
            outcome.peak_bits
        );
        let climb = outcome
            .requests_to_climb_4
            .expect("difficulty must climb 4 bits during the flood");
        assert!(
            climb <= 200,
            "+4 bits took {climb} flood requests (2 s of flood)"
        );
        assert!(
            outcome.benign_max_bits - outcome.benign_min_bits <= 1,
            "benign difficulty moved: {}..{}",
            outcome.benign_min_bits,
            outcome.benign_max_bits
        );
        assert_eq!(outcome.peak_tracked, 2);
    }

    /// Difficulty must also *stay* high while the flood continues (the
    /// loop does not habituate to an ongoing attack).
    #[test]
    fn behavior_shift_difficulty_is_sustained() {
        let outcome = run_behavior_shift(&quick());
        let last = outcome
            .shifty
            .iter()
            .rev()
            .find_map(|p| p.bits)
            .expect("flooder was challenged");
        assert!(
            last >= outcome.baseline_bits + 4,
            "difficulty relaxed to {last} during the flood"
        );
    }

    /// The acceptance criterion: after the flooder goes quiet its score
    /// decays below the bypass threshold within a few half-lives, and it
    /// is eventually admitted without work again.
    #[test]
    fn redemption_score_decays_below_threshold() {
        let outcome = run_redemption(&quick());
        assert!(
            outcome.peak_score >= quick().bypass_threshold,
            "attack never crossed the threshold: {:.2}",
            outcome.peak_score
        );
        let half_lives = outcome
            .recovered_after_half_lives
            .expect("score must recover in the quiet window");
        assert!(
            half_lives <= 4.0,
            "recovery took {half_lives:.1} half-lives"
        );
        assert!(outcome.final_score < quick().bypass_threshold);
        assert!(outcome.bypassed_after_recovery);
    }

    /// With a much longer quiet phase the sketch decays below the prune
    /// floor and the client is fully forgotten.
    #[test]
    fn redemption_eventually_prunes_the_sketch() {
        let outcome = run_redemption(&BehaviorConfig {
            phase_s: 10.0,
            second_phase_s: 300.0, // 30 half-lives
            ..quick()
        });
        assert!(
            outcome.pruned,
            "sketch should be pruned after 30 half-lives"
        );
    }

    /// Scores in the trajectory are monotonically non-increasing during
    /// the quiet phase: decay never *raises* suspicion.
    #[test]
    fn redemption_decay_is_monotone() {
        let outcome = run_redemption(&quick());
        for pair in outcome.trajectory.windows(2) {
            assert!(
                pair[1].score <= pair[0].score + 1e-9,
                "score rose during silence: {:?}",
                pair
            );
        }
    }

    #[test]
    fn markdown_renders() {
        let shift = run_behavior_shift(&quick());
        let md = behavior_shift_to_markdown(&shift);
        assert!(md.contains("| shifting |"));
        let redemption = run_redemption(&quick());
        assert!(redemption_to_markdown(&redemption).contains("half-lives"));
    }
}
