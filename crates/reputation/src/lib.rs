//! The AI model of the framework (paper §II.1): IP reputation scoring.
//!
//! The paper's proof of concept plugs in **DAbR** (Renjan et al., ISI 2018),
//! “an euclidean distance-based technique that generates a reputation score
//! for an IP address by learning from previously known malicious IP
//! addresses and their attributes”, reporting ≈ 80 % accuracy and scores
//! normalized to `[0, 10]` (higher = more untrustworthy).
//!
//! DAbR's training data (Cisco Talos attribute feeds) is proprietary, so
//! this crate substitutes a **synthetic traffic-attribute dataset** with
//! tunable class overlap (see [`synth`]) and reimplements the DAbR
//! *technique* on top of it (see [`dabr`]):
//!
//! 1. min–max normalize attributes to `[0, 10]` ([`normalize`]),
//! 2. cluster known-malicious training points ([`kmeans`]),
//! 3. score an incoming IP by its Euclidean distance to the nearest
//!    malicious centroid, calibrated onto the `[0, 10]` scale,
//! 4. estimate the model's score error `ϵ` on held-out data ([`eval`]) —
//!    the quantity the paper's Policy 3 consumes.
//!
//! The AI component is explicitly swappable in the framework; [`baseline`]
//! provides a k-NN scorer and a single-attribute heuristic behind the same
//! [`ReputationModel`] trait.
//!
//! # Example
//!
//! ```
//! use aipow_reputation::{synth::DatasetSpec, dabr::DabrModel, ReputationModel};
//!
//! let dataset = DatasetSpec::default().with_seed(7).generate();
//! let (train, test) = dataset.split(0.8, 7);
//! let model = DabrModel::fit(&train, &Default::default());
//! let report = aipow_reputation::eval::evaluate(&model, &test);
//! assert!(report.accuracy > 0.7, "accuracy {}", report.accuracy);
//! let score = model.score(&test.samples()[0].features);
//! assert!((0.0..=10.0).contains(&score.value()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod dabr;
pub mod eval;
pub mod feature;
pub mod kmeans;
pub mod model;
pub mod normalize;
pub mod score;
pub mod synth;

pub use dabr::DabrModel;
pub use feature::{FeatureVector, FEATURE_COUNT, FEATURE_NAMES};
pub use model::ReputationModel;
pub use score::ReputationScore;
pub use synth::{Dataset, DatasetSpec, LabeledSample};
