//! Synthetic IP-attribute dataset generation.
//!
//! **Substitution note (see DESIGN.md §2).** DAbR trains on Cisco Talos IP
//! attribute data, which is proprietary. This module generates a labeled
//! synthetic population with the properties the downstream pipeline
//! actually depends on: per-class attribute distributions that overlap
//! enough to hold the scorer near the paper's reported ≈ 80 % accuracy, and
//! a ground-truth maliciousness score in `[0, 10]` against which the score
//! error `ϵ` (consumed by Policy 3) can be estimated.
//!
//! Five client archetypes are modeled. Each draws attributes from its own
//! per-feature normal (or count) distribution; the `overlap` knob linearly
//! pulls malicious archetype means toward the benign means, trading
//! separability for realism.

use crate::feature::{FeatureVector, FEATURE_COUNT};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Ground-truth class of a synthetic IP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClassLabel {
    /// Ordinary, well-behaved client.
    Benign,
    /// Attacker-controlled or abusive client.
    Malicious,
}

/// Behavioural archetype of a synthetic IP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Archetype {
    /// Residential/enterprise user traffic.
    Residential,
    /// Cloud-hosted API client: higher rate, still benign.
    ApiClient,
    /// DDoS botnet node: high rate, high SYN ratio, low jitter.
    Botnet,
    /// Port/service scanner: very many unique ports.
    Scanner,
    /// Credential stuffer: high failed-auth ratio.
    CredentialStuffer,
}

impl Archetype {
    /// All archetypes, in a stable order.
    pub const ALL: [Archetype; 5] = [
        Archetype::Residential,
        Archetype::ApiClient,
        Archetype::Botnet,
        Archetype::Scanner,
        Archetype::CredentialStuffer,
    ];

    /// The ground-truth class of this archetype.
    pub fn label(&self) -> ClassLabel {
        match self {
            Archetype::Residential | Archetype::ApiClient => ClassLabel::Benign,
            _ => ClassLabel::Malicious,
        }
    }

    /// Central ground-truth maliciousness on the `[0, 10]` scale.
    pub fn base_true_score(&self) -> f64 {
        match self {
            Archetype::Residential => 0.8,
            Archetype::ApiClient => 2.0,
            Archetype::Botnet => 9.0,
            Archetype::Scanner => 7.0,
            Archetype::CredentialStuffer => 8.0,
        }
    }

    /// Per-feature `(mean, stddev)` of this archetype's attribute
    /// distribution, in raw feature units (see
    /// [`FEATURE_NAMES`](crate::FEATURE_NAMES)).
    fn distribution(&self) -> [(f64, f64); FEATURE_COUNT] {
        match self {
            Archetype::Residential => [
                (1.5, 1.0),    // request_rate
                (0.04, 0.03),  // syn_ratio
                (2.0, 1.2),    // unique_ports
                (4.3, 0.8),    // payload_entropy
                (0.15, 0.10),  // geo_risk
                (0.12, 0.08),  // asn_risk
                (0.05, 0.22),  // blacklist_hits
                (0.05, 0.05),  // tls_anomaly
                (140.0, 60.0), // interarrival_jitter
                (0.02, 0.02),  // failed_auth_ratio
            ],
            Archetype::ApiClient => [
                (8.0, 3.0),
                (0.03, 0.02),
                (1.5, 0.8),
                (5.2, 0.7),
                (0.22, 0.12),
                (0.25, 0.12),
                (0.1, 0.3),
                (0.08, 0.06),
                (25.0, 12.0),
                (0.01, 0.01),
            ],
            Archetype::Botnet => [
                (42.0, 16.0),
                (0.75, 0.15),
                (3.0, 2.0),
                (6.6, 0.9),
                (0.55, 0.20),
                (0.50, 0.20),
                (2.5, 1.6),
                (0.45, 0.20),
                (12.0, 8.0),
                (0.08, 0.06),
            ],
            Archetype::Scanner => [
                (15.0, 7.0),
                (0.55, 0.20),
                (210.0, 90.0),
                (3.1, 1.0),
                (0.45, 0.20),
                (0.40, 0.18),
                (1.2, 1.1),
                (0.30, 0.15),
                (30.0, 18.0),
                (0.05, 0.04),
            ],
            Archetype::CredentialStuffer => [
                (18.0, 8.0),
                (0.20, 0.12),
                (2.0, 1.0),
                (5.6, 0.8),
                (0.50, 0.20),
                (0.45, 0.18),
                (1.8, 1.4),
                (0.35, 0.18),
                (45.0, 25.0),
                (0.55, 0.20),
            ],
        }
    }
}

/// One labeled synthetic IP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LabeledSample {
    /// The IP's attribute vector.
    pub features: FeatureVector,
    /// Ground-truth class.
    pub label: ClassLabel,
    /// Ground-truth maliciousness on the score scale `[0, 10]`.
    pub true_score: f64,
    /// The generating archetype.
    pub archetype: Archetype,
}

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Number of benign samples (split between benign archetypes).
    pub n_benign: usize,
    /// Number of malicious samples (split between malicious archetypes).
    pub n_malicious: usize,
    /// Class overlap in `[0, 1]`: 0 = fully separated archetype means,
    /// 1 = malicious means collapsed onto benign means. The default (0.38)
    /// is calibrated so the DAbR scorer lands near the paper's ≈ 80 %
    /// accuracy (measured 78–83 % across seeds); see experiment C2.
    pub overlap: f64,
    /// RNG seed; generation is fully deterministic given the spec.
    pub seed: u64,
}

impl Default for DatasetSpec {
    fn default() -> Self {
        DatasetSpec {
            n_benign: 2_500,
            n_malicious: 2_500,
            overlap: 0.38,
            seed: 1,
        }
    }
}

impl DatasetSpec {
    /// Returns the spec with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the spec with a different class overlap.
    ///
    /// # Panics
    ///
    /// Panics if `overlap` is not within `[0, 1]`.
    pub fn with_overlap(mut self, overlap: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&overlap),
            "overlap {overlap} outside [0, 1]"
        );
        self.overlap = overlap;
        self
    }

    /// Returns the spec with different population sizes.
    pub fn with_sizes(mut self, n_benign: usize, n_malicious: usize) -> Self {
        self.n_benign = n_benign;
        self.n_malicious = n_malicious;
        self
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut samples = Vec::with_capacity(self.n_benign + self.n_malicious);

        let benign_types = [Archetype::Residential, Archetype::ApiClient];
        let malicious_types = [
            Archetype::Botnet,
            Archetype::Scanner,
            Archetype::CredentialStuffer,
        ];

        // Residential dominates benign traffic 4:1; attack traffic splits
        // evenly between malicious archetypes.
        for i in 0..self.n_benign {
            let archetype = if i % 5 < 4 {
                benign_types[0]
            } else {
                benign_types[1]
            };
            samples.push(self.sample(archetype, &mut rng));
        }
        for i in 0..self.n_malicious {
            let archetype = malicious_types[i % malicious_types.len()];
            samples.push(self.sample(archetype, &mut rng));
        }

        // Shuffle so class order carries no information.
        for i in (1..samples.len()).rev() {
            let j = rng.gen_range(0..=i);
            samples.swap(i, j);
        }

        Dataset { samples }
    }

    fn sample(&self, archetype: Archetype, rng: &mut StdRng) -> LabeledSample {
        let dist = archetype.distribution();
        // Blend malicious means toward the residential (majority benign)
        // means according to `overlap`.
        let benign_dist = Archetype::Residential.distribution();
        let is_malicious = archetype.label() == ClassLabel::Malicious;

        let mut values = [0.0; FEATURE_COUNT];
        for (i, value) in values.iter_mut().enumerate() {
            let (mut mean, sd) = dist[i];
            if is_malicious {
                mean = mean * (1.0 - self.overlap) + benign_dist[i].0 * self.overlap;
            }
            let raw = mean + sd * gaussian(rng);
            // Attributes are physically non-negative; ratio-like features
            // also cap at 1, entropy at 8 bits/byte.
            *value = match i {
                1 | 4 | 5 | 7 | 9 => raw.clamp(0.0, 1.0),
                3 => raw.clamp(0.0, 8.0),
                _ => raw.max(0.0),
            };
        }

        // Ground truth score: archetype base blended toward benign by the
        // same overlap, plus observation noise.
        let mut base = archetype.base_true_score();
        if is_malicious {
            base = base * (1.0 - self.overlap)
                + Archetype::Residential.base_true_score() * self.overlap;
        }
        let true_score = (base + 0.7 * gaussian(rng)).clamp(0.0, 10.0);

        LabeledSample {
            features: FeatureVector::new(values),
            label: archetype.label(),
            true_score,
            archetype,
        }
    }
}

/// Standard normal draw via Box–Muller (rand_distr is outside the allowed
/// dependency set).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A labeled synthetic dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    samples: Vec<LabeledSample>,
}

impl Dataset {
    /// Builds a dataset from existing samples (e.g. replayed captures).
    pub fn from_samples(samples: Vec<LabeledSample>) -> Self {
        Dataset { samples }
    }

    /// The samples.
    pub fn samples(&self) -> &[LabeledSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of samples with the given label.
    pub fn count_label(&self, label: ClassLabel) -> usize {
        self.samples.iter().filter(|s| s.label == label).count()
    }

    /// Splits into `(train, test)` with `train_fraction` of samples in the
    /// training set, shuffled deterministically by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `train_fraction` is not within `(0, 1)`.
    pub fn split(&self, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train fraction {train_fraction} outside (0, 1)"
        );
        let mut indices: Vec<usize> = (0..self.samples.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_5911);
        for i in (1..indices.len()).rev() {
            let j = rng.gen_range(0..=i);
            indices.swap(i, j);
        }
        let cut = ((self.samples.len() as f64) * train_fraction).round() as usize;
        let train = indices[..cut].iter().map(|&i| self.samples[i]).collect();
        let test = indices[cut..].iter().map(|&i| self.samples[i]).collect();
        (Dataset { samples: train }, Dataset { samples: test })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = DatasetSpec::default().with_seed(3).generate();
        let b = DatasetSpec::default().with_seed(3).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = DatasetSpec::default().with_seed(3).generate();
        let b = DatasetSpec::default().with_seed(4).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn sizes_and_labels_match_spec() {
        let d = DatasetSpec::default().with_sizes(300, 200).generate();
        assert_eq!(d.len(), 500);
        assert_eq!(d.count_label(ClassLabel::Benign), 300);
        assert_eq!(d.count_label(ClassLabel::Malicious), 200);
    }

    #[test]
    fn true_scores_in_range_and_separated() {
        let d = DatasetSpec::default().generate();
        let mut benign_sum = 0.0;
        let mut benign_n = 0.0;
        let mut mal_sum = 0.0;
        let mut mal_n = 0.0;
        for s in d.samples() {
            assert!((0.0..=10.0).contains(&s.true_score));
            match s.label {
                ClassLabel::Benign => {
                    benign_sum += s.true_score;
                    benign_n += 1.0;
                }
                ClassLabel::Malicious => {
                    mal_sum += s.true_score;
                    mal_n += 1.0;
                }
            }
        }
        let benign_mean = benign_sum / benign_n;
        let mal_mean = mal_sum / mal_n;
        assert!(
            mal_mean - benign_mean > 2.0,
            "classes not separated: benign {benign_mean:.2} vs malicious {mal_mean:.2}"
        );
    }

    #[test]
    fn ratio_features_respect_physical_bounds() {
        let d = DatasetSpec::default().generate();
        for s in d.samples() {
            let f = s.features;
            for idx in [1usize, 4, 5, 7, 9] {
                assert!(
                    (0.0..=1.0).contains(&f.get(idx)),
                    "feature {idx} out of [0,1]"
                );
            }
            assert!((0.0..=8.0).contains(&f.get(3)));
            assert!(f.get(0) >= 0.0 && f.get(2) >= 0.0);
        }
    }

    #[test]
    fn archetype_labels() {
        assert_eq!(Archetype::Residential.label(), ClassLabel::Benign);
        assert_eq!(Archetype::Botnet.label(), ClassLabel::Malicious);
        assert_eq!(Archetype::ALL.len(), 5);
    }

    #[test]
    fn full_overlap_collapses_means() {
        // At overlap=1 the botnet mean equals the residential mean, so the
        // class means of any single feature should be close relative to
        // their pooled spread.
        let d = DatasetSpec::default()
            .with_overlap(1.0)
            .with_sizes(2000, 2000)
            .generate();
        let mean = |label: ClassLabel, idx: usize| {
            let vals: Vec<f64> = d
                .samples()
                .iter()
                .filter(|s| s.label == label)
                .map(|s| s.features.get(idx))
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        // request_rate: benign mix includes ApiClient (higher rate), so
        // tolerate a few units of gap.
        let gap = (mean(ClassLabel::Benign, 0) - mean(ClassLabel::Malicious, 0)).abs();
        assert!(gap < 4.0, "gap {gap}");
    }

    #[test]
    fn split_partitions_and_is_deterministic() {
        let d = DatasetSpec::default().with_sizes(80, 20).generate();
        let (tr1, te1) = d.split(0.8, 9);
        let (tr2, te2) = d.split(0.8, 9);
        assert_eq!(tr1, tr2);
        assert_eq!(te1, te2);
        assert_eq!(tr1.len(), 80);
        assert_eq!(te1.len(), 20);
        // Different split seed shuffles differently.
        let (tr3, _) = d.split(0.8, 10);
        assert_ne!(tr1, tr3);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1)")]
    fn split_rejects_bad_fraction() {
        DatasetSpec::default()
            .with_sizes(10, 10)
            .generate()
            .split(1.0, 0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn overlap_out_of_range_panics() {
        DatasetSpec::default().with_overlap(1.5);
    }

    #[test]
    fn gaussian_moments_sane() {
        let mut rng = StdRng::seed_from_u64(12);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
