//! Traffic attribute vectors for IP reputation scoring.
//!
//! DAbR scores an IP from its published *attributes*; our substitute
//! dataset (see [`crate::synth`]) synthesizes per-IP traffic attributes
//! with the same role. The schema is fixed at compile time so distance
//! computations can stay allocation-free.

use serde::{Deserialize, Serialize};

/// Number of attributes per IP.
pub const FEATURE_COUNT: usize = 10;

/// Human-readable attribute names, indexed like [`FeatureVector`] values.
pub const FEATURE_NAMES: [&str; FEATURE_COUNT] = [
    "request_rate",        // mean HTTP requests per second
    "syn_ratio",           // TCP SYNs without completing handshake, fraction
    "unique_ports",        // distinct destination ports touched
    "payload_entropy",     // mean Shannon entropy of payloads, bits/byte
    "geo_risk",            // geolocation risk index, [0, 1]
    "asn_risk",            // hosting-ASN risk index, [0, 1]
    "blacklist_hits",      // appearances on public blocklists
    "tls_anomaly",         // TLS fingerprint anomaly score, [0, 1]
    "interarrival_jitter", // std-dev of request inter-arrival times, ms
    "failed_auth_ratio",   // failed authentication attempts, fraction
];

/// One IP's attribute vector.
///
/// ```
/// use aipow_reputation::{FeatureVector, FEATURE_COUNT};
/// let f = FeatureVector::zeros();
/// assert_eq!(f.as_slice().len(), FEATURE_COUNT);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    values: [f64; FEATURE_COUNT],
}

impl FeatureVector {
    /// Creates a vector from raw attribute values.
    ///
    /// # Panics
    ///
    /// Panics if any value is NaN — upstream extraction must produce
    /// numbers, and distances over NaN would poison the model silently.
    pub fn new(values: [f64; FEATURE_COUNT]) -> Self {
        assert!(
            values.iter().all(|v| !v.is_nan()),
            "feature vector contains NaN"
        );
        FeatureVector { values }
    }

    /// The all-zero vector.
    pub fn zeros() -> Self {
        FeatureVector {
            values: [0.0; FEATURE_COUNT],
        }
    }

    /// Attribute values as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Value of attribute `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= FEATURE_COUNT`.
    pub fn get(&self, idx: usize) -> f64 {
        self.values[idx]
    }

    /// Returns a copy with attribute `idx` replaced.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= FEATURE_COUNT` or `value` is NaN.
    pub fn with(&self, idx: usize, value: f64) -> Self {
        assert!(!value.is_nan(), "feature value is NaN");
        let mut values = self.values;
        values[idx] = value;
        FeatureVector { values }
    }

    /// Euclidean distance to another vector.
    pub fn distance(&self, other: &FeatureVector) -> f64 {
        self.values
            .iter()
            .zip(other.values.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

impl From<[f64; FEATURE_COUNT]> for FeatureVector {
    fn from(values: [f64; FEATURE_COUNT]) -> Self {
        FeatureVector::new(values)
    }
}

/// Raw per-IP traffic counters, as a network tap would aggregate them over
/// an observation window. [`TrafficWindow::extract`] converts counters into
/// the model's attribute vector; the synthetic generator can produce either
/// form.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficWindow {
    /// Window length in seconds.
    pub window_secs: f64,
    /// Total HTTP requests observed.
    pub requests: u64,
    /// TCP SYNs observed.
    pub syns: u64,
    /// SYNs that completed a handshake.
    pub completed_handshakes: u64,
    /// Distinct destination ports.
    pub unique_ports: u32,
    /// Mean payload entropy in bits/byte.
    pub payload_entropy: f64,
    /// Geolocation risk index `[0, 1]`.
    pub geo_risk: f64,
    /// Hosting-ASN risk index `[0, 1]`.
    pub asn_risk: f64,
    /// Appearances on public blocklists.
    pub blacklist_hits: u32,
    /// TLS fingerprint anomaly `[0, 1]`.
    pub tls_anomaly: f64,
    /// Std-dev of inter-arrival times in ms.
    pub interarrival_jitter_ms: f64,
    /// Authentication attempts observed.
    pub auth_attempts: u64,
    /// Failed authentication attempts.
    pub auth_failures: u64,
}

impl TrafficWindow {
    /// Converts raw counters into the model's attribute vector.
    ///
    /// # Panics
    ///
    /// Panics if `window_secs <= 0`.
    pub fn extract(&self) -> FeatureVector {
        assert!(self.window_secs > 0.0, "window length must be positive");
        let request_rate = self.requests as f64 / self.window_secs;
        let syn_ratio = if self.syns == 0 {
            0.0
        } else {
            1.0 - (self.completed_handshakes.min(self.syns) as f64 / self.syns as f64)
        };
        let failed_auth_ratio = if self.auth_attempts == 0 {
            0.0
        } else {
            self.auth_failures.min(self.auth_attempts) as f64 / self.auth_attempts as f64
        };
        FeatureVector::new([
            request_rate,
            syn_ratio,
            self.unique_ports as f64,
            self.payload_entropy,
            self.geo_risk,
            self.asn_risk,
            self.blacklist_hits as f64,
            self.tls_anomaly,
            self.interarrival_jitter_ms,
            failed_auth_ratio,
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> TrafficWindow {
        TrafficWindow {
            window_secs: 10.0,
            requests: 50,
            syns: 100,
            completed_handshakes: 80,
            unique_ports: 3,
            payload_entropy: 4.2,
            geo_risk: 0.2,
            asn_risk: 0.1,
            blacklist_hits: 0,
            tls_anomaly: 0.05,
            interarrival_jitter_ms: 110.0,
            auth_attempts: 10,
            auth_failures: 1,
        }
    }

    #[test]
    fn names_match_count() {
        assert_eq!(FEATURE_NAMES.len(), FEATURE_COUNT);
    }

    #[test]
    fn extraction_computes_rates() {
        let f = window().extract();
        assert_eq!(f.get(0), 5.0); // 50 req / 10 s
        assert!((f.get(1) - 0.2).abs() < 1e-12); // 20 % incomplete SYNs
        assert_eq!(f.get(2), 3.0);
        assert!((f.get(9) - 0.1).abs() < 1e-12); // 1/10 failed auth
    }

    #[test]
    fn extraction_handles_zero_denominators() {
        let mut w = window();
        w.syns = 0;
        w.auth_attempts = 0;
        let f = w.extract();
        assert_eq!(f.get(1), 0.0);
        assert_eq!(f.get(9), 0.0);
    }

    #[test]
    fn extraction_clamps_inconsistent_counters() {
        let mut w = window();
        w.completed_handshakes = 200; // more than syns: clamp, not negative
        let f = w.extract();
        assert_eq!(f.get(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        let mut w = window();
        w.window_secs = 0.0;
        w.extract();
    }

    #[test]
    fn distance_is_euclidean() {
        let a = FeatureVector::zeros();
        let b = a.with(0, 3.0).with(1, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distance_symmetry_and_identity() {
        let a = window().extract();
        let b = a.with(3, 9.9);
        assert_eq!(a.distance(&b), b.distance(&a));
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let mut values = [0.0; FEATURE_COUNT];
        values[4] = f64::NAN;
        FeatureVector::new(values);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Triangle inequality for the distance metric.
            #[test]
            fn triangle_inequality(a in proptest::collection::vec(-100f64..100.0, FEATURE_COUNT),
                                   b in proptest::collection::vec(-100f64..100.0, FEATURE_COUNT),
                                   c in proptest::collection::vec(-100f64..100.0, FEATURE_COUNT)) {
                let fa = FeatureVector::new(a.try_into().unwrap());
                let fb = FeatureVector::new(b.try_into().unwrap());
                let fc = FeatureVector::new(c.try_into().unwrap());
                prop_assert!(fa.distance(&fc) <= fa.distance(&fb) + fb.distance(&fc) + 1e-9);
            }
        }
    }
}
