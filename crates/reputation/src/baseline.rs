//! Alternative reputation models behind the same trait.
//!
//! The framework's AI component is swappable; these baselines exist to
//! demonstrate that and to contextualize DAbR's quality in experiment C2:
//!
//! - [`KnnScorer`] — distance-weighted k-nearest-neighbour regression on
//!   ground-truth scores: stronger but more expensive than DAbR.
//! - [`BlocklistHeuristic`] — a fixed-weight rule of thumb over three
//!   attributes: what an operator might hand-tune without ML.

use crate::feature::FeatureVector;
use crate::model::ReputationModel;
use crate::normalize::MinMaxNormalizer;
use crate::score::ReputationScore;
use crate::synth::Dataset;

/// k-nearest-neighbour score regression.
#[derive(Debug, Clone)]
pub struct KnnScorer {
    k: usize,
    normalizer: MinMaxNormalizer,
    /// `(normalized features, ground-truth score)` for the training set.
    neighbours: Vec<(FeatureVector, f64)>,
}

impl KnnScorer {
    /// Fits (memorizes) the training set.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty or `k == 0`.
    pub fn fit(train: &Dataset, k: usize) -> Self {
        assert!(!train.is_empty(), "cannot fit k-NN on an empty dataset");
        assert!(k > 0, "k must be positive");
        let features: Vec<FeatureVector> = train.samples().iter().map(|s| s.features).collect();
        let normalizer = MinMaxNormalizer::fit(&features);
        let neighbours = train
            .samples()
            .iter()
            .map(|s| (normalizer.transform(&s.features), s.true_score))
            .collect();
        KnnScorer {
            k,
            normalizer,
            neighbours,
        }
    }
}

impl ReputationModel for KnnScorer {
    fn name(&self) -> &str {
        "knn"
    }

    fn score(&self, features: &FeatureVector) -> ReputationScore {
        let x = self.normalizer.transform(features);
        // Collect distances, take the k smallest.
        let mut dists: Vec<(f64, f64)> = self
            .neighbours
            .iter()
            .map(|(nf, ns)| (x.distance(nf), *ns))
            .collect();
        dists.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("distance invariant: feature distances are never NaN")
        });
        let k = self.k.min(dists.len());

        // Inverse-distance weighting; an exact hit dominates.
        let mut weight_sum = 0.0;
        let mut value_sum = 0.0;
        for &(d, s) in &dists[..k] {
            if d == 0.0 {
                return ReputationScore::clamped(s);
            }
            let w = 1.0 / d;
            weight_sum += w;
            value_sum += w * s;
        }
        ReputationScore::clamped(value_sum / weight_sum)
    }
}

/// A hand-tuned heuristic over blocklist hits, SYN ratio, and request rate.
///
/// Stateless and training-free; its accuracy gap versus DAbR motivates the
/// AI model in the first place.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlocklistHeuristic;

impl ReputationModel for BlocklistHeuristic {
    fn name(&self) -> &str {
        "blocklist-heuristic"
    }

    fn score(&self, features: &FeatureVector) -> ReputationScore {
        // Feature indices per FEATURE_NAMES: 0 request_rate, 1 syn_ratio,
        // 6 blacklist_hits.
        let rate_component = (features.get(0) / 10.0).min(3.0);
        let syn_component = features.get(1) * 4.0;
        let blacklist_component = (features.get(6) * 2.0).min(4.0);
        ReputationScore::clamped(rate_component + syn_component + blacklist_component)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::synth::{ClassLabel, DatasetSpec};

    #[test]
    fn knn_scores_in_range_and_sane() {
        let dataset = DatasetSpec::default()
            .with_sizes(400, 400)
            .with_seed(3)
            .generate();
        let (train, test) = dataset.split(0.8, 3);
        let model = KnnScorer::fit(&train, 5);
        for s in test.samples().iter().take(50) {
            let v = model.score(&s.features).value();
            assert!((0.0..=10.0).contains(&v));
        }
        let report = evaluate(&model, &test);
        assert!(report.accuracy > 0.7, "knn accuracy {}", report.accuracy);
    }

    #[test]
    fn knn_exact_hit_returns_neighbour_score() {
        let dataset = DatasetSpec::default()
            .with_sizes(50, 50)
            .with_seed(4)
            .generate();
        let model = KnnScorer::fit(&dataset, 3);
        let sample = &dataset.samples()[0];
        let v = model.score(&sample.features).value();
        assert!((v - sample.true_score.clamp(0.0, 10.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn knn_zero_k_panics() {
        let dataset = DatasetSpec::default().with_sizes(5, 5).generate();
        KnnScorer::fit(&dataset, 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn knn_empty_train_panics() {
        KnnScorer::fit(&Dataset::from_samples(vec![]), 3);
    }

    #[test]
    fn heuristic_orders_obvious_cases() {
        let benign = FeatureVector::zeros()
            .with(0, 1.0)
            .with(1, 0.05)
            .with(6, 0.0);
        let attack = FeatureVector::zeros()
            .with(0, 50.0)
            .with(1, 0.9)
            .with(6, 3.0);
        let h = BlocklistHeuristic;
        assert!(h.score(&attack).value() > h.score(&benign).value() + 3.0);
    }

    #[test]
    fn heuristic_weaker_than_dabr_on_balanced_data() {
        // The motivating comparison: the trained model should beat the
        // hand-tuned rule (or at worst tie within a couple points).
        let dataset = DatasetSpec::default().with_seed(6).generate();
        let (train, test) = dataset.split(0.8, 6);
        let dabr = crate::dabr::DabrModel::fit(&train, &Default::default());
        let dabr_acc = evaluate(&dabr, &test).accuracy;
        let heuristic_acc = evaluate(&BlocklistHeuristic, &test).accuracy;
        assert!(
            dabr_acc + 0.03 > heuristic_acc,
            "dabr {dabr_acc} vs heuristic {heuristic_acc}"
        );
    }

    #[test]
    fn knn_classifies_clear_botnet_as_malicious() {
        let dataset = DatasetSpec::default().with_seed(8).generate();
        let (train, test) = dataset.split(0.8, 8);
        let model = KnnScorer::fit(&train, 7);
        // Find an unambiguous botnet sample in the test set.
        let bot = test
            .samples()
            .iter()
            .find(|s| s.archetype == crate::synth::Archetype::Botnet && s.true_score > 7.0)
            .expect("test set contains a botnet sample");
        assert_eq!(model.classify(&bot.features), ClassLabel::Malicious);
    }
}
