//! Min–max attribute normalization onto `[0, 10]`.
//!
//! DAbR normalizes raw attributes onto a common scale before computing
//! Euclidean distances, so no single large-magnitude attribute (e.g.
//! `interarrival_jitter` in milliseconds) dominates the metric.

use crate::feature::{FeatureVector, FEATURE_COUNT};
use serde::{Deserialize, Serialize};

/// A fitted min–max normalizer mapping each attribute onto `[0, 10]`.
///
/// Values outside the fitted range (possible at inference time) are
/// clamped, matching the scorer's closed score scale.
///
/// ```
/// use aipow_reputation::normalize::MinMaxNormalizer;
/// use aipow_reputation::FeatureVector;
/// let data = vec![
///     FeatureVector::zeros().with(0, 2.0),
///     FeatureVector::zeros().with(0, 12.0),
/// ];
/// let norm = MinMaxNormalizer::fit(&data);
/// let t = norm.transform(&FeatureVector::zeros().with(0, 7.0));
/// assert!((t.get(0) - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinMaxNormalizer {
    mins: [f64; FEATURE_COUNT],
    ranges: [f64; FEATURE_COUNT],
}

/// Output scale upper bound (DAbR's attribute scale).
pub const SCALE: f64 = 10.0;

impl MinMaxNormalizer {
    /// Fits per-attribute minima and ranges on `data`.
    ///
    /// Constant attributes (range 0) transform to 0 rather than dividing
    /// by zero.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fit(data: &[FeatureVector]) -> Self {
        assert!(!data.is_empty(), "cannot fit normalizer on empty data");
        let mut mins = [f64::INFINITY; FEATURE_COUNT];
        let mut maxs = [f64::NEG_INFINITY; FEATURE_COUNT];
        for fv in data {
            for i in 0..FEATURE_COUNT {
                mins[i] = mins[i].min(fv.get(i));
                maxs[i] = maxs[i].max(fv.get(i));
            }
        }
        let mut ranges = [0.0; FEATURE_COUNT];
        for i in 0..FEATURE_COUNT {
            ranges[i] = maxs[i] - mins[i];
        }
        MinMaxNormalizer { mins, ranges }
    }

    /// Maps a raw vector onto the `[0, 10]` attribute scale.
    pub fn transform(&self, fv: &FeatureVector) -> FeatureVector {
        let mut out = [0.0; FEATURE_COUNT];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = if self.ranges[i] == 0.0 {
                0.0
            } else {
                (SCALE * (fv.get(i) - self.mins[i]) / self.ranges[i]).clamp(0.0, SCALE)
            };
        }
        FeatureVector::new(out)
    }

    /// Convenience: transform a whole slice.
    pub fn transform_all(&self, data: &[FeatureVector]) -> Vec<FeatureVector> {
        data.iter().map(|fv| self.transform(fv)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Vec<FeatureVector> {
        vec![
            FeatureVector::zeros().with(0, 2.0).with(1, 0.5),
            FeatureVector::zeros().with(0, 12.0).with(1, 0.5),
            FeatureVector::zeros().with(0, 7.0).with(1, 0.5),
        ]
    }

    #[test]
    fn endpoints_map_to_scale_bounds() {
        let norm = MinMaxNormalizer::fit(&data());
        assert_eq!(norm.transform(&data()[0]).get(0), 0.0);
        assert_eq!(norm.transform(&data()[1]).get(0), 10.0);
    }

    #[test]
    fn constant_feature_maps_to_zero() {
        let norm = MinMaxNormalizer::fit(&data());
        // Feature 1 is constant (0.5) across the fit data.
        assert_eq!(norm.transform(&data()[0]).get(1), 0.0);
        assert_eq!(
            norm.transform(&FeatureVector::zeros().with(1, 99.0)).get(1),
            0.0
        );
    }

    #[test]
    fn out_of_range_inputs_clamp() {
        let norm = MinMaxNormalizer::fit(&data());
        assert_eq!(
            norm.transform(&FeatureVector::zeros().with(0, -100.0))
                .get(0),
            0.0
        );
        assert_eq!(
            norm.transform(&FeatureVector::zeros().with(0, 1e9)).get(0),
            10.0
        );
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_fit_panics() {
        MinMaxNormalizer::fit(&[]);
    }

    #[test]
    fn transform_all_matches_individual() {
        let norm = MinMaxNormalizer::fit(&data());
        let all = norm.transform_all(&data());
        for (a, b) in all.iter().zip(data().iter()) {
            assert_eq!(*a, norm.transform(b));
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// All transformed attributes land in [0, 10] for any data.
            #[test]
            fn output_bounded(rows in proptest::collection::vec(
                proptest::collection::vec(-1e6f64..1e6, FEATURE_COUNT), 1..50)) {
                let data: Vec<FeatureVector> = rows
                    .into_iter()
                    .map(|r| FeatureVector::new(r.try_into().unwrap()))
                    .collect();
                let norm = MinMaxNormalizer::fit(&data);
                for fv in &data {
                    let t = norm.transform(fv);
                    for i in 0..FEATURE_COUNT {
                        prop_assert!((0.0..=10.0).contains(&t.get(i)));
                    }
                }
            }

            /// Normalization preserves per-feature ordering.
            #[test]
            fn order_preserved(a in -1e3f64..1e3, b in -1e3f64..1e3) {
                let data = vec![
                    FeatureVector::zeros().with(2, a.min(b) - 1.0),
                    FeatureVector::zeros().with(2, a.max(b) + 1.0),
                ];
                let norm = MinMaxNormalizer::fit(&data);
                let ta = norm.transform(&FeatureVector::zeros().with(2, a)).get(2);
                let tb = norm.transform(&FeatureVector::zeros().with(2, b)).get(2);
                if a < b { prop_assert!(ta <= tb); } else { prop_assert!(tb <= ta); }
            }
        }
    }
}
