//! The [`ReputationScore`] newtype.

use core::fmt;
use serde::{Deserialize, Serialize};

/// An IP reputation score on the paper's scale: `[0, 10]`, where **higher
/// means more untrustworthy**.
///
/// The type enforces the range at construction; policies may rely on it.
///
/// ```
/// use aipow_reputation::ReputationScore;
/// let s = ReputationScore::new(7.3)?;
/// assert_eq!(s.band(), 7);
/// assert!(ReputationScore::new(11.0).is_err());
/// # Ok::<(), aipow_reputation::score::ScoreRangeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
#[serde(try_from = "f64", into = "f64")]
pub struct ReputationScore(f64);

/// Error returned when constructing a score outside `[0, 10]` or from a
/// non-finite value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreRangeError {
    /// The rejected value.
    pub value: f64,
}

impl fmt::Display for ScoreRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reputation score {} outside the valid range [0, 10]",
            self.value
        )
    }
}

impl std::error::Error for ScoreRangeError {}

impl ReputationScore {
    /// The most trustworthy score.
    pub const MIN: ReputationScore = ReputationScore(0.0);
    /// The least trustworthy score.
    pub const MAX: ReputationScore = ReputationScore(10.0);

    /// Creates a score, validating the range.
    ///
    /// # Errors
    ///
    /// Returns [`ScoreRangeError`] for non-finite values or values outside
    /// `[0, 10]`.
    pub fn new(value: f64) -> Result<Self, ScoreRangeError> {
        if value.is_finite() && (0.0..=10.0).contains(&value) {
            Ok(ReputationScore(value))
        } else {
            Err(ScoreRangeError { value })
        }
    }

    /// Creates a score, clamping into `[0, 10]`. NaN clamps to 0 (most
    /// trustworthy is the conservative default for a broken model: the
    /// framework then falls back to its baseline difficulty rather than
    /// denying service).
    pub fn clamped(value: f64) -> Self {
        if value.is_nan() {
            return ReputationScore(0.0);
        }
        ReputationScore(value.clamp(0.0, 10.0))
    }

    /// The raw score value.
    pub fn value(&self) -> f64 {
        self.0
    }

    /// The discrete band `{0, 1, …, 10}` the paper's Policies 1 and 2 index
    /// by (round-to-nearest).
    pub fn band(&self) -> u8 {
        self.0.round() as u8
    }
}

impl fmt::Display for ReputationScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}", self.0)
    }
}

impl TryFrom<f64> for ReputationScore {
    type Error = ScoreRangeError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        ReputationScore::new(value)
    }
}

impl From<ReputationScore> for f64 {
    fn from(s: ReputationScore) -> f64 {
        s.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_range_bounds() {
        assert!(ReputationScore::new(0.0).is_ok());
        assert!(ReputationScore::new(10.0).is_ok());
    }

    #[test]
    fn rejects_out_of_range_and_nonfinite() {
        assert!(ReputationScore::new(-0.1).is_err());
        assert!(ReputationScore::new(10.1).is_err());
        assert!(ReputationScore::new(f64::NAN).is_err());
        assert!(ReputationScore::new(f64::INFINITY).is_err());
    }

    #[test]
    fn clamped_saturates() {
        assert_eq!(ReputationScore::clamped(-5.0).value(), 0.0);
        assert_eq!(ReputationScore::clamped(15.0).value(), 10.0);
        assert_eq!(ReputationScore::clamped(5.5).value(), 5.5);
        assert_eq!(ReputationScore::clamped(f64::NAN).value(), 0.0);
    }

    #[test]
    fn band_rounds_to_nearest() {
        assert_eq!(ReputationScore::new(0.4).unwrap().band(), 0);
        assert_eq!(ReputationScore::new(0.5).unwrap().band(), 1);
        assert_eq!(ReputationScore::new(9.6).unwrap().band(), 10);
        assert_eq!(ReputationScore::MAX.band(), 10);
    }

    #[test]
    fn display_two_decimals() {
        assert_eq!(ReputationScore::new(3.21987).unwrap().to_string(), "3.22");
    }

    #[test]
    fn error_is_informative() {
        let err = ReputationScore::new(42.0).unwrap_err();
        assert!(err.to_string().contains("42"));
    }

    #[test]
    fn ordering_works() {
        assert!(ReputationScore::new(2.0).unwrap() < ReputationScore::new(8.0).unwrap());
    }
}
