//! Model evaluation: classification quality and score error.
//!
//! Two quantities tie back to the paper: DAbR's ≈ 80 % accuracy (claim C2)
//! and the score error `ϵ` that Policy 3 corrects for (“we consider the
//! error ϵ from \[the\] DAbR system”). [`evaluate`] computes both on a
//! held-out set.

use crate::model::ReputationModel;
use crate::synth::{ClassLabel, Dataset};
use serde::{Deserialize, Serialize};

/// Binary confusion matrix (positive class = malicious).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Malicious classified malicious.
    pub true_positives: usize,
    /// Benign classified malicious.
    pub false_positives: usize,
    /// Benign classified benign.
    pub true_negatives: usize,
    /// Malicious classified benign.
    pub false_negatives: usize,
}

impl ConfusionMatrix {
    /// Total classified samples.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Fraction classified correctly.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.true_positives + self.true_negatives) as f64 / self.total() as f64
    }

    /// Of those flagged malicious, the fraction that were.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            return 0.0;
        }
        self.true_positives as f64 / denom as f64
    }

    /// Of the actually malicious, the fraction flagged.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            return 0.0;
        }
        self.true_positives as f64 / denom as f64
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

/// Full evaluation of a model on a labeled dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// Number of evaluated samples.
    pub n: usize,
    /// Classification accuracy.
    pub accuracy: f64,
    /// Precision for the malicious class.
    pub precision: f64,
    /// Recall for the malicious class.
    pub recall: f64,
    /// F1 for the malicious class.
    pub f1: f64,
    /// Mean absolute score error vs ground truth — the `ϵ` fed to Policy 3.
    pub score_mae: f64,
    /// Root-mean-square score error.
    pub score_rmse: f64,
    /// The confusion matrix.
    pub confusion: ConfusionMatrix,
}

/// Evaluates `model` on `dataset`.
///
/// # Panics
///
/// Panics if `dataset` is empty.
pub fn evaluate<M: ReputationModel + ?Sized>(model: &M, dataset: &Dataset) -> EvalReport {
    assert!(!dataset.is_empty(), "cannot evaluate on an empty dataset");
    let mut confusion = ConfusionMatrix::default();
    let mut abs_sum = 0.0;
    let mut sq_sum = 0.0;

    for s in dataset.samples() {
        let predicted = model.classify(&s.features);
        match (s.label, predicted) {
            (ClassLabel::Malicious, ClassLabel::Malicious) => confusion.true_positives += 1,
            (ClassLabel::Benign, ClassLabel::Malicious) => confusion.false_positives += 1,
            (ClassLabel::Benign, ClassLabel::Benign) => confusion.true_negatives += 1,
            (ClassLabel::Malicious, ClassLabel::Benign) => confusion.false_negatives += 1,
        }
        let err = model.score(&s.features).value() - s.true_score;
        abs_sum += err.abs();
        sq_sum += err * err;
    }

    let n = dataset.len();
    EvalReport {
        n,
        accuracy: confusion.accuracy(),
        precision: confusion.precision(),
        recall: confusion.recall(),
        f1: confusion.f1(),
        score_mae: abs_sum / n as f64,
        score_rmse: (sq_sum / n as f64).sqrt(),
        confusion,
    }
}

/// Estimates the model's score error `ϵ` (mean absolute error against
/// ground truth) — the parameter the paper's Policy 3 consumes.
pub fn estimate_epsilon<M: ReputationModel + ?Sized>(model: &M, dataset: &Dataset) -> f64 {
    evaluate(model, dataset).score_mae
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dabr::{DabrConfig, DabrModel};
    use crate::model::FixedScoreModel;
    use crate::score::ReputationScore;
    use crate::synth::DatasetSpec;

    #[test]
    fn confusion_matrix_metrics() {
        let cm = ConfusionMatrix {
            true_positives: 40,
            false_positives: 10,
            true_negatives: 45,
            false_negatives: 5,
        };
        assert_eq!(cm.total(), 100);
        assert!((cm.accuracy() - 0.85).abs() < 1e-12);
        assert!((cm.precision() - 0.8).abs() < 1e-12);
        assert!((cm.recall() - 40.0 / 45.0).abs() < 1e-12);
        let f1 = cm.f1();
        assert!((0.8..0.9).contains(&f1));
    }

    #[test]
    fn degenerate_matrix_is_zero_not_nan() {
        let cm = ConfusionMatrix::default();
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.precision(), 0.0);
        assert_eq!(cm.recall(), 0.0);
        assert_eq!(cm.f1(), 0.0);
    }

    #[test]
    fn fixed_model_all_malicious_has_full_recall() {
        let dataset = DatasetSpec::default().with_sizes(100, 100).generate();
        let model = FixedScoreModel::new(ReputationScore::MAX);
        let report = evaluate(&model, &dataset);
        assert_eq!(report.recall, 1.0);
        assert!((report.accuracy - 0.5).abs() < 1e-12);
        assert!((report.precision - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dabr_meets_paper_accuracy_band_across_seeds() {
        // Claim C2: accuracy ≈ 80 %. Check 78–88 across three seeds at the
        // default overlap (exact numbers land in EXPERIMENTS.md).
        for seed in [11u64, 23, 37] {
            let dataset = DatasetSpec::default().with_seed(seed).generate();
            let (train, test) = dataset.split(0.8, seed);
            let model = DabrModel::fit(&train, &DabrConfig::default());
            let report = evaluate(&model, &test);
            assert!(
                (0.72..=0.92).contains(&report.accuracy),
                "seed {seed}: accuracy {}",
                report.accuracy
            );
        }
    }

    #[test]
    fn epsilon_estimate_is_moderate() {
        // ϵ should be a small number of score points: large enough to
        // matter for Policy 3, small enough that scores are informative.
        let dataset = DatasetSpec::default().with_seed(13).generate();
        let (train, test) = dataset.split(0.8, 13);
        let model = DabrModel::fit(&train, &DabrConfig::default());
        let eps = estimate_epsilon(&model, &test);
        assert!((0.2..=3.0).contains(&eps), "epsilon {eps}");
    }

    #[test]
    fn rmse_at_least_mae() {
        let dataset = DatasetSpec::default().with_seed(17).generate();
        let (train, test) = dataset.split(0.8, 17);
        let model = DabrModel::fit(&train, &DabrConfig::default());
        let report = evaluate(&model, &test);
        assert!(report.score_rmse >= report.score_mae);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_dataset_panics() {
        let model = FixedScoreModel::new(ReputationScore::MIN);
        evaluate(&model, &Dataset::from_samples(vec![]));
    }
}
