//! The pluggable reputation-model interface.
//!
//! The framework is modular: “Components include: an AI model that
//! generates a reputation score …” — anything that can map an attribute
//! vector to a `[0, 10]` score can drive the policy module.

use crate::feature::FeatureVector;
use crate::score::ReputationScore;
use crate::synth::ClassLabel;

/// A model that scores IP attribute vectors.
///
/// Implementations must be thread-safe: one model instance serves the whole
/// admission pipeline.
pub trait ReputationModel: Send + Sync {
    /// A short, stable identifier for reports.
    fn name(&self) -> &str;

    /// Scores an attribute vector; higher = more untrustworthy.
    fn score(&self, features: &FeatureVector) -> ReputationScore;

    /// Decision threshold used by [`classify`](ReputationModel::classify).
    fn malicious_threshold(&self) -> f64 {
        5.0
    }

    /// Binary classification derived from the score.
    fn classify(&self, features: &FeatureVector) -> ClassLabel {
        if self.score(features).value() >= self.malicious_threshold() {
            ClassLabel::Malicious
        } else {
            ClassLabel::Benign
        }
    }
}

/// A model returning a fixed score — useful for tests, examples, and as a
/// degraded-mode fallback when the real model is unavailable.
///
/// ```
/// use aipow_reputation::model::{FixedScoreModel, ReputationModel};
/// use aipow_reputation::{FeatureVector, ReputationScore};
/// let m = FixedScoreModel::new(ReputationScore::new(3.0).unwrap());
/// assert_eq!(m.score(&FeatureVector::zeros()).value(), 3.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FixedScoreModel {
    score: ReputationScore,
}

impl FixedScoreModel {
    /// Creates a model that always returns `score`.
    pub fn new(score: ReputationScore) -> Self {
        FixedScoreModel { score }
    }
}

impl ReputationModel for FixedScoreModel {
    fn name(&self) -> &str {
        "fixed"
    }

    fn score(&self, _features: &FeatureVector) -> ReputationScore {
        self.score
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_model_scores_constant() {
        let m = FixedScoreModel::new(ReputationScore::new(8.0).unwrap());
        assert_eq!(m.score(&FeatureVector::zeros()).value(), 8.0);
        assert_eq!(m.classify(&FeatureVector::zeros()), ClassLabel::Malicious);
    }

    #[test]
    fn default_threshold_splits_at_five() {
        let low = FixedScoreModel::new(ReputationScore::new(4.99).unwrap());
        let high = FixedScoreModel::new(ReputationScore::new(5.0).unwrap());
        assert_eq!(low.classify(&FeatureVector::zeros()), ClassLabel::Benign);
        assert_eq!(
            high.classify(&FeatureVector::zeros()),
            ClassLabel::Malicious
        );
    }

    #[test]
    fn trait_object_usable() {
        let m: Box<dyn ReputationModel> = Box::new(FixedScoreModel::new(ReputationScore::MIN));
        assert_eq!(m.name(), "fixed");
        assert_eq!(m.score(&FeatureVector::zeros()), ReputationScore::MIN);
    }
}
