//! k-means clustering with k-means++ initialization.
//!
//! DAbR learns reference points from known-malicious IPs; we cluster the
//! malicious training vectors so the scorer measures distance to the
//! nearest *attack family* (botnet / scanner / credential-stuffer) rather
//! than to a single blurred centroid.

use crate::feature::{FeatureVector, FEATURE_COUNT};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Final centroids (`k` of them, possibly fewer if `k > data.len()`).
    pub centroids: Vec<FeatureVector>,
    /// Index of the centroid owning each input point.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of points to their centroid.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

/// Configuration for [`kmeans`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iterations: usize,
    /// Convergence threshold on centroid movement (Euclidean).
    pub tolerance: f64,
    /// RNG seed for k-means++ initialization.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 3,
            max_iterations: 100,
            tolerance: 1e-6,
            seed: 0,
        }
    }
}

/// Runs k-means over `data`.
///
/// If `k >= data.len()`, every point becomes its own centroid.
///
/// # Panics
///
/// Panics if `data` is empty or `config.k == 0`.
pub fn kmeans(data: &[FeatureVector], config: &KMeansConfig) -> KMeansResult {
    assert!(!data.is_empty(), "cannot cluster empty data");
    assert!(config.k > 0, "k must be positive");

    if config.k >= data.len() {
        let centroids: Vec<FeatureVector> = data.to_vec();
        let assignments: Vec<usize> = (0..data.len()).collect();
        return KMeansResult {
            centroids,
            assignments,
            inertia: 0.0,
            iterations: 0,
        };
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut centroids = init_plus_plus(data, config.k, &mut rng);
    let mut assignments = vec![0usize; data.len()];

    let mut iterations = 0;
    for iter in 0..config.max_iterations {
        iterations = iter + 1;

        // Assignment step.
        for (i, point) in data.iter().enumerate() {
            assignments[i] = nearest(point, &centroids).0;
        }

        // Update step.
        let mut sums = vec![[0.0f64; FEATURE_COUNT]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (point, &a) in data.iter().zip(assignments.iter()) {
            counts[a] += 1;
            for (j, s) in sums[a].iter_mut().enumerate() {
                *s += point.get(j);
            }
        }

        let mut movement: f64 = 0.0;
        for (c, centroid) in centroids.iter_mut().enumerate() {
            if counts[c] == 0 {
                // Empty cluster: re-seed to the point farthest from its
                // centroid to avoid dead centroids.
                let far = data
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        let da = nearest(a, std::slice::from_ref(centroid)).1;
                        let db = nearest(b, std::slice::from_ref(centroid)).1;
                        da.partial_cmp(&db)
                            .expect("distance invariant: feature distances are never NaN")
                    })
                    .map(|(i, _)| i)
                    .expect("loop invariant: clusters are only formed over data");
                movement += centroid.distance(&data[far]);
                *centroid = data[far];
                continue;
            }
            let mut mean = [0.0f64; FEATURE_COUNT];
            for (j, m) in mean.iter_mut().enumerate() {
                *m = sums[c][j] / counts[c] as f64;
            }
            let new_centroid = FeatureVector::new(mean);
            movement += centroid.distance(&new_centroid);
            *centroid = new_centroid;
        }

        if movement <= config.tolerance {
            break;
        }
    }

    // Final assignment + inertia under the converged centroids.
    let mut inertia = 0.0;
    for (i, point) in data.iter().enumerate() {
        let (a, d) = nearest(point, &centroids);
        assignments[i] = a;
        inertia += d * d;
    }

    KMeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    }
}

/// Index and distance of the nearest centroid.
fn nearest(point: &FeatureVector, centroids: &[FeatureVector]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = point.distance(c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

/// k-means++ seeding: first centroid uniform, then proportional to squared
/// distance from the nearest chosen centroid.
fn init_plus_plus(data: &[FeatureVector], k: usize, rng: &mut StdRng) -> Vec<FeatureVector> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(data[rng.gen_range(0..data.len())]);

    while centroids.len() < k {
        let d2: Vec<f64> = data
            .iter()
            .map(|p| {
                let (_, d) = nearest(p, &centroids);
                d * d
            })
            .collect();
        let total: f64 = d2.iter().sum();
        if total == 0.0 {
            // All points coincide with centroids; duplicate arbitrarily.
            centroids.push(data[rng.gen_range(0..data.len())]);
            continue;
        }
        let mut threshold = rng.gen_range(0.0..total);
        let mut chosen = data.len() - 1;
        for (i, &w) in d2.iter().enumerate() {
            if threshold < w {
                chosen = i;
                break;
            }
            threshold -= w;
        }
        centroids.push(data[chosen]);
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three tight, well-separated blobs along feature 0.
    fn blobs() -> Vec<FeatureVector> {
        let mut data = Vec::new();
        for (center, n) in [(0.0, 20), (50.0, 20), (100.0, 20)] {
            for i in 0..n {
                let jitter = (i as f64 - 10.0) * 0.05;
                data.push(FeatureVector::zeros().with(0, center + jitter));
            }
        }
        data
    }

    #[test]
    fn recovers_separated_blobs() {
        let result = kmeans(&blobs(), &KMeansConfig::default());
        assert_eq!(result.centroids.len(), 3);
        let mut centers: Vec<f64> = result.centroids.iter().map(|c| c.get(0)).collect();
        centers.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((centers[0] - 0.0).abs() < 1.0, "{centers:?}");
        assert!((centers[1] - 50.0).abs() < 1.0, "{centers:?}");
        assert!((centers[2] - 100.0).abs() < 1.0, "{centers:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = kmeans(&blobs(), &KMeansConfig::default());
        let b = kmeans(&blobs(), &KMeansConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn assignments_point_to_nearest_centroid() {
        let data = blobs();
        let result = kmeans(&data, &KMeansConfig::default());
        for (point, &a) in data.iter().zip(result.assignments.iter()) {
            let (nearest_idx, _) = nearest(point, &result.centroids);
            assert_eq!(a, nearest_idx);
        }
    }

    #[test]
    fn k_greater_than_points_degenerates_gracefully() {
        let data = vec![FeatureVector::zeros(), FeatureVector::zeros().with(0, 1.0)];
        let result = kmeans(
            &data,
            &KMeansConfig {
                k: 10,
                ..Default::default()
            },
        );
        assert_eq!(result.centroids.len(), 2);
        assert_eq!(result.inertia, 0.0);
    }

    #[test]
    fn k_equals_one_centroid_is_mean() {
        let data = vec![
            FeatureVector::zeros().with(0, 0.0),
            FeatureVector::zeros().with(0, 10.0),
        ];
        let result = kmeans(
            &data,
            &KMeansConfig {
                k: 1,
                ..Default::default()
            },
        );
        assert!((result.centroids[0].get(0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let data = blobs();
        let inertia = |k: usize| {
            kmeans(
                &data,
                &KMeansConfig {
                    k,
                    ..Default::default()
                },
            )
            .inertia
        };
        let i1 = inertia(1);
        let i3 = inertia(3);
        assert!(i3 < i1, "inertia did not decrease: k1={i1} k3={i3}");
    }

    #[test]
    fn identical_points_do_not_loop_forever() {
        let data = vec![FeatureVector::zeros(); 10];
        let result = kmeans(
            &data,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        );
        assert_eq!(result.inertia, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_data_panics() {
        kmeans(&[], &KMeansConfig::default());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_panics() {
        kmeans(
            &[FeatureVector::zeros()],
            &KMeansConfig {
                k: 0,
                ..Default::default()
            },
        );
    }
}
