//! The DAbR-style Euclidean-distance reputation scorer.
//!
//! Reimplements the technique of Renjan et al. (ISI 2018) as the paper's
//! proof-of-concept AI model: learn from known-malicious IPs and score an
//! incoming IP by how close its attribute vector sits to the malicious
//! population.
//!
//! Pipeline (all fitted on the training split only):
//!
//! 1. min–max normalize attributes onto `[0, 10]`,
//! 2. k-means over *malicious* training vectors → attack-family centroids,
//! 3. raw statistic `d(x)` = Euclidean distance from `x` to the nearest
//!    malicious centroid,
//! 4. calibrate `d(x)` onto the `[0, 10]` score scale with a two-Gaussian
//!    likelihood model: fit normal densities to the distance statistic of
//!    malicious and benign training points and report
//!    `score = 10 · P(malicious | d)` (equal priors). Score 5 is then
//!    exactly the Bayes decision boundary of the distance statistic, which
//!    matches the framework's `[0, 10]`-with-threshold-5 convention.

use crate::feature::FeatureVector;
use crate::kmeans::{kmeans, KMeansConfig};
use crate::model::ReputationModel;
use crate::normalize::MinMaxNormalizer;
use crate::score::ReputationScore;
use crate::synth::{ClassLabel, Dataset};
use serde::{Deserialize, Serialize};

/// Configuration for [`DabrModel::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DabrConfig {
    /// Number of malicious centroids (attack families).
    pub centroids: usize,
    /// Seed for k-means initialization.
    pub seed: u64,
    /// Score threshold above which an IP is classified malicious. The
    /// default of 5.0 is the Bayes boundary of the calibrated score.
    pub threshold: f64,
}

impl Default for DabrConfig {
    fn default() -> Self {
        DabrConfig {
            centroids: 3,
            seed: 0,
            threshold: 5.0,
        }
    }
}

/// Mean/stddev of the distance statistic for one class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct ClassDensity {
    mean: f64,
    stddev: f64,
}

impl ClassDensity {
    fn fit(values: &[f64]) -> Self {
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        ClassDensity {
            mean,
            // Floor keeps the log-density finite for degenerate classes.
            stddev: var.sqrt().max(1e-6),
        }
    }

    /// Log of the normal density at `x` (up to the shared constant).
    fn log_density(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.stddev;
        -0.5 * z * z - self.stddev.ln()
    }
}

/// A fitted DAbR-style scorer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DabrModel {
    normalizer: MinMaxNormalizer,
    centroids: Vec<FeatureVector>,
    malicious_density: ClassDensity,
    benign_density: ClassDensity,
    threshold: f64,
}

impl DabrModel {
    /// Fits the scorer on a labeled training set.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty or contains no malicious samples (DAbR
    /// learns from known-malicious attributes) or no benign samples (needed
    /// to calibrate the score scale).
    pub fn fit(train: &Dataset, config: &DabrConfig) -> Self {
        assert!(!train.is_empty(), "cannot fit DAbR on an empty dataset");
        let all_features: Vec<FeatureVector> = train.samples().iter().map(|s| s.features).collect();
        let normalizer = MinMaxNormalizer::fit(&all_features);

        let malicious: Vec<FeatureVector> = train
            .samples()
            .iter()
            .filter(|s| s.label == ClassLabel::Malicious)
            .map(|s| normalizer.transform(&s.features))
            .collect();
        assert!(
            !malicious.is_empty(),
            "DAbR requires known-malicious training samples"
        );

        let clustering = kmeans(
            &malicious,
            &KMeansConfig {
                k: config.centroids,
                seed: config.seed,
                ..Default::default()
            },
        );

        // Distance statistic per class, for calibration.
        let mut d_mal = Vec::new();
        let mut d_ben = Vec::new();
        for s in train.samples() {
            let x = normalizer.transform(&s.features);
            let d = nearest_distance(&x, &clustering.centroids);
            match s.label {
                ClassLabel::Malicious => d_mal.push(d),
                ClassLabel::Benign => d_ben.push(d),
            }
        }
        assert!(
            !d_ben.is_empty(),
            "DAbR calibration requires benign training samples"
        );

        DabrModel {
            normalizer,
            centroids: clustering.centroids,
            malicious_density: ClassDensity::fit(&d_mal),
            benign_density: ClassDensity::fit(&d_ben),
            threshold: config.threshold,
        }
    }

    /// The fitted attack-family centroids (normalized space).
    pub fn centroids(&self) -> &[FeatureVector] {
        &self.centroids
    }

    /// Raw distance statistic for an attribute vector (before calibration).
    pub fn distance(&self, features: &FeatureVector) -> f64 {
        let x = self.normalizer.transform(features);
        nearest_distance(&x, &self.centroids)
    }

    /// Calibrated posterior `P(malicious | distance)` with equal priors.
    pub fn posterior(&self, features: &FeatureVector) -> f64 {
        let d = self.distance(features);
        let z = self.malicious_density.log_density(d) - self.benign_density.log_density(d);
        // Logistic of the log-likelihood ratio; stable for large |z|.
        if z >= 0.0 {
            1.0 / (1.0 + (-z).exp())
        } else {
            let e = z.exp();
            e / (1.0 + e)
        }
    }
}

impl ReputationModel for DabrModel {
    fn name(&self) -> &str {
        "dabr"
    }

    fn score(&self, features: &FeatureVector) -> ReputationScore {
        ReputationScore::clamped(10.0 * self.posterior(features))
    }

    fn malicious_threshold(&self) -> f64 {
        self.threshold
    }
}

fn nearest_distance(x: &FeatureVector, centroids: &[FeatureVector]) -> f64 {
    centroids
        .iter()
        .map(|c| x.distance(c))
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::DatasetSpec;

    fn fitted() -> (DabrModel, Dataset, Dataset) {
        let dataset = DatasetSpec::default().with_seed(5).generate();
        let (train, test) = dataset.split(0.8, 5);
        let model = DabrModel::fit(&train, &DabrConfig::default());
        (model, train, test)
    }

    #[test]
    fn scores_are_in_range() {
        let (model, _, test) = fitted();
        for s in test.samples() {
            let score = model.score(&s.features).value();
            assert!((0.0..=10.0).contains(&score));
        }
    }

    #[test]
    fn malicious_score_higher_on_average() {
        let (model, _, test) = fitted();
        let mean = |label: ClassLabel| {
            let scores: Vec<f64> = test
                .samples()
                .iter()
                .filter(|s| s.label == label)
                .map(|s| model.score(&s.features).value())
                .collect();
            scores.iter().sum::<f64>() / scores.len() as f64
        };
        let benign = mean(ClassLabel::Benign);
        let malicious = mean(ClassLabel::Malicious);
        assert!(
            malicious > benign + 2.0,
            "benign {benign:.2} vs malicious {malicious:.2}"
        );
    }

    #[test]
    fn malicious_distances_are_smaller() {
        // The statistic underlying the score: malicious points sit closer
        // to the malicious centroids.
        let (model, _, test) = fitted();
        let mean_d = |label: ClassLabel| {
            let ds: Vec<f64> = test
                .samples()
                .iter()
                .filter(|s| s.label == label)
                .map(|s| model.distance(&s.features))
                .collect();
            ds.iter().sum::<f64>() / ds.len() as f64
        };
        assert!(mean_d(ClassLabel::Malicious) < mean_d(ClassLabel::Benign));
    }

    #[test]
    fn accuracy_near_paper_band() {
        // The paper reports ≈ 80 % accuracy for DAbR. Allow a tolerant band
        // (the exact value is reported by experiment C2).
        let (model, _, test) = fitted();
        let correct = test
            .samples()
            .iter()
            .filter(|s| model.classify(&s.features) == s.label)
            .count();
        let accuracy = correct as f64 / test.len() as f64;
        assert!(
            (0.72..=0.92).contains(&accuracy),
            "accuracy {accuracy} outside plausible band"
        );
    }

    #[test]
    fn posterior_is_probability() {
        let (model, _, test) = fitted();
        for s in test.samples() {
            let p = model.posterior(&s.features);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn deterministic_fit() {
        let dataset = DatasetSpec::default().with_seed(5).generate();
        let (train, _) = dataset.split(0.8, 5);
        let a = DabrModel::fit(&train, &DabrConfig::default());
        let b = DabrModel::fit(&train, &DabrConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn centroid_count_respects_config() {
        let dataset = DatasetSpec::default().with_seed(5).generate();
        let (train, _) = dataset.split(0.8, 5);
        let model = DabrModel::fit(
            &train,
            &DabrConfig {
                centroids: 5,
                ..Default::default()
            },
        );
        assert_eq!(model.centroids().len(), 5);
    }

    #[test]
    #[should_panic(expected = "known-malicious")]
    fn fit_requires_malicious_samples() {
        let dataset = DatasetSpec::default().with_sizes(50, 0).generate();
        DabrModel::fit(&dataset, &DabrConfig::default());
    }

    #[test]
    #[should_panic(expected = "benign training samples")]
    fn fit_requires_benign_samples() {
        let dataset = DatasetSpec::default().with_sizes(0, 50).generate();
        DabrModel::fit(&dataset, &DabrConfig::default());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn fit_rejects_empty() {
        DabrModel::fit(&Dataset::from_samples(vec![]), &DabrConfig::default());
    }

    #[test]
    fn density_fit_matches_moments() {
        let d = ClassDensity::fit(&[1.0, 3.0]);
        assert_eq!(d.mean, 2.0);
        assert!((d.stddev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn density_degenerate_values_finite() {
        let d = ClassDensity::fit(&[2.0, 2.0, 2.0]);
        assert!(d.log_density(2.0).is_finite());
        assert!(d.log_density(100.0).is_finite());
    }

    #[test]
    fn distance_close_to_centroid_scores_high() {
        let (model, train, _) = fitted();
        // The malicious training sample nearest to a centroid should score
        // clearly worse than the benign sample farthest from centroids.
        let mut best_mal_score: f64 = 0.0;
        let mut best_ben_score: f64 = 10.0;
        for s in train.samples() {
            let v = model.score(&s.features).value();
            match s.label {
                ClassLabel::Malicious => best_mal_score = best_mal_score.max(v),
                ClassLabel::Benign => best_ben_score = best_ben_score.min(v),
            }
        }
        assert!(best_mal_score > 7.0, "max malicious score {best_mal_score}");
        assert!(best_ben_score < 3.0, "min benign score {best_ben_score}");
    }
}
