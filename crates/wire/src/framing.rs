//! Stream framing: length-delimited message IO over any `Read`/`Write`.

use crate::codec::{self, DecodeError, MAX_PAYLOAD_LEN};
use crate::message::Message;
use core::fmt;
use std::io::{self, Read, Write};

/// Why reading a message from a stream failed.
#[derive(Debug)]
pub enum ReadMessageError {
    /// The underlying stream failed (including clean EOF mid-frame).
    Io(io::Error),
    /// The peer closed the stream cleanly between frames.
    Closed,
    /// The frame arrived but did not decode.
    Decode(DecodeError),
}

impl fmt::Display for ReadMessageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadMessageError::Io(e) => write!(f, "stream error: {e}"),
            ReadMessageError::Closed => write!(f, "peer closed the connection"),
            ReadMessageError::Decode(e) => write!(f, "frame decode error: {e}"),
        }
    }
}

impl std::error::Error for ReadMessageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadMessageError::Io(e) => Some(e),
            ReadMessageError::Decode(e) => Some(e),
            ReadMessageError::Closed => None,
        }
    }
}

impl From<io::Error> for ReadMessageError {
    fn from(e: io::Error) -> Self {
        ReadMessageError::Io(e)
    }
}

impl From<DecodeError> for ReadMessageError {
    fn from(e: DecodeError) -> Self {
        ReadMessageError::Decode(e)
    }
}

/// Writes one message to the stream. A `&mut W` can be passed for writers
/// that should not be consumed.
///
/// # Errors
///
/// Propagates any I/O error from the underlying writer.
pub fn write_message<W: Write>(mut writer: W, msg: &Message) -> io::Result<()> {
    let frame = codec::encode(msg);
    writer.write_all(&frame)?;
    writer.flush()
}

/// Reads one message from the stream. A `&mut R` can be passed for readers
/// that should not be consumed.
///
/// Distinguishes a clean close *between* frames ([`ReadMessageError::Closed`])
/// from truncation *inside* a frame (an [`ReadMessageError::Io`] with
/// `UnexpectedEof`).
///
/// # Errors
///
/// Returns [`ReadMessageError`] on stream failure, peer close, or a frame
/// that fails to decode.
pub fn read_message<R: Read>(mut reader: R) -> Result<Message, ReadMessageError> {
    // Header: magic(2) version(1) type(1) len(4).
    let mut header = [0u8; 8];
    match reader.read(&mut header)? {
        0 => return Err(ReadMessageError::Closed),
        n => reader.read_exact(&mut header[n..])?,
    }

    let declared = u32::from_be_bytes(
        header[4..8]
            .try_into()
            .expect("slice-length invariant: [4..8] is 4 bytes"),
    ) as usize;
    if declared > MAX_PAYLOAD_LEN {
        return Err(ReadMessageError::Decode(DecodeError::PayloadTooLarge {
            declared,
        }));
    }

    let mut frame = Vec::with_capacity(8 + declared);
    frame.extend_from_slice(&header);
    frame.resize(8 + declared, 0);
    reader.read_exact(&mut frame[8..])?;

    Ok(codec::decode(&frame)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::RejectCode;
    use std::io::Cursor;

    #[test]
    fn write_then_read_roundtrip() {
        let msgs = vec![
            Message::RequestResource { path: "/x".into() },
            Message::Ping { token: 3 },
            Message::Rejected {
                code: RejectCode::RateLimited,
                detail: "slow down".into(),
            },
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_message(&mut buf, m).unwrap();
        }
        let mut cursor = Cursor::new(buf);
        for m in &msgs {
            assert_eq!(&read_message(&mut cursor).unwrap(), m);
        }
        // Stream exhausted: clean close.
        assert!(matches!(
            read_message(&mut cursor),
            Err(ReadMessageError::Closed)
        ));
    }

    #[test]
    fn eof_mid_header_is_io_error() {
        let full = codec::encode(&Message::Ping { token: 9 });
        let mut cursor = Cursor::new(full[..5].to_vec());
        match read_message(&mut cursor) {
            Err(ReadMessageError::Io(e)) => {
                assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof)
            }
            other => panic!("expected io error, got {other:?}"),
        }
    }

    #[test]
    fn eof_mid_payload_is_io_error() {
        let full = codec::encode(&Message::RequestResource {
            path: "/abcdefgh".into(),
        });
        let mut cursor = Cursor::new(full[..full.len() - 3].to_vec());
        assert!(matches!(
            read_message(&mut cursor),
            Err(ReadMessageError::Io(_))
        ));
    }

    #[test]
    fn oversized_frame_rejected_before_allocation() {
        let mut header = Vec::new();
        header.extend_from_slice(&codec::MAGIC.to_be_bytes());
        header.push(codec::PROTOCOL_VERSION);
        header.push(6); // ping
        header.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut cursor = Cursor::new(header);
        assert!(matches!(
            read_message(&mut cursor),
            Err(ReadMessageError::Decode(
                DecodeError::PayloadTooLarge { .. }
            ))
        ));
    }

    #[test]
    fn garbage_magic_is_decode_error() {
        let mut bytes = codec::encode(&Message::Ping { token: 1 });
        bytes[0] = 0x00;
        bytes[1] = 0x01;
        let mut cursor = Cursor::new(bytes);
        assert!(matches!(
            read_message(&mut cursor),
            Err(ReadMessageError::Decode(DecodeError::BadMagic { .. }))
        ));
    }

    #[test]
    fn error_source_chain() {
        let e = ReadMessageError::Decode(DecodeError::Truncated);
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&ReadMessageError::Closed).is_none());
    }
}
