//! Binary wire protocol for the challenge exchange (paper Figure 1).
//!
//! The paper runs over HTTP; the exchange itself is carrier-agnostic, so
//! this crate defines a compact length-prefixed binary protocol for the
//! workspace's real TCP runtime (`aipow-net`):
//!
//! ```text
//! client                                server
//!   │ ── RequestResource ─────────────▶ │  (1) request
//!   │ ◀───────────── ChallengeIssued ── │  (2-4) score → policy → puzzle
//!   │ ── SubmitSolution ──────────────▶ │  (5) solved nonce
//!   │ ◀─────────────── ResourceGranted ─│  (6-7) verified → response
//!   │              or Rejected          │
//! ```
//!
//! Frames are `magic(2) ‖ version(1) ‖ type(1) ‖ len(4) ‖ payload(len)`,
//! big-endian, with a hard payload cap so a malicious peer cannot balloon
//! server memory.
//!
//! # Example
//!
//! ```
//! use aipow_wire::{Message, codec};
//! let msg = Message::RequestResource { path: "/index.html".into() };
//! let bytes = codec::encode(&msg);
//! assert_eq!(codec::decode(&bytes)?, msg);
//! # Ok::<(), aipow_wire::codec::DecodeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod framing;
pub mod message;

pub use codec::{decode, encode, DecodeError, MAX_PAYLOAD_LEN, PROTOCOL_VERSION};
pub use framing::{read_message, write_message, ReadMessageError};
pub use message::{Message, RejectCode};
