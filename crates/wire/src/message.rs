//! Protocol message types.

use aipow_pow::{BackendId, Challenge, NonceWidth};

/// Why the server rejected a request or solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum RejectCode {
    /// The submitted solution failed verification (wraps the verifier's
    /// reason as text in [`Message::Rejected::detail`]).
    InvalidSolution,
    /// The client exceeded its connection/request budget.
    RateLimited,
    /// The requested resource does not exist.
    NotFound,
    /// The server could not parse the client's message.
    Malformed,
    /// Internal server error.
    Internal,
    /// The peer speaks an incompatible protocol version (sent in reply
    /// to a [`Message::Hello`] whose version the server cannot serve).
    ProtocolMismatch,
    /// The server is at capacity: the connection was refused at accept
    /// time by the global or per-IP connection cap. Sent best-effort
    /// just before the server closes the socket, so a client can
    /// distinguish "come back later" from a network failure.
    ServerBusy,
}

impl RejectCode {
    /// Stable numeric code on the wire.
    pub fn as_u8(&self) -> u8 {
        match self {
            RejectCode::InvalidSolution => 1,
            RejectCode::RateLimited => 2,
            RejectCode::NotFound => 3,
            RejectCode::Malformed => 4,
            RejectCode::Internal => 5,
            RejectCode::ProtocolMismatch => 6,
            RejectCode::ServerBusy => 7,
        }
    }

    /// Parses a numeric code.
    pub fn from_u8(code: u8) -> Option<Self> {
        Some(match code {
            1 => RejectCode::InvalidSolution,
            2 => RejectCode::RateLimited,
            3 => RejectCode::NotFound,
            4 => RejectCode::Malformed,
            5 => RejectCode::Internal,
            6 => RejectCode::ProtocolMismatch,
            7 => RejectCode::ServerBusy,
            _ => return None,
        })
    }
}

impl core::fmt::Display for RejectCode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let text = match self {
            RejectCode::InvalidSolution => "invalid solution",
            RejectCode::RateLimited => "rate limited",
            RejectCode::NotFound => "resource not found",
            RejectCode::Malformed => "malformed message",
            RejectCode::Internal => "internal server error",
            RejectCode::ProtocolMismatch => "incompatible protocol version",
            RejectCode::ServerBusy => "server at connection capacity",
        };
        f.write_str(text)
    }
}

/// A protocol message.
///
/// The enum mirrors Figure 1 of the paper; see the crate docs for the
/// exchange sequence.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Message {
    /// Client → server: request a resource (Figure 1, step 1).
    RequestResource {
        /// Resource path, e.g. `/index.html`.
        path: String,
    },
    /// Server → client: the puzzle to solve (steps 2–4).
    ChallengeIssued {
        /// The authenticated challenge.
        challenge: Challenge,
        /// Echo of the requested path, so the client can correlate.
        path: String,
    },
    /// Client → server: a solved puzzle (step 5).
    SubmitSolution {
        /// The challenge being answered (echoed back verbatim).
        challenge: Challenge,
        /// The found nonce.
        nonce: u64,
        /// Width the nonce was hashed at.
        width: NonceWidth,
        /// The puzzle backend the client solved (must match the
        /// challenge's; the verifier rejects disagreements).
        backend: BackendId,
        /// The path originally requested.
        path: String,
    },
    /// Server → client: verified; here is the resource (steps 6–7).
    ResourceGranted {
        /// The granted path.
        path: String,
        /// Resource bytes.
        body: Vec<u8>,
    },
    /// Server → client: the request or solution was rejected.
    Rejected {
        /// Machine-readable reason.
        code: RejectCode,
        /// Human-readable detail.
        detail: String,
    },
    /// Liveness probe (either direction).
    Ping {
        /// Echo token.
        token: u64,
    },
    /// Liveness response.
    Pong {
        /// Echoed token.
        token: u64,
    },
    /// Client → server: ask for a live telemetry snapshot (empty
    /// payload). Served by the framework's metrics layer; costs the
    /// server one snapshot render, so it rides the same per-connection
    /// rate budget as resource requests.
    TelemetryRequest,
    /// Server → client: the snapshot, pre-rendered in both supported
    /// expositions so thin clients need no JSON parser.
    TelemetryReply {
        /// The snapshot as a single JSON object
        /// (`aipow_core::export::snapshot_json`).
        json: String,
        /// The snapshot in Prometheus text format
        /// (`aipow_core::export::snapshot_prometheus`).
        prometheus: String,
    },
    /// Version handshake (either direction). A client opens with its
    /// protocol version; the server echoes its own on agreement or
    /// replies [`Message::Rejected`] with
    /// [`RejectCode::ProtocolMismatch`]. Servers tolerate clients that
    /// skip the hello (pre-v2 peers cannot send one), but every frame
    /// still carries the version byte, so a skipped hello only defers
    /// the mismatch error to the first real frame.
    Hello {
        /// The sender's protocol version (`codec::PROTOCOL_VERSION`).
        version: u8,
    },
}

impl Message {
    /// Stable message-type discriminant on the wire.
    pub fn type_byte(&self) -> u8 {
        match self {
            Message::RequestResource { .. } => 1,
            Message::ChallengeIssued { .. } => 2,
            Message::SubmitSolution { .. } => 3,
            Message::ResourceGranted { .. } => 4,
            Message::Rejected { .. } => 5,
            Message::Ping { .. } => 6,
            Message::Pong { .. } => 7,
            Message::TelemetryRequest => 8,
            Message::TelemetryReply { .. } => 9,
            Message::Hello { .. } => 10,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_codes_roundtrip() {
        for code in [
            RejectCode::InvalidSolution,
            RejectCode::RateLimited,
            RejectCode::NotFound,
            RejectCode::Malformed,
            RejectCode::Internal,
            RejectCode::ProtocolMismatch,
            RejectCode::ServerBusy,
        ] {
            assert_eq!(RejectCode::from_u8(code.as_u8()), Some(code));
            assert!(!code.to_string().is_empty());
        }
        assert_eq!(RejectCode::from_u8(99), None);
        assert_eq!(RejectCode::from_u8(0), None);
    }

    #[test]
    fn type_bytes_are_distinct() {
        let msgs = [
            Message::RequestResource { path: "/".into() },
            Message::ResourceGranted {
                path: "/".into(),
                body: vec![],
            },
            Message::Rejected {
                code: RejectCode::NotFound,
                detail: String::new(),
            },
            Message::Ping { token: 0 },
            Message::Pong { token: 0 },
            Message::TelemetryRequest,
            Message::TelemetryReply {
                json: "{}".into(),
                prometheus: String::new(),
            },
            Message::Hello { version: 2 },
        ];
        let mut seen = std::collections::HashSet::new();
        for m in &msgs {
            assert!(seen.insert(m.type_byte()));
        }
    }

    #[test]
    fn telemetry_type_bytes_are_stable() {
        assert_eq!(Message::TelemetryRequest.type_byte(), 8);
        assert_eq!(
            Message::TelemetryReply {
                json: String::new(),
                prometheus: String::new(),
            }
            .type_byte(),
            9
        );
        assert_eq!(Message::Hello { version: 2 }.type_byte(), 10);
    }
}
