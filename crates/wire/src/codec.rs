//! Message encoding and decoding.
//!
//! All integers are big-endian. Variable-length fields carry a `u32`
//! length prefix. Every decoder validates lengths before allocating, and
//! the whole payload is capped at [`MAX_PAYLOAD_LEN`].

use crate::message::{Message, RejectCode};
use aipow_pow::{BackendId, Challenge, Difficulty, NonceWidth};
use bytes::{Buf, BufMut, BytesMut};
use core::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Frame magic: identifies aipow traffic and rejects stray peers early.
pub const MAGIC: u16 = 0xA1F0;

/// Protocol version encoded in every frame.
///
/// Version 2 added the puzzle-backend id and parameter bytes to encoded
/// challenges and solutions, plus the [`Message::Hello`] handshake. A v1
/// peer is rejected at decode with [`DecodeError::UnsupportedVersion`];
/// servers translate that into a [`RejectCode::ProtocolMismatch`] reply.
pub const PROTOCOL_VERSION: u8 = 2;

/// Upper bound on an encoded payload. Challenges and solutions are tiny;
/// resource bodies dominate. 1 MiB bounds per-connection memory.
pub const MAX_PAYLOAD_LEN: usize = 1 << 20;

/// Why a buffer failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// Frame does not start with [`MAGIC`].
    BadMagic {
        /// The observed leading bytes.
        got: u16,
    },
    /// Protocol version unknown to this build.
    UnsupportedVersion {
        /// The observed version byte.
        got: u8,
    },
    /// Unknown message-type byte.
    UnknownMessageType {
        /// The observed type byte.
        got: u8,
    },
    /// Payload shorter than its fields require.
    Truncated,
    /// Declared length exceeds [`MAX_PAYLOAD_LEN`].
    PayloadTooLarge {
        /// The declared length.
        declared: usize,
    },
    /// A string field was not valid UTF-8.
    InvalidUtf8,
    /// An IP address tag byte was neither 4 nor 6.
    InvalidIpTag {
        /// The observed tag.
        got: u8,
    },
    /// A difficulty byte exceeded 64.
    InvalidDifficulty {
        /// The observed difficulty.
        got: u8,
    },
    /// An unknown nonce-width byte.
    InvalidNonceWidth {
        /// The observed width byte.
        got: u8,
    },
    /// An unknown reject-code byte.
    InvalidRejectCode {
        /// The observed code.
        got: u8,
    },
    /// Bytes remained after the message was fully decoded.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic { got } => write!(f, "bad frame magic {got:#06x}"),
            DecodeError::UnsupportedVersion { got } => {
                write!(f, "unsupported protocol version {got}")
            }
            DecodeError::UnknownMessageType { got } => write!(f, "unknown message type {got}"),
            DecodeError::Truncated => write!(f, "message truncated"),
            DecodeError::PayloadTooLarge { declared } => {
                write!(
                    f,
                    "declared payload of {declared} bytes exceeds the maximum"
                )
            }
            DecodeError::InvalidUtf8 => write!(f, "string field is not valid utf-8"),
            DecodeError::InvalidIpTag { got } => write!(f, "invalid ip address tag {got}"),
            DecodeError::InvalidDifficulty { got } => write!(f, "invalid difficulty {got}"),
            DecodeError::InvalidNonceWidth { got } => write!(f, "invalid nonce width {got}"),
            DecodeError::InvalidRejectCode { got } => write!(f, "invalid reject code {got}"),
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after message")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes a message into a complete frame (header + payload).
pub fn encode(msg: &Message) -> Vec<u8> {
    let mut payload = BytesMut::new();
    match msg {
        Message::RequestResource { path } => put_str(&mut payload, path),
        Message::ChallengeIssued { challenge, path } => {
            put_challenge(&mut payload, challenge);
            put_str(&mut payload, path);
        }
        Message::SubmitSolution {
            challenge,
            nonce,
            width,
            backend,
            path,
        } => {
            put_challenge(&mut payload, challenge);
            payload.put_u64(*nonce);
            payload.put_u8(match width {
                NonceWidth::U32 => 4,
                NonceWidth::U64 => 8,
            });
            payload.put_u8(backend.as_u8());
            put_str(&mut payload, path);
        }
        Message::ResourceGranted { path, body } => {
            put_str(&mut payload, path);
            put_bytes(&mut payload, body);
        }
        Message::Rejected { code, detail } => {
            payload.put_u8(code.as_u8());
            put_str(&mut payload, detail);
        }
        Message::Ping { token } => payload.put_u64(*token),
        Message::Pong { token } => payload.put_u64(*token),
        Message::TelemetryRequest => {}
        Message::TelemetryReply { json, prometheus } => {
            put_str(&mut payload, json);
            put_str(&mut payload, prometheus);
        }
        Message::Hello { version } => payload.put_u8(*version),
    }

    let mut frame = BytesMut::with_capacity(8 + payload.len());
    frame.put_u16(MAGIC);
    frame.put_u8(PROTOCOL_VERSION);
    frame.put_u8(msg.type_byte());
    frame.put_u32(payload.len() as u32);
    frame.extend_from_slice(&payload);
    frame.to_vec()
}

/// Decodes a complete frame produced by [`encode`].
///
/// # Errors
///
/// Returns [`DecodeError`] for malformed, truncated, oversized, or
/// trailing-garbage input.
pub fn decode(frame: &[u8]) -> Result<Message, DecodeError> {
    let mut buf = frame;
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    let magic = buf.get_u16();
    if magic != MAGIC {
        return Err(DecodeError::BadMagic { got: magic });
    }
    let version = buf.get_u8();
    if version != PROTOCOL_VERSION {
        return Err(DecodeError::UnsupportedVersion { got: version });
    }
    let msg_type = buf.get_u8();
    let declared = buf.get_u32() as usize;
    if declared > MAX_PAYLOAD_LEN {
        return Err(DecodeError::PayloadTooLarge { declared });
    }
    if buf.remaining() < declared {
        return Err(DecodeError::Truncated);
    }
    if buf.remaining() > declared {
        return Err(DecodeError::TrailingBytes {
            remaining: buf.remaining() - declared,
        });
    }

    let msg = decode_payload(msg_type, &mut buf)?;
    if buf.has_remaining() {
        return Err(DecodeError::TrailingBytes {
            remaining: buf.remaining(),
        });
    }
    Ok(msg)
}

fn decode_payload(msg_type: u8, buf: &mut &[u8]) -> Result<Message, DecodeError> {
    match msg_type {
        1 => Ok(Message::RequestResource {
            path: get_str(buf)?,
        }),
        2 => Ok(Message::ChallengeIssued {
            challenge: get_challenge(buf)?,
            path: get_str(buf)?,
        }),
        3 => {
            let challenge = get_challenge(buf)?;
            let nonce = get_u64(buf)?;
            let width = match get_u8(buf)? {
                4 => NonceWidth::U32,
                8 => NonceWidth::U64,
                got => return Err(DecodeError::InvalidNonceWidth { got }),
            };
            // Any backend byte decodes; unregistered ids are rejected by
            // the verifier, not the codec.
            let backend = BackendId(get_u8(buf)?);
            let path = get_str(buf)?;
            Ok(Message::SubmitSolution {
                challenge,
                nonce,
                width,
                backend,
                path,
            })
        }
        4 => Ok(Message::ResourceGranted {
            path: get_str(buf)?,
            body: get_bytes(buf)?,
        }),
        5 => {
            let code_byte = get_u8(buf)?;
            let code = RejectCode::from_u8(code_byte)
                .ok_or(DecodeError::InvalidRejectCode { got: code_byte })?;
            Ok(Message::Rejected {
                code,
                detail: get_str(buf)?,
            })
        }
        6 => Ok(Message::Ping {
            token: get_u64(buf)?,
        }),
        7 => Ok(Message::Pong {
            token: get_u64(buf)?,
        }),
        8 => Ok(Message::TelemetryRequest),
        9 => Ok(Message::TelemetryReply {
            json: get_str(buf)?,
            prometheus: get_str(buf)?,
        }),
        10 => Ok(Message::Hello {
            version: get_u8(buf)?,
        }),
        got => Err(DecodeError::UnknownMessageType { got }),
    }
}

// --- field helpers ---------------------------------------------------------

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_bytes(buf: &mut BytesMut, b: &[u8]) {
    buf.put_u32(b.len() as u32);
    buf.put_slice(b);
}

fn put_ip(buf: &mut BytesMut, ip: IpAddr) {
    match ip {
        IpAddr::V4(v4) => {
            buf.put_u8(4);
            buf.put_slice(&v4.octets());
        }
        IpAddr::V6(v6) => {
            buf.put_u8(6);
            buf.put_slice(&v6.octets());
        }
    }
}

fn put_challenge(buf: &mut BytesMut, c: &Challenge) {
    buf.put_u8(c.version());
    buf.put_u8(c.backend().as_u8());
    buf.put_u8(c.backend_param());
    buf.put_slice(c.seed());
    buf.put_u64(c.issued_at_ms());
    buf.put_u64(c.ttl_ms());
    buf.put_u8(c.difficulty().bits());
    put_ip(buf, c.client_ip());
    buf.put_slice(c.tag());
}

fn get_u8(buf: &mut &[u8]) -> Result<u8, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_u8())
}

fn get_u64(buf: &mut &[u8]) -> Result<u64, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_u64())
}

fn get_str(buf: &mut &[u8]) -> Result<String, DecodeError> {
    let bytes = get_bytes(buf)?;
    String::from_utf8(bytes).map_err(|_| DecodeError::InvalidUtf8)
}

fn get_bytes(buf: &mut &[u8]) -> Result<Vec<u8>, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let len = buf.get_u32() as usize;
    if len > MAX_PAYLOAD_LEN {
        return Err(DecodeError::PayloadTooLarge { declared: len });
    }
    if buf.remaining() < len {
        return Err(DecodeError::Truncated);
    }
    let out = buf[..len].to_vec();
    buf.advance(len);
    Ok(out)
}

fn get_ip(buf: &mut &[u8]) -> Result<IpAddr, DecodeError> {
    match get_u8(buf)? {
        4 => {
            if buf.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            let mut octets = [0u8; 4];
            buf.copy_to_slice(&mut octets);
            Ok(IpAddr::V4(Ipv4Addr::from(octets)))
        }
        6 => {
            if buf.remaining() < 16 {
                return Err(DecodeError::Truncated);
            }
            let mut octets = [0u8; 16];
            buf.copy_to_slice(&mut octets);
            Ok(IpAddr::V6(Ipv6Addr::from(octets)))
        }
        got => Err(DecodeError::InvalidIpTag { got }),
    }
}

fn get_challenge(buf: &mut &[u8]) -> Result<Challenge, DecodeError> {
    let version = get_u8(buf)?;
    let backend = BackendId(get_u8(buf)?);
    let backend_param = get_u8(buf)?;
    if buf.remaining() < 16 {
        return Err(DecodeError::Truncated);
    }
    let mut seed = [0u8; 16];
    buf.copy_to_slice(&mut seed);
    let issued_at_ms = get_u64(buf)?;
    let ttl_ms = get_u64(buf)?;
    let difficulty_bits = get_u8(buf)?;
    let difficulty =
        Difficulty::new(difficulty_bits).map_err(|_| DecodeError::InvalidDifficulty {
            got: difficulty_bits,
        })?;
    let client_ip = get_ip(buf)?;
    if buf.remaining() < 32 {
        return Err(DecodeError::Truncated);
    }
    let mut tag = [0u8; 32];
    buf.copy_to_slice(&mut tag);
    Ok(Challenge::from_parts_backend(
        version,
        backend,
        backend_param,
        seed,
        issued_at_ms,
        ttl_ms,
        difficulty,
        client_ip,
        tag,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipow_pow::{Difficulty, Issuer};

    fn sample_challenge() -> Challenge {
        Issuer::new(&[5u8; 32]).issue(
            IpAddr::V4(Ipv4Addr::new(203, 0, 113, 9)),
            Difficulty::new(7).unwrap(),
        )
    }

    fn sample_memory_hard_challenge() -> Challenge {
        Issuer::new(&[5u8; 32])
            .with_backend_param(BackendId::MEMORY_HARD, 2)
            .issue_backend(
                IpAddr::V4(Ipv4Addr::new(203, 0, 113, 9)),
                Difficulty::new(7).unwrap(),
                BackendId::MEMORY_HARD,
            )
    }

    fn all_messages() -> Vec<Message> {
        vec![
            Message::RequestResource {
                path: "/index.html".into(),
            },
            Message::ChallengeIssued {
                challenge: sample_challenge(),
                path: "/a".into(),
            },
            Message::ChallengeIssued {
                challenge: sample_memory_hard_challenge(),
                path: "/mh".into(),
            },
            Message::SubmitSolution {
                challenge: sample_challenge(),
                nonce: 0xdead_beef_cafe,
                width: NonceWidth::U64,
                backend: BackendId::SHA256,
                path: "/a".into(),
            },
            Message::SubmitSolution {
                challenge: sample_memory_hard_challenge(),
                nonce: 42,
                width: NonceWidth::U32,
                backend: BackendId::MEMORY_HARD,
                path: String::new(),
            },
            Message::ResourceGranted {
                path: "/data".into(),
                body: vec![1, 2, 3, 255],
            },
            Message::Rejected {
                code: RejectCode::InvalidSolution,
                detail: "insufficient work".into(),
            },
            Message::Ping { token: 7 },
            Message::Pong { token: 7 },
            Message::TelemetryRequest,
            Message::TelemetryReply {
                json: "{\"challenges_issued\":3}".into(),
                prometheus: "# TYPE aipow_challenges_issued counter\naipow_challenges_issued 3\n"
                    .into(),
            },
            Message::Hello {
                version: PROTOCOL_VERSION,
            },
        ]
    }

    #[test]
    fn roundtrip_every_message_type() {
        for msg in all_messages() {
            let bytes = encode(&msg);
            let decoded = decode(&bytes).unwrap_or_else(|e| panic!("{msg:?}: {e}"));
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn ipv6_challenge_roundtrips() {
        let c = Issuer::new(&[6u8; 32])
            .issue(IpAddr::V6(Ipv6Addr::LOCALHOST), Difficulty::new(3).unwrap());
        let msg = Message::ChallengeIssued {
            challenge: c,
            path: "/v6".into(),
        };
        assert_eq!(decode(&encode(&msg)).unwrap(), msg);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode(&Message::Ping { token: 1 });
        bytes[0] = 0;
        assert!(matches!(decode(&bytes), Err(DecodeError::BadMagic { .. })));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode(&Message::Ping { token: 1 });
        bytes[2] = 99;
        assert_eq!(
            decode(&bytes),
            Err(DecodeError::UnsupportedVersion { got: 99 })
        );
    }

    #[test]
    fn unknown_type_rejected() {
        let mut bytes = encode(&Message::Ping { token: 1 });
        bytes[3] = 200;
        assert_eq!(
            decode(&bytes),
            Err(DecodeError::UnknownMessageType { got: 200 })
        );
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        let bytes = encode(&Message::SubmitSolution {
            challenge: sample_challenge(),
            nonce: 1,
            width: NonceWidth::U64,
            backend: BackendId::SHA256,
            path: "/p".into(),
        });
        for cut in 0..bytes.len() {
            let result = decode(&bytes[..cut]);
            assert!(
                result.is_err(),
                "decode of {cut}/{} bytes unexpectedly succeeded",
                bytes.len()
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode(&Message::Ping { token: 1 });
        bytes.push(0);
        assert!(matches!(
            decode(&bytes),
            Err(DecodeError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn oversized_declared_payload_rejected() {
        let mut bytes = encode(&Message::Ping { token: 1 });
        // Overwrite the length field with something enormous.
        bytes[4..8].copy_from_slice(&(MAX_PAYLOAD_LEN as u32 + 1).to_be_bytes());
        assert!(matches!(
            decode(&bytes),
            Err(DecodeError::PayloadTooLarge { .. })
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut bytes = encode(&Message::RequestResource {
            path: "abcd".into(),
        });
        let len = bytes.len();
        bytes[len - 2] = 0xff; // corrupt a path byte into invalid UTF-8
        bytes[len - 1] = 0xfe;
        assert_eq!(decode(&bytes), Err(DecodeError::InvalidUtf8));
    }

    #[test]
    fn invalid_difficulty_rejected() {
        let msg = Message::ChallengeIssued {
            challenge: sample_challenge(),
            path: String::new(),
        };
        let mut bytes = encode(&msg);
        // Difficulty byte position: header(8) + version(1) + backend(1) +
        // param(1) + seed(16) + issued(8) + ttl(8) = offset 43.
        bytes[43] = 99;
        assert_eq!(
            decode(&bytes),
            Err(DecodeError::InvalidDifficulty { got: 99 })
        );
    }

    #[test]
    fn invalid_reject_code_rejected() {
        let mut bytes = encode(&Message::Rejected {
            code: RejectCode::NotFound,
            detail: String::new(),
        });
        bytes[8] = 77;
        assert_eq!(
            decode(&bytes),
            Err(DecodeError::InvalidRejectCode { got: 77 })
        );
    }

    #[test]
    fn invalid_nonce_width_rejected() {
        let msg = Message::SubmitSolution {
            challenge: sample_challenge(),
            nonce: 1,
            width: NonceWidth::U64,
            backend: BackendId::SHA256,
            path: String::new(),
        };
        let mut bytes = encode(&msg);
        // width byte sits after challenge (1+1+1+16+8+8+1+5+32 = 73) +
        // nonce(8) + header(8) = offset 89.
        bytes[89] = 3;
        assert_eq!(
            decode(&bytes),
            Err(DecodeError::InvalidNonceWidth { got: 3 })
        );
    }

    #[test]
    fn error_displays_nonempty() {
        let errors = [
            DecodeError::BadMagic { got: 0 },
            DecodeError::Truncated,
            DecodeError::InvalidUtf8,
            DecodeError::TrailingBytes { remaining: 3 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        prop_compose! {
            fn arb_challenge()(
                version in any::<u8>(),
                backend in any::<u8>(),
                backend_param in any::<u8>(),
                seed in any::<[u8; 16]>(),
                issued_at_ms in any::<u64>(),
                ttl_ms in any::<u64>(),
                bits in 0u8..=64,
                v6 in any::<bool>(),
                octets in any::<[u8; 16]>(),
                tag in any::<[u8; 32]>(),
            ) -> Challenge {
                let ip = if v6 {
                    IpAddr::V6(Ipv6Addr::from(octets))
                } else {
                    IpAddr::V4(Ipv4Addr::new(octets[0], octets[1], octets[2], octets[3]))
                };
                Challenge::from_parts_backend(
                    version,
                    BackendId(backend),
                    backend_param,
                    seed,
                    issued_at_ms,
                    ttl_ms,
                    Difficulty::new(bits).expect("bits in range"),
                    ip,
                    tag,
                )
            }
        }

        fn arb_message() -> impl Strategy<Value = Message> {
            let path = "[a-z/._-]{0,40}";
            prop_oneof![
                path.prop_map(|path| Message::RequestResource { path }),
                (arb_challenge(), path)
                    .prop_map(|(challenge, path)| { Message::ChallengeIssued { challenge, path } }),
                (
                    arb_challenge(),
                    any::<u64>(),
                    any::<bool>(),
                    any::<u8>(),
                    path
                )
                    .prop_map(|(challenge, nonce, wide, backend, path)| {
                        Message::SubmitSolution {
                            challenge,
                            nonce: if wide { nonce } else { nonce & 0xFFFF_FFFF },
                            width: if wide {
                                NonceWidth::U64
                            } else {
                                NonceWidth::U32
                            },
                            backend: BackendId(backend),
                            path,
                        }
                    }),
                (path, proptest::collection::vec(any::<u8>(), 0..256))
                    .prop_map(|(path, body)| Message::ResourceGranted { path, body }),
                (1u8..=7, path).prop_map(|(c, detail)| Message::Rejected {
                    code: RejectCode::from_u8(c).unwrap(),
                    detail,
                }),
                any::<u64>().prop_map(|token| Message::Ping { token }),
                any::<u64>().prop_map(|token| Message::Pong { token }),
                Just(Message::TelemetryRequest),
                ("[ -~]{0,200}", "[ -~]{0,200}").prop_map(|(json, prometheus)| {
                    Message::TelemetryReply { json, prometheus }
                }),
                any::<u8>().prop_map(|version| Message::Hello { version }),
            ]
        }

        proptest! {
            #[test]
            fn roundtrip(msg in arb_message()) {
                prop_assert_eq!(decode(&encode(&msg)).unwrap(), msg);
            }

            /// Arbitrary garbage never panics the decoder.
            #[test]
            fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
                let _ = decode(&bytes);
            }

            /// Any single-byte corruption either still decodes (benign
            /// positions like body contents) or fails cleanly — never panics.
            #[test]
            fn corruption_never_panics(token in any::<u64>(), idx in 0usize..16, val in any::<u8>()) {
                let mut bytes = encode(&Message::Ping { token });
                let i = idx % bytes.len();
                bytes[i] = val;
                let _ = decode(&bytes);
            }
        }
    }
}
