//! The tracer: trace-ID allotment, sampling, sharded span recording, and
//! the flight-recorder front door.

use crate::recorder::{FlightDump, FlightRecorder, TriggerConfig, TriggerStats};
use crate::ring::SpanRing;
use crate::span::SpanEvent;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Construction-time knobs for a [`Tracer`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceConfig {
    /// Sample 1 in `sample_every` requests (1 = every request). 0 disables
    /// sampling entirely; only forced traces are recorded.
    pub sample_every: u64,
    /// Total span capacity across all ring shards (the flight-recorder
    /// window: how far back a dump can see).
    pub ring_capacity: usize,
    /// Number of ring shards; rounded up to a power of two. One trace's
    /// spans always land in one shard, in emission order.
    pub shards: usize,
    /// Automatic flight-recorder trip thresholds.
    pub triggers: TriggerConfig,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            sample_every: 64,
            ring_capacity: 4_096,
            shards: 8,
            triggers: TriggerConfig::default(),
        }
    }
}

/// The process-wide tracing hub.
///
/// All emission-path methods are lock-free or `try_lock`-only: a recorder
/// never blocks, it drops the span and counts the drop. Everything heavier
/// (snapshots, dumps) lives behind the flight recorder and is explicitly
/// off the admission path.
pub struct Tracer {
    sample_every: u64,
    shard_mask: u64,
    sample_clock: AtomicU64,
    next_id: AtomicU64,
    epoch: Instant,
    rings: Vec<SpanRing>,
    recorded: AtomicU64,
    dropped: AtomicU64,
    flight: FlightRecorder,
}

impl Tracer {
    /// Builds a tracer. Ring memory (`ring_capacity` spans, 64 B each) is
    /// reserved up front so the emission path never allocates.
    pub fn new(config: TraceConfig) -> Self {
        let shards = config.shards.max(1).next_power_of_two();
        let per_shard = (config.ring_capacity / shards).max(1);
        Tracer {
            sample_every: config.sample_every,
            shard_mask: shards as u64 - 1,
            sample_clock: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            epoch: Instant::now(),
            rings: (0..shards).map(|_| SpanRing::new(per_shard)).collect(),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            flight: FlightRecorder::new(config.triggers),
        }
    }

    /// The configured 1-in-N sampling rate.
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Decides whether the next request is sampled; returns a fresh
    /// nonzero trace ID if so, 0 (untraced) otherwise.
    pub fn begin_trace(&self) -> u64 {
        if self.sample_every == 0 {
            return 0;
        }
        // relaxed: the clock is a statistical sampler, not a
        // synchronization point; ties across threads only shift which
        // request is sampled.
        let tick = self.sample_clock.fetch_add(1, Ordering::Relaxed);
        if tick.is_multiple_of(self.sample_every) {
            self.next_trace_id()
        } else {
            0
        }
    }

    /// Allocates a trace ID unconditionally — for spans that must always
    /// be recorded (online-loop decisions, scenario harnesses).
    pub fn begin_trace_forced(&self) -> u64 {
        self.next_trace_id()
    }

    fn next_trace_id(&self) -> u64 {
        // relaxed: IDs only need uniqueness, which fetch_add provides.
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Nanoseconds between the tracer's epoch and `instant`.
    pub fn ns_since_epoch(&self, instant: Instant) -> u64 {
        instant.saturating_duration_since(self.epoch).as_nanos() as u64
    }

    /// Nanoseconds since the tracer's epoch, right now.
    pub fn now_ns(&self) -> u64 {
        self.ns_since_epoch(Instant::now())
    }

    /// Records a span. Spans with `trace_id == 0` (unsampled) are ignored;
    /// spans that lose the shard `try_lock` race are dropped and counted.
    pub fn record(&self, span: SpanEvent) {
        if span.trace_id == 0 {
            return;
        }
        let shard = (span.trace_id & self.shard_mask) as usize;
        // relaxed: drop/record tallies are monitoring cells.
        if self.rings[shard].try_push(span) {
            self.recorded.fetch_add(1, Ordering::Relaxed); // relaxed: monitoring tally
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed); // relaxed: monitoring tally
        }
    }

    /// Spans successfully recorded since construction.
    pub fn recorded(&self) -> u64 {
        // relaxed: monitoring read.
        self.recorded.load(Ordering::Relaxed)
    }

    /// Spans dropped to shard contention since construction.
    pub fn dropped(&self) -> u64 {
        // relaxed: monitoring read.
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copies every ring's current contents, shard by shard, each shard in
    /// emission order. Blocking (snapshot path, not emission).
    pub fn spans(&self) -> Vec<SpanEvent> {
        let mut all = Vec::new();
        for ring in &self.rings {
            all.extend(ring.snapshot());
        }
        all
    }

    /// Whether the flight recorder has tripped.
    pub fn flight_tripped(&self) -> bool {
        self.flight.tripped()
    }

    /// Trips the flight recorder now (e.g. on an under-attack flip),
    /// freezing the current ring contents. Returns `false` if already
    /// tripped.
    pub fn trip_flight_recorder(&self, reason: &str) -> bool {
        let spans = self.spans();
        self.flight.trip(reason, &spans)
    }

    /// Feeds the threshold triggers one reading; trips and returns the
    /// reason if a threshold is breached (and the latch was free).
    pub fn check_triggers(&self, stats: &TriggerStats) -> Option<&'static str> {
        let reason = self.flight.breached(stats)?;
        if self.trip_flight_recorder(reason) {
            Some(reason)
        } else {
            None
        }
    }

    /// The frozen dump, if the recorder has tripped.
    pub fn flight_dump(&self) -> Option<FlightDump> {
        self.flight.dump()
    }
}

impl core::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Tracer")
            .field("sample_every", &self.sample_every)
            .field("shards", &self.rings.len())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .field("flight_tripped", &self.flight_tripped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace_id: u64, slot: u8) -> SpanEvent {
        let mut s = SpanEvent::empty();
        s.trace_id = trace_id;
        s.slot = slot;
        s
    }

    #[test]
    fn sampling_rate_is_one_in_n() {
        let tracer = Tracer::new(TraceConfig {
            sample_every: 4,
            ..TraceConfig::default()
        });
        let sampled = (0..100).filter(|_| tracer.begin_trace() != 0).count();
        assert_eq!(sampled, 25);
    }

    #[test]
    fn sample_every_zero_disables_sampling() {
        let tracer = Tracer::new(TraceConfig {
            sample_every: 0,
            ..TraceConfig::default()
        });
        assert!((0..50).all(|_| tracer.begin_trace() == 0));
        assert_ne!(tracer.begin_trace_forced(), 0, "forced traces still work");
    }

    #[test]
    fn trace_ids_are_distinct_and_nonzero() {
        let tracer = Tracer::new(TraceConfig {
            sample_every: 1,
            ..TraceConfig::default()
        });
        let ids: Vec<u64> = (0..64).map(|_| tracer.begin_trace()).collect();
        let mut unique = ids.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), ids.len());
        assert!(ids.iter().all(|&id| id != 0));
    }

    #[test]
    fn unsampled_spans_are_ignored() {
        let tracer = Tracer::new(TraceConfig::default());
        tracer.record(span(0, 0));
        assert_eq!(tracer.recorded(), 0);
        assert!(tracer.spans().is_empty());
    }

    #[test]
    fn one_trace_lands_in_one_shard_in_order() {
        let tracer = Tracer::new(TraceConfig {
            sample_every: 1,
            ring_capacity: 1_024,
            shards: 8,
            triggers: TriggerConfig::default(),
        });
        for slot in 0..5u8 {
            tracer.record(span(13, slot));
        }
        let spans = tracer.spans();
        let slots: Vec<u8> = spans
            .iter()
            .filter(|s| s.trace_id == 13)
            .map(|s| s.slot)
            .collect();
        assert_eq!(slots, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn under_attack_trip_freezes_current_spans() {
        let tracer = Tracer::new(TraceConfig {
            sample_every: 1,
            ..TraceConfig::default()
        });
        tracer.record(span(1, 0));
        tracer.record(span(1, 1));
        assert!(tracer.trip_flight_recorder("under_attack"));
        tracer.record(span(2, 0)); // after the freeze; not in the dump
        let dump = tracer.flight_dump().expect("dump after trip");
        assert_eq!(dump.reason, "under_attack");
        assert_eq!(dump.spans, 2);
        assert!(!tracer.trip_flight_recorder("rejection_rate"));
    }

    #[test]
    fn trigger_check_trips_once() {
        let tracer = Tracer::new(TraceConfig {
            sample_every: 1,
            triggers: TriggerConfig {
                max_rejections_per_s: 10.0,
                max_stage_p99_ns: 0,
            },
            ..TraceConfig::default()
        });
        let quiet = TriggerStats {
            rejections_per_s: 1.0,
            worst_stage_p99_ns: 0,
        };
        let noisy = TriggerStats {
            rejections_per_s: 100.0,
            worst_stage_p99_ns: 0,
        };
        assert_eq!(tracer.check_triggers(&quiet), None);
        assert!(!tracer.flight_tripped());
        assert_eq!(tracer.check_triggers(&noisy), Some("rejection_rate"));
        assert!(tracer.flight_tripped());
        assert_eq!(tracer.check_triggers(&noisy), None, "latched");
    }

    #[test]
    fn concurrent_recording_accounts_for_every_span() {
        use std::sync::Arc;
        let tracer = Arc::new(Tracer::new(TraceConfig {
            sample_every: 1,
            ring_capacity: 64, // small: forces eviction, not loss of count
            shards: 4,
            triggers: TriggerConfig::default(),
        }));
        let threads = 4;
        let per_thread = 5_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let tracer = Arc::clone(&tracer);
                s.spawn(move || {
                    for i in 0..per_thread {
                        tracer.record(span(t * per_thread + i + 1, 0));
                    }
                });
            }
        });
        assert_eq!(
            tracer.recorded() + tracer.dropped(),
            threads * per_thread,
            "every record call must be tallied exactly once"
        );
    }
}
