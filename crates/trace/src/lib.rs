//! Request-scoped tracing for the admission pipeline.
//!
//! The framework's aggregate counters say *how much* happened; this crate
//! says *what happened to one request*. Three pieces:
//!
//! - [`SpanEvent`] — a 64-byte `Copy` record of one pipeline stage's work
//!   on one request: trace ID, client, stage, difficulty, verdict,
//!   nanosecond timing.
//! - [`Tracer`] — allots request-scoped trace IDs (1-in-N sampled, so the
//!   steady-state overhead is a `fetch_add` and a branch per request) and
//!   records spans into sharded bounded rings. The emission path never
//!   blocks: shards are selected by trace ID, appended under `try_lock`,
//!   and a lost race drops the span and bumps a counter.
//! - The **flight recorder** — a one-shot latch that freezes the rings
//!   into a JSON-lines dump when an anomaly trigger fires: the framework's
//!   under-attack flip, a rejection-rate spike, or a stage-p99 breach
//!   ([`TriggerConfig`]).
//!
//! Like every dependency in this workspace, there are no external crates
//! behind this: the ring, sampler, and JSONL renderer are self-contained.
//!
//! # Example
//!
//! ```
//! use aipow_trace::{SpanEvent, TraceConfig, Tracer};
//!
//! let tracer = Tracer::new(TraceConfig { sample_every: 1, ..TraceConfig::default() });
//! let id = tracer.begin_trace();
//! assert_ne!(id, 0);
//! let mut span = SpanEvent::empty();
//! span.trace_id = id;
//! span.stage = "score";
//! span.slot = 0;
//! tracer.record(span);
//! assert_eq!(tracer.recorded(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod recorder;
mod ring;
pub mod span;
pub mod tracer;

pub use recorder::{FlightDump, TriggerConfig, TriggerStats};
pub use span::SpanEvent;
pub use tracer::{TraceConfig, Tracer};
