//! The anomaly flight recorder: trigger thresholds, the trip latch, and
//! the frozen JSON-lines dump.

use crate::span::SpanEvent;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};

/// Thresholds that trip the flight recorder automatically.
///
/// The under-attack flip is wired directly by the framework and needs no
/// threshold; the two rate-shaped triggers are evaluated against these
/// bounds every time trigger stats are fed in (typically once per metrics
/// snapshot).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TriggerConfig {
    /// Trip when total rejections per second exceed this. 0.0 disables.
    pub max_rejections_per_s: f64,
    /// Trip when any stage's p99 latency exceeds this many nanoseconds.
    /// 0 disables.
    pub max_stage_p99_ns: u64,
}

impl Default for TriggerConfig {
    fn default() -> Self {
        TriggerConfig {
            max_rejections_per_s: 50.0,
            max_stage_p99_ns: 0,
        }
    }
}

/// A point-in-time reading of the signals the triggers watch.
#[derive(Clone, Copy, Debug, Default)]
pub struct TriggerStats {
    /// Total solution rejections per second (replay + rate-limit + verify
    /// failures) since the previous reading.
    pub rejections_per_s: f64,
    /// The worst per-stage p99 latency in the current snapshot.
    pub worst_stage_p99_ns: u64,
}

/// The frozen forensic record produced when a trigger fires.
#[derive(Clone, Debug)]
pub struct FlightDump {
    /// Which trigger fired (`under_attack`, `rejection_rate`, `stage_p99`,
    /// or a caller-supplied reason).
    pub reason: String,
    /// One JSON object per line, one line per span, in per-shard emission
    /// order — the contents of every ring at trip time.
    pub jsonl: String,
    /// Number of spans captured in `jsonl`.
    pub spans: usize,
}

/// One-shot trip latch plus the dump store.
///
/// The first trigger to fire wins; later trips are ignored so the dump
/// always describes the *onset* of the anomaly, not its aftermath. Only
/// the trip/dump paths lock — both are off the admission path.
pub(crate) struct FlightRecorder {
    tripped: AtomicBool,
    dump: Mutex<Option<FlightDump>>,
    triggers: TriggerConfig,
}

impl FlightRecorder {
    pub(crate) fn new(triggers: TriggerConfig) -> Self {
        FlightRecorder {
            tripped: AtomicBool::new(false),
            dump: Mutex::new(None),
            triggers,
        }
    }

    pub(crate) fn tripped(&self) -> bool {
        // relaxed: monitoring read; dump() acquires the mutex, which
        // orders the actual payload.
        self.tripped.load(Ordering::Relaxed)
    }

    /// Latches the recorder and freezes `spans` into the dump. Returns
    /// `false` if a previous trip already holds the latch.
    pub(crate) fn trip(&self, reason: &str, spans: &[SpanEvent]) -> bool {
        if self.tripped.swap(true, Ordering::AcqRel) {
            return false;
        }
        let mut jsonl = String::with_capacity(spans.len() * 160);
        for span in spans {
            jsonl.push_str(&span.to_jsonl());
            jsonl.push('\n');
        }
        *self.dump.lock() = Some(FlightDump {
            reason: reason.to_string(),
            jsonl,
            spans: spans.len(),
        });
        true
    }

    /// Evaluates the threshold triggers; returns the reason that should
    /// trip, if any. The caller owns collecting spans and calling
    /// [`FlightRecorder::trip`] (it has ring access; we do not).
    pub(crate) fn breached(&self, stats: &TriggerStats) -> Option<&'static str> {
        if self.tripped() {
            return None;
        }
        let t = &self.triggers;
        if t.max_rejections_per_s > 0.0 && stats.rejections_per_s > t.max_rejections_per_s {
            return Some("rejection_rate");
        }
        if t.max_stage_p99_ns > 0 && stats.worst_stage_p99_ns > t.max_stage_p99_ns {
            return Some("stage_p99");
        }
        None
    }

    pub(crate) fn dump(&self) -> Option<FlightDump> {
        self.dump.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_trip_wins() {
        let rec = FlightRecorder::new(TriggerConfig::default());
        let span = SpanEvent::empty();
        assert!(rec.trip("under_attack", &[span]));
        assert!(!rec.trip("rejection_rate", &[span, span]));
        let dump = rec.dump().expect("dump present after trip");
        assert_eq!(dump.reason, "under_attack");
        assert_eq!(dump.spans, 1);
    }

    #[test]
    fn rejection_rate_threshold_breaches() {
        let rec = FlightRecorder::new(TriggerConfig {
            max_rejections_per_s: 10.0,
            max_stage_p99_ns: 0,
        });
        assert_eq!(
            rec.breached(&TriggerStats {
                rejections_per_s: 5.0,
                worst_stage_p99_ns: u64::MAX,
            }),
            None,
            "disabled p99 trigger must not fire"
        );
        assert_eq!(
            rec.breached(&TriggerStats {
                rejections_per_s: 11.0,
                worst_stage_p99_ns: 0,
            }),
            Some("rejection_rate")
        );
    }

    #[test]
    fn stage_p99_threshold_breaches() {
        let rec = FlightRecorder::new(TriggerConfig {
            max_rejections_per_s: 0.0,
            max_stage_p99_ns: 1_000,
        });
        assert_eq!(
            rec.breached(&TriggerStats {
                rejections_per_s: f64::MAX,
                worst_stage_p99_ns: 999,
            }),
            None,
            "disabled rejection trigger must not fire"
        );
        assert_eq!(
            rec.breached(&TriggerStats {
                rejections_per_s: 0.0,
                worst_stage_p99_ns: 1_001,
            }),
            Some("stage_p99")
        );
    }

    #[test]
    fn breached_goes_quiet_after_trip() {
        let rec = FlightRecorder::new(TriggerConfig {
            max_rejections_per_s: 1.0,
            max_stage_p99_ns: 0,
        });
        let stats = TriggerStats {
            rejections_per_s: 100.0,
            worst_stage_p99_ns: 0,
        };
        assert!(rec.breached(&stats).is_some());
        rec.trip("rejection_rate", &[]);
        assert_eq!(rec.breached(&stats), None);
    }

    #[test]
    fn dump_is_one_json_object_per_line() {
        let rec = FlightRecorder::new(TriggerConfig::default());
        let mut a = SpanEvent::empty();
        a.trace_id = 1;
        a.stage = "score";
        let mut b = SpanEvent::empty();
        b.trace_id = 2;
        b.stage = "verify";
        rec.trip("under_attack", &[a, b]);
        let dump = rec.dump().expect("dump");
        let lines: Vec<&str> = dump.jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }
}
