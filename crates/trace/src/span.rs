//! The structured event every instrumented site emits.

use std::net::{IpAddr, Ipv4Addr};

/// One stage of one request's journey through the pipeline.
///
/// A span is a plain `Copy` struct — no allocation on the emission path.
/// The stage name and verdict are `&'static str` because every emission
/// site names a compile-time-known stage and outcome; this keeps the event
/// 64 bytes and the ring buffer allocation-free after startup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Request-scoped trace identifier (never 0 for a recorded span;
    /// 0 marks an unsampled context and is dropped by the tracer).
    pub trace_id: u64,
    /// The client the framework attributed this work to.
    pub client_ip: IpAddr,
    /// Pipeline stage name (one of `aipow_core::STAGE_NAMES`, or a
    /// non-pipeline site such as `online_sweep`).
    pub stage: &'static str,
    /// Pipeline slot index; 255 for non-pipeline emission sites.
    pub slot: u8,
    /// Number of contexts in the batch this stage invocation processed.
    pub batch_len: u32,
    /// Stage start, nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// Stage duration in nanoseconds (whole-batch wall time).
    pub duration_ns: u64,
    /// Difficulty bits attached to the context, if decided yet (-1 = none).
    pub difficulty_bits: i16,
    /// Outcome as known after this stage: `pending`, `bypass`,
    /// `challenge`, `accept`, or a rejection reason label.
    pub verdict: &'static str,
}

impl SpanEvent {
    /// A placeholder event for buffer pre-sizing and tests.
    pub fn empty() -> Self {
        SpanEvent {
            trace_id: 0,
            client_ip: IpAddr::V4(Ipv4Addr::UNSPECIFIED),
            stage: "",
            slot: 255,
            batch_len: 0,
            start_ns: 0,
            duration_ns: 0,
            difficulty_bits: -1,
            verdict: "pending",
        }
    }

    /// Renders the span as one JSON object on one line (the flight-dump
    /// format). Hand-rolled: every field is numeric, an IP address, or a
    /// static identifier, so no string escaping is required.
    pub fn to_jsonl(&self) -> String {
        let mut line = String::with_capacity(160);
        line.push_str("{\"trace_id\":");
        line.push_str(&self.trace_id.to_string());
        line.push_str(",\"ip\":\"");
        line.push_str(&self.client_ip.to_string());
        line.push_str("\",\"stage\":\"");
        line.push_str(self.stage);
        line.push_str("\",\"slot\":");
        line.push_str(&self.slot.to_string());
        line.push_str(",\"batch\":");
        line.push_str(&self.batch_len.to_string());
        line.push_str(",\"start_ns\":");
        line.push_str(&self.start_ns.to_string());
        line.push_str(",\"duration_ns\":");
        line.push_str(&self.duration_ns.to_string());
        line.push_str(",\"difficulty\":");
        if self.difficulty_bits >= 0 {
            line.push_str(&self.difficulty_bits.to_string());
        } else {
            line.push_str("null");
        }
        line.push_str(",\"verdict\":\"");
        line.push_str(self.verdict);
        line.push_str("\"}");
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_round_trips_key_fields() {
        let mut span = SpanEvent::empty();
        span.trace_id = 42;
        span.client_ip = IpAddr::V4(Ipv4Addr::new(203, 0, 113, 9));
        span.stage = "score";
        span.slot = 0;
        span.batch_len = 32;
        span.start_ns = 123;
        span.duration_ns = 456;
        span.difficulty_bits = 8;
        span.verdict = "challenge";
        let line = span.to_jsonl();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"trace_id\":42"));
        assert!(line.contains("\"ip\":\"203.0.113.9\""));
        assert!(line.contains("\"stage\":\"score\""));
        assert!(line.contains("\"difficulty\":8"));
        assert!(line.contains("\"verdict\":\"challenge\""));
    }

    #[test]
    fn missing_difficulty_renders_null() {
        let line = SpanEvent::empty().to_jsonl();
        assert!(line.contains("\"difficulty\":null"));
    }
}
