//! Bounded per-shard span storage.
//!
//! Each shard is a mutex-guarded ring, but the *emission* path only ever
//! uses `try_lock`: a recorder that loses the race drops the span and bumps
//! a counter instead of blocking the admission path. Spans for one trace
//! all hash to the same shard, so within-shard order is exactly emission
//! order — which is what makes flight-recorder dumps correlatable.

use crate::span::SpanEvent;
use parking_lot::Mutex;
use std::collections::VecDeque;

/// One bounded ring of spans. The oldest span is evicted on overflow.
pub(crate) struct SpanRing {
    slots: Mutex<VecDeque<SpanEvent>>,
    capacity: usize,
}

impl SpanRing {
    pub(crate) fn new(capacity: usize) -> Self {
        SpanRing {
            slots: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity: capacity.max(1),
        }
    }

    /// Attempts to append without blocking. Returns `false` (span dropped)
    /// if the shard is momentarily contended.
    pub(crate) fn try_push(&self, span: SpanEvent) -> bool {
        match self.slots.try_lock() {
            Some(mut slots) => {
                if slots.len() >= self.capacity {
                    slots.pop_front();
                }
                slots.push_back(span);
                true
            }
            None => false,
        }
    }

    /// Copies the current contents in emission order. Blocking is fine
    /// here: snapshots serve dumps and tests, never the admission path.
    pub(crate) fn snapshot(&self) -> Vec<SpanEvent> {
        // lint:allow(trace-blocking) dump/snapshot path, not a span emission site
        self.slots.lock().iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace_id: u64, slot: u8) -> SpanEvent {
        let mut s = SpanEvent::empty();
        s.trace_id = trace_id;
        s.slot = slot;
        s
    }

    #[test]
    fn ring_evicts_oldest_on_overflow() {
        let ring = SpanRing::new(3);
        for i in 1..=5u64 {
            assert!(ring.try_push(span(i, 0)));
        }
        let spans = ring.snapshot();
        assert_eq!(
            spans.iter().map(|s| s.trace_id).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
    }

    #[test]
    fn ring_preserves_emission_order() {
        let ring = SpanRing::new(16);
        for slot in 0..5u8 {
            ring.try_push(span(7, slot));
        }
        let slots: Vec<u8> = ring.snapshot().iter().map(|s| s.slot).collect();
        assert_eq!(slots, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let ring = SpanRing::new(0);
        assert!(ring.try_push(span(1, 0)));
        assert_eq!(ring.snapshot().len(), 1);
    }
}
