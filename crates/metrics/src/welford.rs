//! Numerically stable streaming moments (Welford's algorithm).
//!
//! Used where the simulator must track means/variances over millions of
//! events without storing them, e.g. per-client solve-attempt counts.

/// Streaming mean/variance accumulator.
///
/// ```
/// use aipow_metrics::OnlineStats;
/// let mut s = OnlineStats::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     s.push(v);
/// }
/// assert_eq!(s.mean(), 2.5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    /// Sum of squared deviations from the running mean (Welford's M2).
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn push(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot push NaN observation");
        self.n += 1;
        let delta = value - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n−1); `None` with fewer than two observations.
    pub fn variance(&self) -> Option<f64> {
        if self.n < 2 {
            None
        } else {
            Some(self.m2 / (self.n - 1) as f64)
        }
    }

    /// Sample standard deviation; `None` with fewer than two observations.
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest observation, `None` if empty.
    pub fn min(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest observation, `None` if empty.
    pub fn max(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Merges another accumulator (Chan et al. parallel combination).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let total = self.n + other.n;
        let delta = other.mean - self.mean;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / total as f64;
        self.mean += delta * other.n as f64 / total as f64;
        self.n = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_known() {
        let mut s = OnlineStats::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(v);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_behaviour() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_observation() {
        let mut s = OnlineStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), None);
        assert_eq!(s.min(), Some(42.0));
        assert_eq!(s.max(), Some(42.0));
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 100.0).collect();
        let mut all = OnlineStats::new();
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for (i, &v) in data.iter().enumerate() {
            all.push(v);
            if i < 37 {
                left.push(v);
            } else {
                right.push(v);
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance().unwrap() - all.variance().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = OnlineStats::new();
        s.push(1.0);
        s.push(3.0);
        let before = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        OnlineStats::new().push(f64::NAN);
    }

    /// Welford must stay stable where the naive sum-of-squares cancels
    /// catastrophically.
    #[test]
    fn numerically_stable_for_large_offsets() {
        let mut s = OnlineStats::new();
        let offset = 1e9;
        for v in [offset + 4.0, offset + 7.0, offset + 13.0, offset + 16.0] {
            s.push(v);
        }
        assert!((s.mean() - (offset + 10.0)).abs() < 1e-3);
        assert!((s.variance().unwrap() - 30.0).abs() < 1e-3);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn merge_any_split_matches(data in proptest::collection::vec(-1e6f64..1e6, 2..200),
                                       split in any::<usize>()) {
                let split = split % data.len();
                let mut all = OnlineStats::new();
                let mut a = OnlineStats::new();
                let mut b = OnlineStats::new();
                for (i, &v) in data.iter().enumerate() {
                    all.push(v);
                    if i < split { a.push(v) } else { b.push(v) }
                }
                a.merge(&b);
                prop_assert_eq!(a.count(), all.count());
                prop_assert!((a.mean() - all.mean()).abs() < 1e-6);
                if let (Some(va), Some(vall)) = (a.variance(), all.variance()) {
                    prop_assert!((va - vall).abs() / vall.max(1.0) < 1e-6);
                }
            }
        }
    }
}
