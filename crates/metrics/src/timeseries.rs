//! Timestamped sample series with windowed binning.
//!
//! The DDoS experiments (claim C5) plot goodput and latency *over time* as
//! an attack ramps up; [`TimeSeries`] records `(t, value)` points and bins
//! them into fixed windows for reporting.

use crate::summary::Summary;

/// A series of `(timestamp, value)` observations.
///
/// Timestamps are `u64` in caller-chosen units (the simulator uses
/// nanoseconds, the TCP runtime uses microseconds since start).
///
/// ```
/// use aipow_metrics::TimeSeries;
/// let mut ts = TimeSeries::new();
/// ts.push(10, 1.0);
/// ts.push(25, 3.0);
/// let bins = ts.bin(10);
/// assert_eq!(bins.len(), 2);
/// assert_eq!(bins[0].window_start, 10);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(u64, f64)>,
}

/// One fixed window of a binned [`TimeSeries`].
#[derive(Debug, Clone, PartialEq)]
pub struct Bin {
    /// Inclusive start of the window.
    pub window_start: u64,
    /// Number of points that fell in the window.
    pub count: usize,
    /// Sum of the point values in the window.
    pub sum: f64,
    /// Mean of the point values in the window (0.0 for empty bins).
    pub mean: f64,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Appends an observation. Timestamps need not be monotone; binning
    /// sorts internally.
    pub fn push(&mut self, timestamp: u64, value: f64) {
        self.points.push((timestamp, value));
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The raw points in insertion order.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Bins the series into consecutive windows of `width` time units,
    /// starting at the earliest timestamp. Windows with no points are
    /// included (with `count == 0`) so that rate plots show gaps honestly.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn bin(&self, width: u64) -> Vec<Bin> {
        assert!(width > 0, "bin width must be positive");
        if self.points.is_empty() {
            return Vec::new();
        }
        let mut sorted = self.points.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let start = sorted[0].0;
        let end = sorted[sorted.len() - 1].0;
        let nbins = ((end - start) / width + 1) as usize;
        let mut bins: Vec<Bin> = (0..nbins)
            .map(|i| Bin {
                window_start: start + i as u64 * width,
                count: 0,
                sum: 0.0,
                mean: 0.0,
            })
            .collect();
        for (t, v) in sorted {
            let idx = ((t - start) / width) as usize;
            let bin = &mut bins[idx];
            bin.count += 1;
            bin.sum += v;
        }
        for bin in &mut bins {
            if bin.count > 0 {
                bin.mean = bin.sum / bin.count as f64;
            }
        }
        bins
    }

    /// Event rate per unit time in each window: `count / width`.
    pub fn rate(&self, width: u64) -> Vec<(u64, f64)> {
        self.bin(width)
            .into_iter()
            .map(|b| (b.window_start, b.count as f64 / width as f64))
            .collect()
    }

    /// Statistical digest of all values, ignoring timestamps.
    pub fn value_summary(&self) -> Summary {
        Summary::from_values(self.points.iter().map(|&(_, v)| v))
    }
}

impl FromIterator<(u64, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (u64, f64)>>(iter: I) -> Self {
        TimeSeries {
            points: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_counts_and_means() {
        let ts: TimeSeries = [(0, 2.0), (5, 4.0), (10, 6.0)].into_iter().collect();
        let bins = ts.bin(10);
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0].count, 2);
        assert_eq!(bins[0].mean, 3.0);
        assert_eq!(bins[1].count, 1);
        assert_eq!(bins[1].mean, 6.0);
    }

    #[test]
    fn empty_bins_are_reported() {
        let ts: TimeSeries = [(0, 1.0), (35, 1.0)].into_iter().collect();
        let bins = ts.bin(10);
        assert_eq!(bins.len(), 4);
        assert_eq!(bins[1].count, 0);
        assert_eq!(bins[2].count, 0);
        assert_eq!(bins[1].mean, 0.0);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let ts: TimeSeries = [(30, 3.0), (0, 1.0), (15, 2.0)].into_iter().collect();
        let bins = ts.bin(15);
        assert_eq!(bins.len(), 3);
        assert_eq!(bins[0].count, 1);
        assert_eq!(bins[1].count, 1);
        assert_eq!(bins[2].count, 1);
    }

    #[test]
    fn rate_is_count_over_width() {
        let ts: TimeSeries = (0..100).map(|i| (i, 1.0)).collect();
        let rates = ts.rate(10);
        assert_eq!(rates.len(), 10);
        for (_, r) in rates {
            assert!((r - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_series() {
        let ts = TimeSeries::new();
        assert!(ts.bin(10).is_empty());
        assert!(ts.rate(10).is_empty());
        assert!(ts.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_panics() {
        let ts: TimeSeries = [(0, 1.0)].into_iter().collect();
        ts.bin(0);
    }

    #[test]
    fn value_summary_ignores_time() {
        let ts: TimeSeries = [(100, 1.0), (0, 3.0)].into_iter().collect();
        let s = ts.value_summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 2.0);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Total binned count equals the number of points, and every
            /// point lands in the window covering its timestamp.
            #[test]
            fn bins_conserve_points(points in proptest::collection::vec((0u64..10_000, -100f64..100.0), 1..200),
                                    width in 1u64..500) {
                let ts: TimeSeries = points.iter().copied().collect();
                let bins = ts.bin(width);
                let total: usize = bins.iter().map(|b| b.count).sum();
                prop_assert_eq!(total, points.len());
                // Windows tile the range contiguously.
                for pair in bins.windows(2) {
                    prop_assert_eq!(pair[1].window_start - pair[0].window_start, width);
                }
            }
        }
    }
}
