//! Measurement substrate for the `aipow` workspace.
//!
//! The paper's evaluation (§III) reports *medians of 30 trials* of
//! end-to-end latency per reputation score, so faithful reproduction needs
//! careful small-sample statistics as well as cheap large-volume recording
//! for the DDoS simulations:
//!
//! - [`TrialSet`] — exact order statistics over small samples (the
//!   paper's median-of-30 methodology),
//! - [`Histogram`] — log-bucketed value histogram with ≤ 1.6 % relative
//!   quantile error for high-volume latency recording,
//! - [`OnlineStats`] — numerically stable streaming mean/variance
//!   (Welford),
//! - [`Counter`] / [`Gauge`] — atomics for the server fast path,
//! - [`TimeSeries`] — timestamped samples with windowed binning for
//!   throughput-over-time plots,
//! - [`Summary`] — a serializable statistical digest used by every
//!   experiment report.
//!
//! # Example
//!
//! ```
//! use aipow_metrics::sample::TrialSet;
//!
//! let mut trials = TrialSet::new();
//! for latency_ms in [30.8, 31.2, 31.0, 30.9, 31.1] {
//!     trials.record(latency_ms);
//! }
//! assert_eq!(trials.median(), Some(31.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod histogram;
pub mod sample;
pub mod summary;
pub mod timeseries;
pub mod welford;

pub use counter::{Counter, Gauge};
pub use histogram::{AtomicHistogram, Histogram};
pub use sample::TrialSet;
pub use summary::Summary;
pub use timeseries::TimeSeries;
pub use welford::OnlineStats;
