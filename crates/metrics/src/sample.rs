//! Exact small-sample statistics.
//!
//! The paper reports the **median of 30 trials** for every point in
//! Figure 2. [`TrialSet`] keeps the raw observations and computes exact
//! order statistics, which matters at n = 30 where bucketed approximations
//! would visibly distort the reproduced curves.

/// A set of f64 observations with exact order statistics.
///
/// ```
/// use aipow_metrics::TrialSet;
/// let trials: TrialSet = [3.0, 1.0, 2.0].into_iter().collect();
/// assert_eq!(trials.median(), Some(2.0));
/// assert_eq!(trials.min(), Some(1.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrialSet {
    values: Vec<f64>,
}

impl TrialSet {
    /// Creates an empty trial set.
    pub fn new() -> Self {
        TrialSet { values: Vec::new() }
    }

    /// Creates an empty trial set with capacity for `n` trials.
    pub fn with_capacity(n: usize) -> Self {
        TrialSet {
            values: Vec::with_capacity(n),
        }
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN; order statistics are undefined over NaN.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot record NaN observation");
        self.values.push(value);
    }

    /// Number of recorded observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw observations in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Exact median (mean of the two central order statistics for even n).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Exact quantile using linear interpolation between order statistics
    /// (type-7 / numpy default). Returns `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.values.is_empty() {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| {
            a.partial_cmp(b)
                .expect("sample invariant: NaN is never recorded")
        });
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
    }

    /// Sample standard deviation (n−1 denominator), `None` if fewer than two
    /// observations.
    pub fn stddev(&self) -> Option<f64> {
        if self.values.len() < 2 {
            return None;
        }
        let mean = self
            .mean()
            .expect("guard invariant: the empty case returned above");
        let var = self
            .values
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / (self.values.len() - 1) as f64;
        Some(var.sqrt())
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Interquartile range (q75 − q25), `None` if empty.
    pub fn iqr(&self) -> Option<f64> {
        Some(self.quantile(0.75)? - self.quantile(0.25)?)
    }
}

impl FromIterator<f64> for TrialSet {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut set = TrialSet::new();
        for v in iter {
            set.record(v);
        }
        set
    }
}

impl Extend<f64> for TrialSet {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_count() {
        let t: TrialSet = [5.0, 1.0, 3.0].into_iter().collect();
        assert_eq!(t.median(), Some(3.0));
    }

    #[test]
    fn median_even_count_interpolates() {
        let t: TrialSet = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(t.median(), Some(2.5));
    }

    #[test]
    fn median_of_30_matches_paper_methodology() {
        // 30 trials: median is the mean of the 15th and 16th order stats.
        let t: TrialSet = (1..=30).map(f64::from).collect();
        assert_eq!(t.median(), Some(15.5));
    }

    #[test]
    fn quantile_extremes() {
        let t: TrialSet = [10.0, 20.0, 30.0].into_iter().collect();
        assert_eq!(t.quantile(0.0), Some(10.0));
        assert_eq!(t.quantile(1.0), Some(30.0));
    }

    #[test]
    fn empty_set_returns_none() {
        let t = TrialSet::new();
        assert_eq!(t.median(), None);
        assert_eq!(t.mean(), None);
        assert_eq!(t.stddev(), None);
        assert_eq!(t.min(), None);
        assert_eq!(t.max(), None);
        assert_eq!(t.iqr(), None);
        assert!(t.is_empty());
    }

    #[test]
    fn stddev_known_value() {
        let t: TrialSet = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        // Sample stddev of this classic set is sqrt(32/7).
        let sd = t.stddev().unwrap();
        assert!((sd - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn stddev_requires_two_observations() {
        let mut t = TrialSet::new();
        t.record(1.0);
        assert_eq!(t.stddev(), None);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn recording_nan_panics() {
        TrialSet::new().record(f64::NAN);
    }

    #[test]
    fn insertion_order_preserved_in_values() {
        let t: TrialSet = [3.0, 1.0, 2.0].into_iter().collect();
        assert_eq!(t.values(), &[3.0, 1.0, 2.0]);
    }

    #[test]
    fn extend_appends() {
        let mut t: TrialSet = [1.0].into_iter().collect();
        t.extend([2.0, 3.0]);
        assert_eq!(t.len(), 3);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn median_between_min_and_max(values in proptest::collection::vec(-1e9f64..1e9, 1..100)) {
                let t: TrialSet = values.into_iter().collect();
                let m = t.median().unwrap();
                prop_assert!(t.min().unwrap() <= m && m <= t.max().unwrap());
            }

            #[test]
            fn quantile_monotone(values in proptest::collection::vec(-1e6f64..1e6, 1..60),
                                 q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
                let t: TrialSet = values.into_iter().collect();
                let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
                prop_assert!(t.quantile(lo).unwrap() <= t.quantile(hi).unwrap() + 1e-9);
            }

            #[test]
            fn mean_within_extrema(values in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
                let t: TrialSet = values.into_iter().collect();
                let m = t.mean().unwrap();
                prop_assert!(t.min().unwrap() - 1e-6 <= m && m <= t.max().unwrap() + 1e-6);
            }
        }
    }
}
