//! Atomic counters and gauges for the server fast path.
//!
//! The admission pipeline increments these on every request; they must be
//! shareable across the TCP worker pool without locks.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
///
/// ```
/// use aipow_metrics::Counter;
/// let c = Counter::new();
/// c.inc();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        // relaxed: monotonic counter primitive; carries no dependent data
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // relaxed: monitoring read; freshness not required
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge that can move in both directions (e.g. in-flight requests).
///
/// ```
/// use aipow_metrics::Gauge;
/// let g = Gauge::new();
/// g.inc();
/// g.dec();
/// assert_eq!(g.get(), 0);
/// ```
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Increments by one.
    pub fn inc(&self) {
        // relaxed: gauge adjustment; carries no dependent data
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements by one.
    pub fn dec(&self) {
        // relaxed: gauge adjustment; carries no dependent data
        self.value.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets an absolute value.
    pub fn set(&self, v: i64) {
        // relaxed: gauge overwrite; carries no dependent data
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        // relaxed: monitoring read; freshness not required
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn gauge_basics() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-5);
        assert_eq!(g.get(), -5);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn gauge_is_thread_safe() {
        let g = Arc::new(Gauge::new());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        if i % 2 == 0 {
                            g.inc();
                        } else {
                            g.dec();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn send_sync_bounds() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Counter>();
        assert_send_sync::<Gauge>();
    }
}
