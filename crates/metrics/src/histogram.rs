//! Log-bucketed histogram for high-volume latency recording.
//!
//! Values below 64 are recorded exactly; above that, each power of two is
//! split into 64 sub-buckets, bounding the relative quantile error at
//! `1/64 ≈ 1.6 %`. This is the classic HDR-style log-linear layout, sized
//! statically for the full `u64` range (3 776 buckets, ~30 KiB).

/// Number of sub-bucket bits per octave.
const SUB_BITS: u32 = 6;
const SUB_COUNT: usize = 1 << SUB_BITS;
/// Bucket count covering all of `u64`.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_COUNT;

/// A log-bucketed histogram over `u64` values (typically nanoseconds).
///
/// ```
/// use aipow_metrics::Histogram;
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.value_at_quantile(0.5);
/// assert!((480..=520).contains(&p50), "p50 was {p50}");
/// ```
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of the same value.
    ///
    /// Counts saturate instead of wrapping: a histogram that has absorbed
    /// `u64::MAX` observations of one bucket stays pinned there rather than
    /// silently restarting from zero mid-flood.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let bucket = &mut self.counts[bucket_index(value)];
        *bucket = bucket.saturating_add(n);
        self.count = self.count.saturating_add(n);
        self.sum = self
            .sum
            .saturating_add((value as u128).saturating_mul(n as u128));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact minimum recorded value, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate value at quantile `q ∈ [0, 1]` (bucket midpoint; ≤ 1.6 %
    /// relative error). Returns 0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return 0;
        }
        // Rank of the target observation (1-based), clamped into range.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let lo = bucket_low(idx);
                let hi = bucket_high(idx);
                let mid = lo + (hi - lo) / 2;
                // Clamp to observed extrema so p0/p100 are exact.
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Shorthand for the median.
    pub fn median(&self) -> u64 {
        self.value_at_quantile(0.5)
    }

    /// Merges another histogram into this one. Counts saturate like
    /// [`Histogram::record_n`].
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Clears all recorded data.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

impl core::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("p50", &self.value_at_quantile(0.5))
            .field("p99", &self.value_at_quantile(0.99))
            .field("max", &self.max)
            .finish()
    }
}

/// A concurrently writable [`Histogram`]: same bucket layout, every slot an
/// atomic, so many recorder threads can feed one histogram without locks.
///
/// Reads go through [`AtomicHistogram::snapshot`], which materializes a
/// plain [`Histogram`] for quantile queries. The snapshot is not an atomic
/// cut across buckets — concurrent recording can leave `count` off by the
/// in-flight observations — which is the standard (and here acceptable)
/// monitoring trade-off.
///
/// ```
/// use aipow_metrics::AtomicHistogram;
/// let h = AtomicHistogram::new();
/// h.record(250);
/// h.record_n(500, 3);
/// let snap = h.snapshot();
/// assert_eq!(snap.count(), 4);
/// assert_eq!(snap.max(), 500);
/// ```
pub struct AtomicHistogram {
    counts: Vec<core::sync::atomic::AtomicU64>,
    count: core::sync::atomic::AtomicU64,
    sum: core::sync::atomic::AtomicU64,
    min: core::sync::atomic::AtomicU64,
    max: core::sync::atomic::AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// Creates an empty atomic histogram (~30 KiB of zeroed slots).
    pub fn new() -> Self {
        use core::sync::atomic::AtomicU64;
        AtomicHistogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of the same value.
    ///
    /// Each field is its own atomic; cross-field consistency is only
    /// eventual, matching the snapshot contract above.
    pub fn record_n(&self, value: u64, n: u64) {
        use core::sync::atomic::Ordering::Relaxed; // relaxed: justified per use below
        if n == 0 {
            return;
        }
        // relaxed: independent monitoring cells; no cross-cell ordering is
        // consumed, snapshot() tolerates torn reads by contract.
        self.counts[bucket_index(value)].fetch_add(n, Relaxed);
        self.count.fetch_add(n, Relaxed);
        self.sum.fetch_add(value.saturating_mul(n), Relaxed);
        self.min.fetch_min(value, Relaxed);
        self.max.fetch_max(value, Relaxed);
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        // relaxed: monitoring read, no ordering consumed.
        self.count.load(core::sync::atomic::Ordering::Relaxed)
    }

    /// Materializes the current contents as a plain [`Histogram`].
    pub fn snapshot(&self) -> Histogram {
        use core::sync::atomic::Ordering::Relaxed; // relaxed: justified per use below
        let mut h = Histogram::new();
        // relaxed: per-bucket monitoring reads; the snapshot contract
        // allows being off by concurrently in-flight observations.
        for (slot, bucket) in h.counts.iter_mut().zip(self.counts.iter()) {
            *slot = bucket.load(Relaxed);
        }
        h.count = self.count.load(Relaxed);
        h.sum = self.sum.load(Relaxed) as u128;
        h.min = self.min.load(Relaxed);
        h.max = self.max.load(Relaxed);
        // Rebuild invariants a torn snapshot could have violated: the
        // derived count must cover every copied bucket so quantile scans
        // terminate inside the populated range.
        let bucket_total: u64 = h.counts.iter().fold(0, |acc, &c| acc.saturating_add(c));
        h.count = h.count.max(bucket_total);
        h
    }

    /// Clears all recorded data.
    pub fn reset(&self) {
        use core::sync::atomic::Ordering::Relaxed; // relaxed: justified per use below
                                                   // relaxed: reset is quiescent-time maintenance, not synchronization.
        for bucket in &self.counts {
            bucket.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        self.min.store(u64::MAX, Relaxed);
        self.max.store(0, Relaxed);
    }
}

impl core::fmt::Debug for AtomicHistogram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        self.snapshot().fmt(f)
    }
}

/// Maps a value to its bucket index.
fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) & (SUB_COUNT as u64 - 1)) as usize;
    ((msb - SUB_BITS + 1) as usize) * SUB_COUNT + sub
}

/// Lowest value mapping to bucket `idx`.
fn bucket_low(idx: usize) -> u64 {
    let octave = idx / SUB_COUNT;
    let sub = (idx % SUB_COUNT) as u64;
    if octave == 0 {
        return sub;
    }
    let msb = octave as u32 + SUB_BITS - 1;
    let shift = msb - SUB_BITS;
    (1u64 << msb) + (sub << shift)
}

/// Highest value mapping to bucket `idx`.
fn bucket_high(idx: usize) -> u64 {
    if idx + 1 >= BUCKETS {
        return u64::MAX;
    }
    bucket_low(idx + 1).saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        // Each value below 64 has its own bucket.
        assert_eq!(h.value_at_quantile(0.0), 0);
        assert_eq!(h.max(), 63);
        assert_eq!(h.count(), 64);
    }

    #[test]
    fn bucket_index_is_monotone_nondecreasing() {
        let mut prev = 0usize;
        let mut v = 0u64;
        while v < 1 << 24 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index regressed at {v}");
            prev = idx;
            v = if v < 4096 { v + 1 } else { v + v / 512 };
        }
    }

    #[test]
    fn bucket_bounds_contain_their_values() {
        for &v in &[
            0u64,
            1,
            63,
            64,
            65,
            127,
            128,
            1000,
            65_535,
            1 << 30,
            u64::MAX / 2,
        ] {
            let idx = bucket_index(v);
            assert!(bucket_low(idx) <= v, "low bound for {v}");
            assert!(v <= bucket_high(idx), "high bound for {v}");
        }
    }

    #[test]
    fn quantile_relative_error_bounded() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for &(q, expect) in &[(0.5, 50_000u64), (0.9, 90_000), (0.99, 99_000)] {
            let got = h.value_at_quantile(q);
            let err = (got as f64 - expect as f64).abs() / expect as f64;
            assert!(err < 0.02, "q={q} got {got} expected {expect} err {err}");
        }
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.value_at_quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_out_of_range_panics() {
        Histogram::new().value_at_quantile(1.5);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        h.record(30);
        assert_eq!(h.mean(), 20.0);
    }

    #[test]
    fn merge_combines_counts_and_extrema() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn record_n_equivalent_to_loop() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(777, 100);
        for _ in 0..100 {
            b.record(777);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.value_at_quantile(0.5), b.value_at_quantile(0.5));
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn reset_clears_everything() {
        let mut h = Histogram::new();
        h.record(42);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.value_at_quantile(0.99), 0);
    }

    #[test]
    fn merge_of_empty_histograms_stays_empty() {
        let mut a = Histogram::new();
        let b = Histogram::new();
        a.merge(&b);
        assert_eq!(a.count(), 0);
        assert_eq!(a.min(), 0);
        assert_eq!(a.max(), 0);
        assert_eq!(a.value_at_quantile(0.5), 0);
    }

    #[test]
    fn merge_empty_into_populated_is_identity() {
        let mut a = Histogram::new();
        a.record_n(42, 7);
        let before = (a.count(), a.min(), a.max(), a.median());
        a.merge(&Histogram::new());
        assert_eq!((a.count(), a.min(), a.max(), a.median()), before);
    }

    #[test]
    fn single_bucket_quantiles_are_flat() {
        let mut h = Histogram::new();
        h.record_n(37, 1_000);
        // Every quantile of a single-bucket histogram is that value.
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.value_at_quantile(q), 37, "q={q}");
        }
        assert_eq!(h.min(), 37);
        assert_eq!(h.max(), 37);
    }

    #[test]
    fn saturating_counts_never_wrap() {
        let mut h = Histogram::new();
        h.record_n(5, u64::MAX);
        h.record_n(5, u64::MAX); // would wrap to small with +=
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.value_at_quantile(0.5), 5);

        let mut other = Histogram::new();
        other.record_n(5, u64::MAX);
        h.merge(&other); // merge saturates too
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.value_at_quantile(1.0), 5);
    }

    #[test]
    fn merge_of_disjoint_ranges_keeps_both_tails() {
        let mut low = Histogram::new();
        let mut high = Histogram::new();
        for v in 1..=100u64 {
            low.record(v);
        }
        for v in 1_000_000..1_000_100u64 {
            high.record(v);
        }
        low.merge(&high);
        assert_eq!(low.count(), 200);
        assert_eq!(low.min(), 1);
        assert_eq!(low.max(), 1_000_099);
        // The median (rank 100 of 200) sits at the top of the low cluster,
        // not interpolated into the empty gap between the clusters.
        let p50 = low.value_at_quantile(0.5);
        assert!((95..=105).contains(&p50), "p50 was {p50}");
        // p99 lands inside the high cluster (within bucket error).
        let p99 = low.value_at_quantile(0.99);
        assert!(
            (990_000..=1_000_099).contains(&p99),
            "p99 was {p99}, expected the high cluster"
        );
    }

    #[test]
    fn atomic_histogram_matches_plain_recording() {
        let atomic = AtomicHistogram::new();
        let mut plain = Histogram::new();
        for v in [1u64, 63, 64, 999, 100_000, 1 << 40] {
            atomic.record(v);
            plain.record(v);
        }
        atomic.record_n(777, 10);
        plain.record_n(777, 10);
        let snap = atomic.snapshot();
        assert_eq!(snap.count(), plain.count());
        assert_eq!(snap.min(), plain.min());
        assert_eq!(snap.max(), plain.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(snap.value_at_quantile(q), plain.value_at_quantile(q));
        }
    }

    #[test]
    fn atomic_histogram_concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(AtomicHistogram::new());
        let threads = 4;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..per_thread {
                        h.record(t * 1_000 + (i % 100));
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count(), threads * per_thread);
    }

    #[test]
    fn atomic_histogram_reset_clears_everything() {
        let h = AtomicHistogram::new();
        h.record_n(12345, 10);
        h.reset();
        let snap = h.snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.value_at_quantile(0.99), 0);
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), 0);
        let _ = h.value_at_quantile(1.0);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Quantile estimates stay within one bucket (1/64 relative
            /// error) of the exact order statistic.
            #[test]
            fn quantile_close_to_exact(mut values in proptest::collection::vec(1u64..1_000_000, 1..500),
                                       q in 0.0f64..1.0) {
                let mut h = Histogram::new();
                for &v in &values {
                    h.record(v);
                }
                values.sort_unstable();
                let rank = ((q * values.len() as f64).ceil() as usize)
                    .clamp(1, values.len());
                let exact = values[rank - 1];
                let got = h.value_at_quantile(q);
                let err = (got as f64 - exact as f64).abs() / exact.max(1) as f64;
                prop_assert!(err <= 0.04, "got {} exact {} err {}", got, exact, err);
            }

            /// min <= p50 <= max always holds.
            #[test]
            fn quantiles_within_extrema(values in proptest::collection::vec(any::<u64>(), 1..200)) {
                let mut h = Histogram::new();
                for &v in &values {
                    h.record(v);
                }
                let p50 = h.value_at_quantile(0.5);
                prop_assert!(h.min() <= p50 && p50 <= h.max());
            }

            /// Merging two histograms equals recording everything into one.
            #[test]
            fn merge_equals_union(a in proptest::collection::vec(1u64..1_000_000, 0..100),
                                  b in proptest::collection::vec(1u64..1_000_000, 0..100)) {
                let mut ha = Histogram::new();
                let mut hb = Histogram::new();
                let mut hu = Histogram::new();
                for &v in &a { ha.record(v); hu.record(v); }
                for &v in &b { hb.record(v); hu.record(v); }
                ha.merge(&hb);
                prop_assert_eq!(ha.count(), hu.count());
                prop_assert_eq!(ha.value_at_quantile(0.5), hu.value_at_quantile(0.5));
                prop_assert_eq!(ha.max(), hu.max());
            }
        }
    }
}
