//! Log-bucketed histogram for high-volume latency recording.
//!
//! Values below 64 are recorded exactly; above that, each power of two is
//! split into 64 sub-buckets, bounding the relative quantile error at
//! `1/64 ≈ 1.6 %`. This is the classic HDR-style log-linear layout, sized
//! statically for the full `u64` range (3 776 buckets, ~30 KiB).

/// Number of sub-bucket bits per octave.
const SUB_BITS: u32 = 6;
const SUB_COUNT: usize = 1 << SUB_BITS;
/// Bucket count covering all of `u64`.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_COUNT;

/// A log-bucketed histogram over `u64` values (typically nanoseconds).
///
/// ```
/// use aipow_metrics::Histogram;
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.value_at_quantile(0.5);
/// assert!((480..=520).contains(&p50), "p50 was {p50}");
/// ```
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of the same value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(value)] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact minimum recorded value, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate value at quantile `q ∈ [0, 1]` (bucket midpoint; ≤ 1.6 %
    /// relative error). Returns 0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return 0;
        }
        // Rank of the target observation (1-based), clamped into range.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let lo = bucket_low(idx);
                let hi = bucket_high(idx);
                let mid = lo + (hi - lo) / 2;
                // Clamp to observed extrema so p0/p100 are exact.
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Shorthand for the median.
    pub fn median(&self) -> u64 {
        self.value_at_quantile(0.5)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Clears all recorded data.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

impl core::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("p50", &self.value_at_quantile(0.5))
            .field("p99", &self.value_at_quantile(0.99))
            .field("max", &self.max)
            .finish()
    }
}

/// Maps a value to its bucket index.
fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) & (SUB_COUNT as u64 - 1)) as usize;
    ((msb - SUB_BITS + 1) as usize) * SUB_COUNT + sub
}

/// Lowest value mapping to bucket `idx`.
fn bucket_low(idx: usize) -> u64 {
    let octave = idx / SUB_COUNT;
    let sub = (idx % SUB_COUNT) as u64;
    if octave == 0 {
        return sub;
    }
    let msb = octave as u32 + SUB_BITS - 1;
    let shift = msb - SUB_BITS;
    (1u64 << msb) + (sub << shift)
}

/// Highest value mapping to bucket `idx`.
fn bucket_high(idx: usize) -> u64 {
    if idx + 1 >= BUCKETS {
        return u64::MAX;
    }
    bucket_low(idx + 1).saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        // Each value below 64 has its own bucket.
        assert_eq!(h.value_at_quantile(0.0), 0);
        assert_eq!(h.max(), 63);
        assert_eq!(h.count(), 64);
    }

    #[test]
    fn bucket_index_is_monotone_nondecreasing() {
        let mut prev = 0usize;
        let mut v = 0u64;
        while v < 1 << 24 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index regressed at {v}");
            prev = idx;
            v = if v < 4096 { v + 1 } else { v + v / 512 };
        }
    }

    #[test]
    fn bucket_bounds_contain_their_values() {
        for &v in &[
            0u64,
            1,
            63,
            64,
            65,
            127,
            128,
            1000,
            65_535,
            1 << 30,
            u64::MAX / 2,
        ] {
            let idx = bucket_index(v);
            assert!(bucket_low(idx) <= v, "low bound for {v}");
            assert!(v <= bucket_high(idx), "high bound for {v}");
        }
    }

    #[test]
    fn quantile_relative_error_bounded() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for &(q, expect) in &[(0.5, 50_000u64), (0.9, 90_000), (0.99, 99_000)] {
            let got = h.value_at_quantile(q);
            let err = (got as f64 - expect as f64).abs() / expect as f64;
            assert!(err < 0.02, "q={q} got {got} expected {expect} err {err}");
        }
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.value_at_quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_out_of_range_panics() {
        Histogram::new().value_at_quantile(1.5);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        h.record(30);
        assert_eq!(h.mean(), 20.0);
    }

    #[test]
    fn merge_combines_counts_and_extrema() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn record_n_equivalent_to_loop() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(777, 100);
        for _ in 0..100 {
            b.record(777);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.value_at_quantile(0.5), b.value_at_quantile(0.5));
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn reset_clears_everything() {
        let mut h = Histogram::new();
        h.record(42);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.value_at_quantile(0.99), 0);
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), 0);
        let _ = h.value_at_quantile(1.0);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Quantile estimates stay within one bucket (1/64 relative
            /// error) of the exact order statistic.
            #[test]
            fn quantile_close_to_exact(mut values in proptest::collection::vec(1u64..1_000_000, 1..500),
                                       q in 0.0f64..1.0) {
                let mut h = Histogram::new();
                for &v in &values {
                    h.record(v);
                }
                values.sort_unstable();
                let rank = ((q * values.len() as f64).ceil() as usize)
                    .clamp(1, values.len());
                let exact = values[rank - 1];
                let got = h.value_at_quantile(q);
                let err = (got as f64 - exact as f64).abs() / exact.max(1) as f64;
                prop_assert!(err <= 0.04, "got {} exact {} err {}", got, exact, err);
            }

            /// min <= p50 <= max always holds.
            #[test]
            fn quantiles_within_extrema(values in proptest::collection::vec(any::<u64>(), 1..200)) {
                let mut h = Histogram::new();
                for &v in &values {
                    h.record(v);
                }
                let p50 = h.value_at_quantile(0.5);
                prop_assert!(h.min() <= p50 && p50 <= h.max());
            }

            /// Merging two histograms equals recording everything into one.
            #[test]
            fn merge_equals_union(a in proptest::collection::vec(1u64..1_000_000, 0..100),
                                  b in proptest::collection::vec(1u64..1_000_000, 0..100)) {
                let mut ha = Histogram::new();
                let mut hb = Histogram::new();
                let mut hu = Histogram::new();
                for &v in &a { ha.record(v); hu.record(v); }
                for &v in &b { hb.record(v); hu.record(v); }
                ha.merge(&hb);
                prop_assert_eq!(ha.count(), hu.count());
                prop_assert_eq!(ha.value_at_quantile(0.5), hu.value_at_quantile(0.5));
                prop_assert_eq!(ha.max(), hu.max());
            }
        }
    }
}
