//! Serializable statistical digests for experiment reports.

use serde::{Deserialize, Serialize};

/// A statistical digest of a set of observations.
///
/// Every experiment in EXPERIMENTS.md reports its measurements as one or
/// more `Summary` rows; the struct is `serde`-serializable so the reproduce
/// binary can persist results.
///
/// ```
/// use aipow_metrics::Summary;
/// let s = Summary::from_values([1.0, 2.0, 3.0]);
/// assert_eq!(s.count, 3);
/// assert_eq!(s.median, 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Minimum observation (0.0 if empty).
    pub min: f64,
    /// Maximum observation (0.0 if empty).
    pub max: f64,
    /// Arithmetic mean (0.0 if empty).
    pub mean: f64,
    /// Exact interpolated median (0.0 if empty).
    pub median: f64,
    /// 90th percentile (0.0 if empty).
    pub p90: f64,
    /// 99th percentile (0.0 if empty).
    pub p99: f64,
    /// Sample standard deviation (0.0 with fewer than two observations).
    pub stddev: f64,
}

impl Summary {
    /// Computes a digest from any iterator of values.
    pub fn from_values<I: IntoIterator<Item = f64>>(values: I) -> Self {
        let set: crate::sample::TrialSet = values.into_iter().collect();
        Self::from_trials(&set)
    }

    /// Computes a digest from an existing [`crate::sample::TrialSet`].
    pub fn from_trials(set: &crate::sample::TrialSet) -> Self {
        Summary {
            count: set.len(),
            min: set.min().unwrap_or(0.0),
            max: set.max().unwrap_or(0.0),
            mean: set.mean().unwrap_or(0.0),
            median: set.median().unwrap_or(0.0),
            p90: set.quantile(0.9).unwrap_or(0.0),
            p99: set.quantile(0.99).unwrap_or(0.0),
            stddev: set.stddev().unwrap_or(0.0),
        }
    }

    /// Renders the digest as a fixed set of CSV fields (matches
    /// [`Summary::CSV_HEADER`]).
    pub fn to_csv_fields(&self) -> String {
        format!(
            "{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
            self.count, self.min, self.max, self.mean, self.median, self.p90, self.p99, self.stddev
        )
    }

    /// Column names matching [`Summary::to_csv_fields`].
    pub const CSV_HEADER: &'static str = "count,min,max,mean,median,p90,p99,stddev";
}

impl core::fmt::Display for Summary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "n={} min={:.2} med={:.2} mean={:.2} p90={:.2} p99={:.2} max={:.2} sd={:.2}",
            self.count, self.min, self.median, self.mean, self.p90, self.p99, self.max, self.stddev
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_of_known_values() {
        let s = Summary::from_values((1..=100).map(f64::from));
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.mean, 50.5);
        assert_eq!(s.median, 50.5);
        assert!((s.p90 - 90.1).abs() < 0.2);
    }

    #[test]
    fn empty_digest_is_zeroed() {
        let s = Summary::from_values(std::iter::empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.median, 0.0);
    }

    #[test]
    fn csv_fields_match_header_arity() {
        let s = Summary::from_values([1.0, 2.0]);
        let fields = s.to_csv_fields();
        assert_eq!(
            fields.split(',').count(),
            Summary::CSV_HEADER.split(',').count()
        );
    }

    #[test]
    fn display_is_nonempty_and_contains_median() {
        let s = Summary::from_values([5.0]);
        let text = s.to_string();
        assert!(text.contains("med=5.00"), "{text}");
    }
}
