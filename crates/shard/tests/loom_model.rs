//! Bounded-interleaving model tests for the sharded primitives.
//!
//! Run with `cargo test -p aipow-shard --features loom-model`. The
//! vendored `loom` stand-in explores every schedule (up to 2
//! preemptions) of each closure; an assert that fails in *any*
//! interleaving fails the test with the interleaving trace.
//!
//! The centerpiece re-litigates the PR 4 evict/refund race: the
//! production in-shard eviction protocol must hold its capacity bound
//! in every schedule, while the retired global-scan protocol — whose
//! check-then-act on the length counter caused the original bug — is
//! *shown* to overshoot under the same workload. Reverting the PR 4
//! fix (routing production calls back through the global-scan path)
//! turns the first test red.

#![cfg(feature = "loom-model")]

use aipow_shard::ShardedMap;
use std::sync::Arc;

/// Two racing upserts of fresh keys into a single-shard map with
/// per-shard capacity 1: the in-shard protocol holds the existence
/// check, victim scan, eviction, and insert under one shard lock, so
/// the population can never exceed the bound — in any interleaving.
#[test]
fn in_shard_upsert_never_overshoots_capacity() {
    loom::model(|| {
        let map = Arc::new(ShardedMap::<u8, u64>::new(1));
        let other = Arc::clone(&map);
        let racer = loom::thread::spawn(move || {
            other.update_or_insert_evicting_in_shard(2u8, 1, |v: &u64| *v, || 20, |v| *v);
        });
        map.update_or_insert_evicting_in_shard(1u8, 1, |v: &u64| *v, || 10, |v| *v);
        racer.join().expect("model thread join: invariant");
        assert!(
            map.len() <= 1,
            "per-shard capacity bound violated: len={}",
            map.len()
        );
        // The lock-free length counter agrees with the actual content.
        assert_eq!(map.fold(0usize, |acc, _, _| acc + 1), map.len());
    });
}

/// The same workload through the **retired** global-scan protocol must
/// overshoot in some schedule: both threads pass the `len() >=
/// max_entries` check before either inserts — the check-then-act race
/// PR 4 removed from production. This is the proof that the checker
/// has teeth: if the in-shard fix were reverted, the model would find
/// this exact schedule in the test above.
#[cfg(feature = "bench-baselines")]
#[test]
fn retired_global_scan_protocol_overshoots_in_some_schedule() {
    let failure = loom::Builder::new()
        .try_check(|| {
            let map = Arc::new(ShardedMap::<u8, u64>::new(1));
            let other = Arc::clone(&map);
            let racer = loom::thread::spawn(move || {
                other.update_or_insert_evicting(2u8, 1, |v| *v, || 20, |v| *v);
            });
            map.update_or_insert_evicting(1u8, 1, |v| *v, || 10, |v| *v);
            racer.join().expect("model thread join: invariant");
            assert!(map.len() <= 1, "capacity overshoot: len={}", map.len());
        })
        .expect_err("the retired check-then-act protocol must overshoot somewhere");
    assert!(
        failure.message.contains("capacity overshoot"),
        "unexpected failure: {failure}"
    );
    assert!(
        failure.message.contains("interleaving:"),
        "failure must carry its interleaving trace: {failure}"
    );
}

/// Exactly one initializer runs when two threads race
/// `with_or_insert_with` on the same key.
#[test]
fn with_or_insert_with_runs_exactly_one_init_under_race() {
    loom::model(|| {
        let map = Arc::new(ShardedMap::<u8, u64>::new(1));
        // Untracked counter: counts init runs without adding schedule
        // points of its own.
        let inits = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let (other, other_inits) = (Arc::clone(&map), Arc::clone(&inits));
        let racer = loom::thread::spawn(move || {
            other.with_or_insert_with(
                7u8,
                || {
                    other_inits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    5
                },
                |v| *v,
            );
        });
        map.with_or_insert_with(
            7u8,
            || {
                inits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                5
            },
            |v| *v,
        );
        racer.join().expect("model thread join: invariant");
        assert_eq!(inits.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(map.len(), 1);
    });
}

/// The lock-free length counter stays exact across a racing insert and
/// remove: every adjustment happens under the owning shard's lock.
#[test]
fn len_is_exact_across_racing_insert_and_remove() {
    loom::model(|| {
        let map = Arc::new(ShardedMap::<u8, u64>::new(1));
        let other = Arc::clone(&map);
        let racer = loom::thread::spawn(move || {
            other.insert(2u8, 20);
            other.remove(&2u8);
        });
        map.insert(1u8, 10);
        racer.join().expect("model thread join: invariant");
        assert_eq!(map.len(), 1);
        assert_eq!(map.get_cloned(&1u8), Some(10));
        assert_eq!(map.fold(0usize, |acc, _, _| acc + 1), 1);
    });
}
