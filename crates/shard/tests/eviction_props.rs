//! Eviction-parity properties for the bounded per-shard protocol.
//!
//! The per-shard eviction in `update_or_insert_evicting_in_shard` is the
//! only eviction path production tables use, so its guarantees are
//! checked here against *random interleaved* insert/update streams, not
//! just the handcrafted unit cases:
//!
//! 1. the population never exceeds the layout's bound
//!    (`per_shard_capacity × shard_count`), at every step;
//! 2. the key being upserted is present immediately after its upsert —
//!    eviction never throws away the entry being created or updated;
//! 3. updates are never lost to eviction-reinsert races (the sum of
//!    applied updates is exact);
//! 4. an address-cycling insert storm performs **no cross-shard folds**
//!    and scans at most `per_shard_capacity` entries per insert — the
//!    scan-length counters on the map are the witness.

use aipow_shard::{ShardLayout, ShardedMap, DEFAULT_MAX_SCAN};
use proptest::prelude::*;

proptest! {
    /// Random interleaved upserts under random small layouts: the
    /// population bound holds after every operation, and the upserted
    /// key is never the victim of its own upsert.
    #[test]
    fn random_streams_respect_capacity_and_own_key(
        keys in proptest::collection::vec(0u16..64, 1..400),
        per_shard in 1usize..6,
        shards in 1usize..9,
    ) {
        let map: ShardedMap<u16, u64> = ShardedMap::new(shards);
        let bound = per_shard * map.shard_count();
        for (step, &key) in keys.iter().enumerate() {
            let (_, _evicted) = map.update_or_insert_evicting_in_shard(
                key,
                per_shard,
                |v: &u64| *v,
                || step as u64,
                |v| *v = step as u64,
            );
            prop_assert!(
                map.len() <= bound,
                "step {step}: population {} over bound {bound}",
                map.len()
            );
            prop_assert!(
                map.contains_key(&key),
                "step {step}: upserted key {key} was evicted by its own upsert"
            );
        }
        prop_assert_eq!(map.global_eviction_folds(), 0);
    }

    /// A hot key interleaved with an address-cycling stream: every one
    /// of the hot key's updates lands (none are lost to eviction), even
    /// though the cycling keys keep every shard at capacity.
    #[test]
    fn hot_key_updates_are_never_lost(
        cold_between in proptest::collection::vec(0u32..1_000, 1..120),
        per_shard in 1usize..5,
    ) {
        let map: ShardedMap<u32, u64> = ShardedMap::new(4);
        let hot = 1_000_000u32;
        let mut expected = 0u64;
        for (i, &cold) in cold_between.iter().enumerate() {
            // Cycle a cold address (distinct per step, attacker-style).
            map.update_or_insert_evicting_in_shard(
                cold + (i as u32) * 1_000,
                per_shard,
                |v: &u64| *v,
                || 0,
                |_| {},
            );
            // The hot client's update must survive regardless.
            map.update_or_insert_evicting_in_shard(
                hot,
                per_shard,
                |v: &u64| *v,
                || 0,
                |v| *v += 1,
            );
            expected += 1;
            // Re-created after an eviction, the count may reset — but
            // only if the hot key was evicted by a *cold* insert landing
            // on its shard, never by its own upsert.
            let current = map.get_cloned(&hot).expect("hot key present after upsert");
            prop_assert!(current <= expected);
            expected = current;
        }
    }
}

/// Regression: an address-cycling insert storm at capacity — the exact
/// workload that made the retired global scan an O(capacity) amplifier —
/// performs zero cross-shard folds and never scans more than the
/// per-shard capacity per insert.
#[test]
fn address_cycling_storm_never_folds_across_shards() {
    let layout = ShardLayout::bounded(4_096, Some(8), DEFAULT_MAX_SCAN);
    let map: ShardedMap<u32, u64> = ShardedMap::new(layout.shard_count);
    const STORM: u32 = 50_000;
    for i in 0..STORM {
        map.update_or_insert_evicting_in_shard(
            i,
            layout.per_shard_capacity,
            |v: &u64| *v,
            || i as u64,
            |_| {},
        );
    }
    assert!(map.len() <= layout.population_bound());
    assert_eq!(
        map.global_eviction_folds(),
        0,
        "the production eviction path folded over the whole map"
    );
    assert!(
        map.eviction_scan_steps() <= STORM as u64 * layout.per_shard_capacity as u64,
        "scans exceeded the per-insert bound: {} steps over {} inserts (per-shard cap {})",
        map.eviction_scan_steps(),
        STORM,
        layout.per_shard_capacity
    );
    // The storm really did drive the eviction path (table at capacity).
    assert!(map.eviction_scan_steps() > 0);
}

/// The same storm through the retired global path, as contrast: it is
/// counted, which is how the production tables prove they never use it.
/// The retired scan itself only compiles under `bench-baselines`
/// (`cargo test -p aipow-shard --features bench-baselines`).
#[cfg(feature = "bench-baselines")]
#[test]
fn global_path_is_counted_for_contrast() {
    let map: ShardedMap<u32, u64> = ShardedMap::new(4);
    for i in 0..64u32 {
        map.update_or_insert_evicting(i, 16, |v| *v, || i as u64, |_| {});
    }
    assert!(map.global_eviction_folds() >= (64 - 16) as u64);
}
