//! The shared bounded-eviction layer for capacity-limited sharded maps.
//!
//! Three production tables evict on the admission/solution hot paths —
//! the rate limiter (least-recently-refilled bucket), the cost ledger
//! (lowest-cost account), and the online behavior recorder
//! (least-recently-seen sketch, held forward by abuse weight). All three
//! used to differ only in their victim *score*, yet two of them ran a
//! global victim scan folding over every shard per insert: an
//! O(capacity) amplifier driven by exactly the traffic the framework is
//! designed to repel (an address-cycling flood inserts a fresh key per
//! request, at capacity, forever).
//!
//! This module is the machinery they now share:
//!
//! - [`EvictionPolicy`] names the victim score. Any `Fn(&V) -> S` also
//!   works via a blanket impl, so one-off call sites and tests need no
//!   named type.
//! - [`ShardLayout::bounded`] turns `(capacity, requested shards,
//!   max_scan)` into a shard count and per-shard capacity such that the
//!   victim scan — which runs under a single shard lock in
//!   [`ShardedMap::update_or_insert_evicting_in_shard`] — never visits
//!   more than `max_scan` entries, while the total population bound
//!   never exceeds the configured capacity.
//!
//! The worst-case insert cost is therefore a constant (`max_scan`,
//! default [`DEFAULT_MAX_SCAN`]) independent of table size: growing
//! `max_clients` grows the shard count, not the scan.
//!
//! [`ShardedMap::update_or_insert_evicting_in_shard`]: crate::ShardedMap::update_or_insert_evicting_in_shard

/// Default bound on the entries an eviction victim scan may visit, and
/// therefore on the work one insert-at-capacity can cost while holding a
/// shard lock. [`ShardLayout::bounded`] raises the shard count as needed
/// to honor it.
pub const DEFAULT_MAX_SCAN: usize = 512;

/// Floor on the per-shard capacity [`ShardLayout::bounded`] will
/// produce (except when `max_scan` is explicitly tighter): the shard
/// count is *reduced* for small tables rather than letting per-shard
/// capacity degenerate toward 1. A shard that holds only one or two
/// entries turns capacity eviction into mutual displacement — two
/// clients hash-colliding on a shard would evict each other on every
/// insert, resetting rate-limiter buckets (and their token debits) and
/// defeating the ledger's heavy-hitter retention. Eight entries keeps
/// the victim choice meaningful while still letting tiny tables shard.
pub const MIN_PER_SHARD: usize = 8;

/// Names the victim score for capacity eviction: when a shard is full,
/// the entry with the **smallest** score is evicted.
///
/// Implemented by the production policies (the rate limiter's
/// least-recently-refilled, the ledger's lowest-cost, the recorder's
/// least-recently-seen) and, via the blanket impl, by any closure
/// `Fn(&V) -> S` with `S: PartialOrd + Copy`.
pub trait EvictionPolicy<V> {
    /// The comparable score; smallest is evicted first.
    type Score: PartialOrd + Copy;

    /// Scores one entry. Called under the shard lock during a victim
    /// scan, so it must be cheap and must not touch other shards.
    fn score(&self, value: &V) -> Self::Score;
}

impl<V, S: PartialOrd + Copy, F: Fn(&V) -> S> EvictionPolicy<V> for F {
    type Score = S;

    fn score(&self, value: &V) -> S {
        self(value)
    }
}

/// A shard count and per-shard capacity satisfying the scan bound.
///
/// Produced by [`ShardLayout::bounded`]; consumed by the capacity-bounded
/// tables when constructing their [`ShardedMap`](crate::ShardedMap) and
/// enforcing eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLayout {
    /// Number of shards (always a power of two).
    pub shard_count: usize,
    /// Capacity bound enforced per shard; the victim scan visits at most
    /// this many entries.
    pub per_shard_capacity: usize,
}

impl ShardLayout {
    /// Chooses a shard count and per-shard capacity for a table of
    /// `capacity` total entries such that no eviction scan exceeds
    /// `max_scan` entries.
    ///
    /// The selection is bounded on both sides, mirroring what the
    /// behavior recorder proved out first:
    ///
    /// - at least `capacity / max_scan` shards (rounded up to a power of
    ///   two), raising an explicit request if necessary, so the victim
    ///   scan stays within `max_scan` under one lock — this bound always
    ///   wins over the others;
    /// - at most `capacity / MIN_PER_SHARD` shards (and never more than
    ///   `capacity`), *reducing* an oversized request or machine default
    ///   so per-shard capacity does not degenerate toward 1 — a
    ///   one-entry shard turns eviction into mutual displacement (two
    ///   colliding clients would evict each other on every insert,
    ///   resetting rate-limiter buckets mid-debit); the floor relaxes to
    ///   `max_scan` itself when the caller explicitly asked for a scan
    ///   tighter than [`MIN_PER_SHARD`];
    /// - the total population bound `per_shard_capacity × shard_count`
    ///   never exceeds `capacity`, and `capacity` itself is clamped to
    ///   what [`MAX_SHARDS`](crate::MAX_SHARDS) shards can honor
    ///   (`MAX_SHARDS × max_scan`) rather than silently stretching the
    ///   scan.
    ///
    /// `requested_shards = None` starts from the machine default
    /// ([`default_shard_count`](crate::default_shard_count)); the
    /// scan-bound minimum is rounded *up* to a power of two before the
    /// final floor, because flooring a non-power-of-two minimum (e.g.
    /// 586 → 512) would quietly re-break the bound.
    ///
    /// Zero `capacity` or `max_scan` are treated as 1 — layouts must
    /// always be usable, and the callers' constructors reject zero
    /// capacities loudly where that is a configuration error.
    pub fn bounded(capacity: usize, requested_shards: Option<usize>, max_scan: usize) -> Self {
        let max_scan = max_scan.max(1);
        let capacity = capacity
            .max(1)
            .min(crate::MAX_SHARDS.saturating_mul(max_scan));
        let scan_min = crate::round_shards(capacity.div_ceil(max_scan));
        let per_shard_floor = MIN_PER_SHARD.min(max_scan);
        let floor_cap = (capacity / per_shard_floor).max(1);
        let requested = requested_shards.unwrap_or_else(crate::default_shard_count);
        // Order matters: the per-shard floor caps the request, then the
        // scan bound re-raises it (the scan bound always wins), and the
        // capacity clamp keeps shards ≤ entries.
        let shard_count = crate::floor_shards(requested.min(floor_cap).max(scan_min).min(capacity));
        ShardLayout {
            shard_count,
            per_shard_capacity: (capacity / shard_count).max(1),
        }
    }

    /// The hard bound on total population this layout enforces
    /// (`per_shard_capacity × shard_count`); always ≤ the capacity given
    /// to [`bounded`](Self::bounded).
    pub fn population_bound(&self) -> usize {
        self.per_shard_capacity * self.shard_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MAX_AUTO_SHARDS, MAX_SHARDS};

    #[test]
    fn layout_honors_scan_bound_for_any_capacity() {
        for capacity in [1usize, 7, 512, 513, 4_096, 65_536, 1_000_000, 100_000_000] {
            for requested in [None, Some(1), Some(2), Some(64), Some(MAX_SHARDS)] {
                let layout = ShardLayout::bounded(capacity, requested, DEFAULT_MAX_SCAN);
                assert!(
                    layout.per_shard_capacity <= DEFAULT_MAX_SCAN,
                    "capacity {capacity} requested {requested:?}: scan {}",
                    layout.per_shard_capacity
                );
                assert!(layout.shard_count.is_power_of_two());
                assert!(layout.population_bound() <= capacity.max(1));
            }
        }
    }

    #[test]
    fn layout_never_outnumbers_capacity_with_shards() {
        // A tiny table with an oversized shard request collapses to one
        // shard holding the whole capacity — never to one-entry shards.
        let layout = ShardLayout::bounded(8, Some(64), DEFAULT_MAX_SCAN);
        assert_eq!(layout.shard_count, 1);
        assert_eq!(layout.per_shard_capacity, 8);
    }

    #[test]
    fn layout_keeps_per_shard_capacity_above_the_floor() {
        // Regression: small capacities on many-core hosts (large default
        // shard counts) must not degenerate to per-shard capacity 1 —
        // two clients colliding on such a shard would evict each other
        // on every insert, resetting limiter buckets mid-debit.
        for (capacity, requested) in [
            (100, Some(64)),
            (100, None),
            (64, Some(256)),
            (1_000, Some(MAX_SHARDS)),
        ] {
            let layout = ShardLayout::bounded(capacity, requested, DEFAULT_MAX_SCAN);
            assert!(
                layout.per_shard_capacity >= MIN_PER_SHARD.min(capacity),
                "capacity {capacity} requested {requested:?}: per-shard {}",
                layout.per_shard_capacity
            );
        }
        // An explicitly tighter max_scan wins over the floor: the caller
        // asked for scans that short.
        let tight = ShardLayout::bounded(100, Some(64), 2);
        assert!(tight.per_shard_capacity <= 2);
    }

    #[test]
    fn layout_raises_shards_to_bound_the_scan() {
        // 1 Mi entries at max_scan 512 need ≥ 2048 shards even when the
        // caller asked for 2.
        let layout = ShardLayout::bounded(1 << 20, Some(2), 512);
        assert!(layout.shard_count >= 2_048);
        assert!(layout.per_shard_capacity <= 512);
    }

    #[test]
    fn layout_respects_custom_max_scan() {
        let tight = ShardLayout::bounded(4_096, Some(1), 64);
        assert!(tight.per_shard_capacity <= 64);
        assert!(tight.shard_count >= 64);
        let loose = ShardLayout::bounded(4_096, Some(1), 4_096);
        assert_eq!(loose.shard_count, 1);
        assert_eq!(loose.per_shard_capacity, 4_096);
    }

    #[test]
    fn layout_clamps_pathological_inputs() {
        let layout = ShardLayout::bounded(usize::MAX, Some(usize::MAX), usize::MAX);
        assert!(layout.shard_count <= MAX_SHARDS);
        let zero = ShardLayout::bounded(0, Some(0), 0);
        assert_eq!(zero.shard_count, 1);
        assert_eq!(zero.per_shard_capacity, 1);
    }

    #[test]
    fn default_request_stays_modest_for_small_tables() {
        let layout = ShardLayout::bounded(1 << 20, None, DEFAULT_MAX_SCAN);
        assert!(layout.shard_count >= (1 << 20) / DEFAULT_MAX_SCAN);
        // Small tables keep the automatic count, clamped by capacity.
        let small = ShardLayout::bounded(64, None, DEFAULT_MAX_SCAN);
        assert!(small.shard_count <= 64);
        assert!(small.shard_count <= MAX_AUTO_SHARDS);
    }

    #[test]
    fn closures_are_eviction_policies() {
        fn takes_policy<V, P: EvictionPolicy<V>>(policy: P, v: &V) -> P::Score {
            policy.score(v)
        }
        assert_eq!(takes_policy(|v: &u64| *v, &7u64), 7);
    }
}
