//! Sharded concurrency primitives for per-client hot-path state.
//!
//! Every piece of per-client state on the admission path — replay seeds,
//! feature vectors, token buckets, the cost ledger, the audit log — is
//! keyed by something that distributes well (an IP, a random seed). A
//! single global lock over such a map serializes clients that have
//! nothing to do with each other; under DoS-scale load with a worker per
//! core, the lock *is* the bottleneck. The standard production answer is
//! to split the state into `2^k` shards and pick the shard by hashing the
//! key, so independent clients contend only when they collide on a shard.
//!
//! Two layers are provided:
//!
//! - [`Sharded<S>`] — a fixed, power-of-two array of mutex-protected
//!   shard states with keyed-hash shard selection. The shard state `S` is
//!   arbitrary, so structures with auxiliary per-shard bookkeeping (FIFO
//!   eviction queues, ring buffers, counters) shard without giving up
//!   their invariants.
//! - [`ShardedMap<K, V>`] — the common case: a sharded `HashMap` with a
//!   lock-free global length counter and `retain`/`fold` support for
//!   eviction sweeps and metrics.
//!
//! Capacity-bounded tables layer the [`eviction`] module on top: an
//! [`EvictionPolicy`] names the victim score, [`ShardLayout::bounded`]
//! sizes the shard count so no victim scan exceeds the configured
//! `max_scan`, and
//! [`ShardedMap::update_or_insert_evicting_in_shard`] runs the whole
//! upsert-with-eviction under one shard lock.
//!
//! This crate sits below `aipow-pow` and `aipow-core` in the dependency
//! graph so both can share one implementation; `aipow-core` re-exports it
//! as its public concurrency surface.
//!
//! # Example
//!
//! ```
//! use aipow_shard::ShardedMap;
//!
//! let map: ShardedMap<u64, u64> = ShardedMap::new(8);
//! assert_eq!(map.shard_count(), 8);
//! map.insert(1, 10);
//! map.insert(2, 20);
//! map.with_mut(&1, |v| *v += 5);
//! assert_eq!(map.get_cloned(&1), Some(15));
//! assert_eq!(map.len(), 2);
//! assert_eq!(map.fold(0, |acc, _, v| acc + v), 35);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eviction;

pub use eviction::{EvictionPolicy, ShardLayout, DEFAULT_MAX_SCAN};

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};

/// The crate's synchronization and hashing primitives. Under the
/// `loom-model` feature they swap to the vendored `loom` shims, whose
/// scheduler explores the interleavings of every access — and hashing
/// becomes deterministic, because the model checker replays schedules
/// and randomized shard selection would make replay diverge.
#[cfg(not(feature = "loom-model"))]
mod sync {
    pub(crate) use parking_lot::Mutex;
    pub(crate) use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    /// Keyed hasher for shard selection: randomly seeded per instance
    /// (see [`Sharded::shard_index`](crate::Sharded::shard_index)).
    pub(crate) type SelectState = std::collections::hash_map::RandomState;
    /// Hasher state for the per-shard `HashMap`s.
    pub(crate) type MapState = std::collections::hash_map::RandomState;
}
#[cfg(feature = "loom-model")]
mod sync {
    pub(crate) use loom::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    pub(crate) use loom::sync::Mutex;
    /// Deterministic (fixed-seed) hashers: model replay requires
    /// identical shard selection and iteration order on every run.
    pub(crate) type SelectState =
        std::hash::BuildHasherDefault<std::collections::hash_map::DefaultHasher>;
    pub(crate) type MapState =
        std::hash::BuildHasherDefault<std::collections::hash_map::DefaultHasher>;
}

use sync::{AtomicU64, AtomicUsize, Mutex, Ordering};

/// The per-shard table type (deterministically hashed under
/// `loom-model`; std's randomly-seeded `HashMap` otherwise).
type Shard<K, V> = HashMap<K, V, sync::MapState>;

/// Upper bound on the automatically chosen shard count. Beyond this the
/// per-shard win is noise while `fold`/`len` sweeps keep getting slower.
pub const MAX_AUTO_SHARDS: usize = 256;

/// Hard upper bound on any shard count, automatic or explicit. Shards
/// cost memory (a cache line each) and sweep time; a count beyond this
/// is always a configuration mistake, and clamping it keeps a
/// pathological request (e.g. `1 << 40`) from aborting on allocation or
/// overflowing `next_power_of_two`.
pub const MAX_SHARDS: usize = 1 << 16;

/// Pads each shard to its own cache line so neighbouring shard locks do
/// not false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct CachePadded<T>(T);

/// The default shard count: four times the machine's available
/// parallelism (so hash collisions rarely stack all workers on one
/// shard), rounded up to a power of two and clamped to
/// [`MAX_AUTO_SHARDS`].
pub fn default_shard_count() -> usize {
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    (parallelism * 4).next_power_of_two().min(MAX_AUTO_SHARDS)
}

/// Rounds a requested shard count to the nearest power of two at or above
/// it (minimum 1, maximum [`MAX_SHARDS`]), which keeps shard selection a
/// mask instead of a division.
pub fn round_shards(requested: usize) -> usize {
    requested.clamp(1, MAX_SHARDS).next_power_of_two()
}

/// Rounds a requested shard count to the nearest power of two at or
/// *below* it (minimum 1, maximum [`MAX_SHARDS`]). Used by
/// capacity-bounded structures whose automatic selection must never
/// shrink per-shard capacity under its floor.
pub fn floor_shards(requested: usize) -> usize {
    let requested = requested.clamp(1, MAX_SHARDS);
    if requested.is_power_of_two() {
        requested
    } else {
        requested.next_power_of_two() / 2
    }
}

/// A fixed array of mutex-protected shard states with keyed-hash shard
/// selection.
///
/// The shard count is rounded up to a power of two at construction.
/// Every key deterministically maps to one shard, so any operation that
/// touches a single key is atomic with respect to that key. Operations
/// over all shards (`fold`, `for_each_shard`) lock shards one at a time
/// and therefore see each shard at a slightly different instant — fine
/// for metrics and eviction scans, not a consistent global snapshot.
///
/// ```
/// use aipow_shard::Sharded;
///
/// // Four shards, each an independent counter.
/// let counters: Sharded<u64> = Sharded::new(4, |_| 0);
/// counters.with_key(&"client-a", |c| *c += 1);
/// assert_eq!(counters.fold(0, |acc, c| acc + *c), 1);
/// ```
pub struct Sharded<S> {
    shards: Box<[CachePadded<Mutex<S>>]>,
    mask: u64,
    hasher: sync::SelectState,
}

impl<S> Sharded<S> {
    /// Creates `shard_count` shards (rounded up to a power of two), each
    /// initialized by `init(shard_index)`.
    pub fn new(shard_count: usize, mut init: impl FnMut(usize) -> S) -> Self {
        let count = round_shards(shard_count);
        let shards: Box<[CachePadded<Mutex<S>>]> = (0..count)
            .map(|i| CachePadded(Mutex::new(init(i))))
            .collect();
        Sharded {
            shards,
            mask: (count - 1) as u64,
            hasher: sync::SelectState::default(),
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` maps to. Stable for the lifetime of this
    /// instance, but *randomly keyed per instance* (like `HashMap`):
    /// shard keys are often attacker-chosen (source IPs), and a fixed
    /// hash key would let an attacker precompute keys that all collide
    /// on one shard, restoring the global-lock convoy sharding exists to
    /// remove.
    pub fn shard_index<K: Hash + ?Sized>(&self, key: &K) -> usize {
        (self.hasher.hash_one(key) & self.mask) as usize
    }

    /// Locks the shard for `key` and runs `f` on its state.
    pub fn with_key<K: Hash + ?Sized, R>(&self, key: &K, f: impl FnOnce(&mut S) -> R) -> R {
        self.with_index(self.shard_index(key), f)
    }

    /// Locks shard `index` (modulo the shard count) and runs `f`.
    pub fn with_index<R>(&self, index: usize, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.shards[index & self.mask as usize].0.lock())
    }

    /// Folds over all shards, locking them one at a time in index order.
    pub fn fold<A>(&self, init: A, mut f: impl FnMut(A, &mut S) -> A) -> A {
        let mut acc = init;
        for shard in self.shards.iter() {
            acc = f(acc, &mut shard.0.lock());
        }
        acc
    }

    /// Runs `f` on every shard state, locking one shard at a time.
    pub fn for_each_shard(&self, mut f: impl FnMut(&mut S)) {
        for shard in self.shards.iter() {
            f(&mut shard.0.lock());
        }
    }
}

impl<S: std::fmt::Debug> std::fmt::Debug for Sharded<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sharded")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

/// A concurrent map sharded over [`Sharded`] `HashMap`s, with a lock-free
/// global length counter.
///
/// Single-key operations lock exactly one shard. `len()` is an atomic
/// read. Whole-map operations (`retain`, `fold`, `clear`) visit shards
/// sequentially.
///
/// The length counter is exact with respect to completed operations: every
/// insert/remove adjusts it while still holding the owning shard's lock,
/// so a quiescent map always reports the true total.
#[derive(Debug)]
pub struct ShardedMap<K, V> {
    inner: Sharded<Shard<K, V>>,
    len: AtomicUsize,
    /// Entries examined by in-shard eviction victim scans, cumulative.
    /// An insert storm at capacity advances this by at most the
    /// per-shard capacity per insert; see
    /// [`eviction_scan_steps`](Self::eviction_scan_steps).
    eviction_scanned: AtomicU64,
    /// Whole-map victim folds performed by the retired global-scan
    /// eviction path, cumulative. Zero on every production hot path;
    /// see [`global_eviction_folds`](Self::global_eviction_folds).
    global_folds: AtomicU64,
}

impl<K: Hash + Eq, V> ShardedMap<K, V> {
    /// Creates a map with `shard_count` shards (rounded up to a power of
    /// two).
    pub fn new(shard_count: usize) -> Self {
        ShardedMap {
            inner: Sharded::new(shard_count, |_| Shard::default()),
            len: AtomicUsize::new(0),
            eviction_scanned: AtomicU64::new(0),
            global_folds: AtomicU64::new(0),
        }
    }

    /// Creates a map with [`default_shard_count`] shards.
    pub fn with_default_shards() -> Self {
        Self::new(default_shard_count())
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    /// Number of entries (atomic read, no locking).
    pub fn len(&self) -> usize {
        // relaxed: point-in-time read; adjustments are serialized per
        // shard lock
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts `value` under `key`, returning any previous value.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        let index = self.inner.shard_index(&key);
        self.inner.with_index(index, |shard| {
            let prev = shard.insert(key, value);
            if prev.is_none() {
                // relaxed: adjusted under the owning shard's lock, which
                // publishes it
                self.len.fetch_add(1, Ordering::Relaxed);
            }
            prev
        })
    }

    /// Removes and returns the value under `key`, if any.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.inner.with_key(key, |shard| {
            let prev = shard.remove(key);
            if prev.is_some() {
                // relaxed: adjusted under the owning shard's lock, which
                // publishes it
                self.len.fetch_sub(1, Ordering::Relaxed);
            }
            prev
        })
    }

    /// Removes `key` only if its current value satisfies `pred`. Returns
    /// the removed value. Used by evictors to avoid a time-of-check /
    /// time-of-use race: the predicate re-checks the victim under the
    /// shard lock.
    pub fn remove_if(&self, key: &K, pred: impl FnOnce(&V) -> bool) -> Option<V> {
        self.inner.with_key(key, |shard| {
            if shard.get(key).is_some_and(pred) {
                let prev = shard.remove(key);
                if prev.is_some() {
                    // relaxed: adjusted under the owning shard's lock,
                    // which publishes it
                    self.len.fetch_sub(1, Ordering::Relaxed);
                }
                prev
            } else {
                None
            }
        })
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.inner.with_key(key, |shard| shard.contains_key(key))
    }

    /// A clone of the value under `key`, if any.
    pub fn get_cloned(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.inner.with_key(key, |shard| shard.get(key).cloned())
    }

    /// Runs `f` on the value under `key`, if present, holding the shard
    /// lock for the duration. Returns `None` if the key is absent.
    pub fn with_mut<R>(&self, key: &K, f: impl FnOnce(&mut V) -> R) -> Option<R> {
        self.inner.with_key(key, |shard| shard.get_mut(key).map(f))
    }

    /// Runs `f` on the value under `key`, inserting `init()` first if the
    /// key is absent. The whole operation holds the shard lock, so
    /// concurrent callers for the same key serialize and exactly one
    /// `init` runs.
    pub fn with_or_insert_with<R>(
        &self,
        key: K,
        init: impl FnOnce() -> V,
        f: impl FnOnce(&mut V) -> R,
    ) -> R {
        let index = self.inner.shard_index(&key);
        self.inner.with_index(index, |shard| {
            let value = shard.entry(key).or_insert_with(|| {
                // relaxed: adjusted under the owning shard's lock, which
                // publishes it
                self.len.fetch_add(1, Ordering::Relaxed);
                init()
            });
            f(value)
        })
    }

    /// **Retired from production — tests and benchmark baseline only.**
    /// Runs `update` on the value under `key`, inserting `init()` first
    /// if absent — evicting the *globally* minimum-`score` entry when
    /// the insert would grow the map past `max_entries`.
    ///
    /// This was the original eviction protocol for the capacity-bounded
    /// per-client tables (rate limiter, cost ledger). Its victim scan
    /// folds over **every shard** (with up to 8 retries under racing
    /// updates), so at capacity under an address-cycling flood each
    /// insert costs O(capacity) — the exact traffic those tables exist
    /// to repel became a per-request amplifier. Every production call
    /// site now uses the bounded
    /// [`update_or_insert_evicting_in_shard`](Self::update_or_insert_evicting_in_shard)
    /// instead (see `ShardLayout::bounded` for how capacities map onto
    /// shard counts). The method is kept only so the `eviction_flood`
    /// benchmark and the parity tests can measure the retired semantics
    /// against the bounded ones; new code must not call it. Calls are
    /// counted in [`global_eviction_folds`](Self::global_eviction_folds)
    /// so tests can assert the production paths never come through here.
    ///
    /// Semantics (kept for the parity tests):
    ///
    /// - fast path: if `key` exists, only its shard is locked;
    /// - the eviction scan locks shards one at a time (never nesting two
    ///   shard locks) and **skips `key` itself**, so a racing thread's
    ///   freshly created entry for the same key is never thrown away;
    /// - the victim is re-checked under its shard lock (`score`
    ///   unchanged) before removal, so a concurrent update cannot be
    ///   discarded;
    /// - eviction loops until the map is back under `max_entries`, with
    ///   a bounded number of failed victim re-checks, accepting a
    ///   transient overshoot instead of stalling the caller.
    ///
    /// Ties on the minimum score evict the first entry encountered in
    /// shard-index order.
    ///
    /// Compiled only for this crate's own tests and under the
    /// `bench-baselines` feature (enabled by `aipow-bench` for the
    /// `eviction_flood` baseline), so production dependents cannot link
    /// against the retired scan at all.
    #[cfg(any(test, feature = "bench-baselines"))]
    pub fn update_or_insert_evicting<R, S: PartialOrd + Copy>(
        &self,
        key: K,
        max_entries: usize,
        score: impl Fn(&V) -> S,
        init: impl FnOnce() -> V,
        update: impl FnOnce(&mut V) -> R,
    ) -> R
    where
        K: Copy,
    {
        // `update` must survive an uncalled fast path, so thread it
        // through an Option the closure takes from.
        let mut update = Some(update);
        if let Some(result) = self.with_mut(&key, |v| {
            (update
                .take()
                .expect("single-call invariant: update is taken at most once"))(v)
        }) {
            return result;
        }
        let update = update
            .take()
            .expect("fast-path invariant: a miss leaves update unconsumed");

        let mut failed_rechecks = 0;
        while self.len() >= max_entries && failed_rechecks < 8 {
            // relaxed: monotonic stats counter; readers tolerate lag
            self.global_folds.fetch_add(1, Ordering::Relaxed);
            let victim = self.fold(None, |acc: Option<(K, S)>, k, v| {
                if *k == key {
                    return acc;
                }
                let s = score(v);
                match acc {
                    Some((_, best)) if best <= s => acc,
                    _ => Some((*k, s)),
                }
            });
            match victim {
                Some((victim, observed)) => {
                    if self.remove_if(&victim, |v| score(v) == observed).is_none() {
                        // A racing thread updated or removed the victim
                        // between the scan and the re-check; rescan.
                        failed_rechecks += 1;
                    }
                }
                // Nothing evictable but `key` itself: insert anyway
                // (bounded overshoot beats a lost update).
                None => break,
            }
        }
        self.with_or_insert_with(key, init, update)
    }

    /// Visits `items` grouped by shard, locking each touched shard
    /// **once per call** regardless of how many items land on it — the
    /// batched counterpart of the single-key operations, used by the
    /// batch admission paths to amortize lock acquisitions across a
    /// request group. Items are stably grouped, so two items for the
    /// same key are visited in their original relative order; `f`
    /// receives a [`ShardHandle`] exposing the same per-entry protocols
    /// as the single-key methods (mutate-if-present, bounded-eviction
    /// upsert) with the map's length and scan bookkeeping intact.
    ///
    /// Shards are locked one at a time (never two together), in
    /// ascending shard-index order — the same no-nesting discipline as
    /// every other operation on this map.
    pub fn with_shards_grouped<T>(
        &self,
        items: Vec<(K, T)>,
        mut f: impl FnMut(&mut ShardHandle<'_, K, V>, K, T),
    ) {
        let mut tagged: Vec<(usize, K, T)> = items
            .into_iter()
            .map(|(key, item)| (self.inner.shard_index(&key), key, item))
            .collect();
        // Stable: same-shard items keep their original relative order.
        tagged.sort_by_key(|(index, _, _)| *index);
        let mut iter = tagged.into_iter().peekable();
        while let Some((index, key, item)) = iter.next() {
            self.inner.with_index(index, |shard| {
                let mut handle = ShardHandle {
                    shard,
                    len: &self.len,
                    eviction_scanned: &self.eviction_scanned,
                };
                f(&mut handle, key, item);
                while iter.peek().is_some_and(|(next, _, _)| *next == index) {
                    let (_, key, item) = iter
                        .next()
                        .expect("iterator invariant: peek guaranteed a next item");
                    f(&mut handle, key, item);
                }
            });
        }
    }

    /// The production eviction protocol for capacity-bounded per-client
    /// tables (rate limiter, cost ledger, behavior recorder): runs
    /// `update` on the value under `key`, inserting `init()` first if
    /// absent — and when the insert would grow the key's shard past
    /// `max_entries_per_shard`, evicts that shard's minimum-score entry
    /// under `policy`. The whole operation — existence check, victim
    /// scan, eviction, insert, update — runs under a **single**
    /// acquisition of the key's shard lock, which makes three guarantees
    /// structural rather than racy:
    ///
    /// - the key being upserted is never the victim (an existing key
    ///   takes the fast path; a fresh key is inserted after the scan,
    ///   under the same lock — no evict-then-reinsert window);
    /// - the victim is the shard-local minimum at the instant of
    ///   eviction (no time-of-check/time-of-use re-check needed);
    /// - the `update` (which typically advances the entry's score, e.g.
    ///   the refill timestamp) is atomic with the upsert, so a racing
    ///   evictor on the same shard can never observe the stale score.
    ///
    /// This trades the global-capacity semantics of the retired
    /// [`update_or_insert_evicting`](Self::update_or_insert_evicting)
    /// for a hard hot-path bound: the worst case touches one shard and
    /// scans at most `max_entries_per_shard` entries (counted in
    /// [`eviction_scan_steps`](Self::eviction_scan_steps)), instead of
    /// folding over every shard with retries. Total population is
    /// bounded by `max_entries_per_shard × shard_count`; keys hash
    /// uniformly, so a population at `p` of the bound keeps per-shard
    /// occupancy near `p` (the same per-shard capacity semantics as the
    /// replay guard — DESIGN.md §7.3). Use
    /// [`ShardLayout::bounded`] to pick a shard count that keeps
    /// `max_entries_per_shard` under the configured scan bound.
    ///
    /// Returns the `update` result and whether a victim was evicted
    /// (exact — the eviction happens under the same lock).
    pub fn update_or_insert_evicting_in_shard<R, P: EvictionPolicy<V>>(
        &self,
        key: K,
        max_entries_per_shard: usize,
        policy: P,
        init: impl FnOnce() -> V,
        update: impl FnOnce(&mut V) -> R,
    ) -> (R, bool)
    where
        K: Copy,
    {
        let index = self.inner.shard_index(&key);
        self.inner.with_index(index, |shard| {
            let mut handle = ShardHandle {
                shard,
                len: &self.len,
                eviction_scanned: &self.eviction_scanned,
            };
            handle.update_or_insert_evicting(key, max_entries_per_shard, policy, init, update)
        })
    }

    /// Entries examined by in-shard eviction victim scans since
    /// construction. With a [`ShardLayout::bounded`] layout this grows
    /// by at most the layout's `per_shard_capacity` (≤ the configured
    /// `max_scan`) per insert-at-capacity, independent of total
    /// capacity — the flat-cost claim the `eviction_flood` bench and the
    /// regression tests assert.
    pub fn eviction_scan_steps(&self) -> u64 {
        // relaxed: monitoring read of a stats counter; freshness not
        // required
        self.eviction_scanned.load(Ordering::Relaxed)
    }

    /// Whole-map victim folds performed by the retired global-scan
    /// eviction path since construction. Production hot paths keep this
    /// at exactly zero; the regression tests assert it.
    pub fn global_eviction_folds(&self) -> u64 {
        // relaxed: monitoring read of a stats counter; freshness not
        // required
        self.global_folds.load(Ordering::Relaxed)
    }

    /// Keeps only entries for which `f` returns `true`, sweeping shards
    /// one at a time.
    pub fn retain(&self, mut f: impl FnMut(&K, &mut V) -> bool) {
        self.inner.for_each_shard(|shard| {
            let before = shard.len();
            shard.retain(|k, v| f(k, v));
            // relaxed: adjusted under the owning shard's lock, which
            // publishes it
            self.len.fetch_sub(before - shard.len(), Ordering::Relaxed);
        });
    }

    /// Folds over every entry, locking shards one at a time in index
    /// order. Entries within one shard are visited in that shard's
    /// iteration order; the view is not a consistent global snapshot.
    pub fn fold<A>(&self, init: A, mut f: impl FnMut(A, &K, &V) -> A) -> A {
        self.inner.fold(init, |mut acc, shard| {
            for (k, v) in shard.iter() {
                acc = f(acc, k, v);
            }
            acc
        })
    }

    /// Removes all entries.
    pub fn clear(&self) {
        self.inner.for_each_shard(|shard| {
            // relaxed: adjusted under the owning shard's lock, which
            // publishes it
            self.len.fetch_sub(shard.len(), Ordering::Relaxed);
            shard.clear();
        });
    }
}

impl<K: Hash + Eq, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::with_default_shards()
    }
}

/// One locked shard of a [`ShardedMap`], handed to the callback of
/// [`ShardedMap::with_shards_grouped`]. Exposes the per-entry protocols
/// of the single-key methods while keeping the map's global length and
/// scan counters exact — callers never touch the raw `HashMap`, so the
/// bookkeeping invariants cannot be broken from outside.
#[derive(Debug)]
pub struct ShardHandle<'a, K, V> {
    shard: &'a mut Shard<K, V>,
    len: &'a AtomicUsize,
    eviction_scanned: &'a AtomicU64,
}

impl<K: Hash + Eq, V> ShardHandle<'_, K, V> {
    /// Mutable access to the value under `key`, if present in this
    /// shard. The batched counterpart of [`ShardedMap::with_mut`].
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.shard.get_mut(key)
    }

    /// The bounded-eviction upsert of
    /// [`ShardedMap::update_or_insert_evicting_in_shard`], against this
    /// already-locked shard: same victim choice, same own-key guarantee,
    /// same scan accounting — minus the per-item lock acquisition.
    pub fn update_or_insert_evicting<R, P: EvictionPolicy<V>>(
        &mut self,
        key: K,
        max_entries_per_shard: usize,
        policy: P,
        init: impl FnOnce() -> V,
        update: impl FnOnce(&mut V) -> R,
    ) -> (R, bool)
    where
        K: Clone,
    {
        if let Some(value) = self.shard.get_mut(&key) {
            return (update(value), false);
        }
        let mut evicted = false;
        if self.shard.len() >= max_entries_per_shard.max(1) {
            self.eviction_scanned
                // relaxed: monotonic stats counter; readers tolerate lag
                .fetch_add(self.shard.len() as u64, Ordering::Relaxed);
            let victim = self
                .shard
                .iter()
                .map(|(k, v)| (k, policy.score(v)))
                .reduce(|best, cand| if cand.1 < best.1 { cand } else { best })
                .map(|(k, _)| K::clone(k));
            if let Some(victim) = victim {
                self.shard.remove(&victim);
                // relaxed: adjusted under the held shard lock, which
                // publishes it
                self.len.fetch_sub(1, Ordering::Relaxed);
                evicted = true;
            }
        }
        let value = self.shard.entry(key).or_insert_with(|| {
            // relaxed: adjusted under the held shard lock, which publishes
            // it
            self.len.fetch_add(1, Ordering::Relaxed);
            init()
        });
        (update(value), evicted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        for (requested, expect) in [(0, 1), (1, 1), (2, 2), (3, 4), (5, 8), (9, 16), (16, 16)] {
            assert_eq!(ShardedMap::<u32, u32>::new(requested).shard_count(), expect);
        }
    }

    #[test]
    fn floor_shards_rounds_down() {
        for (requested, expect) in [(0, 1), (1, 1), (2, 2), (3, 2), (5, 4), (9, 8), (16, 16)] {
            assert_eq!(floor_shards(requested), expect, "floor_shards({requested})");
        }
    }

    #[test]
    fn default_shard_count_is_power_of_two_and_bounded() {
        let n = default_shard_count();
        assert!(n.is_power_of_two());
        assert!((1..=MAX_AUTO_SHARDS).contains(&n));
    }

    #[test]
    fn shard_selection_is_stable() {
        let map = ShardedMap::<u64, ()>::new(16);
        for key in 0..100u64 {
            assert_eq!(map.inner.shard_index(&key), map.inner.shard_index(&key));
            assert!(map.inner.shard_index(&key) < 16);
        }
    }

    #[test]
    fn keys_spread_across_shards() {
        let sharded: Sharded<u32> = Sharded::new(8, |_| 0);
        let mut seen = std::collections::HashSet::new();
        for key in 0..256u64 {
            seen.insert(sharded.shard_index(&key));
        }
        assert!(
            seen.len() >= 6,
            "256 keys landed on only {} shards",
            seen.len()
        );
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let map = ShardedMap::new(4);
        assert_eq!(map.insert("a", 1), None);
        assert_eq!(map.insert("a", 2), Some(1));
        assert_eq!(map.get_cloned(&"a"), Some(2));
        assert!(map.contains_key(&"a"));
        assert_eq!(map.len(), 1);
        assert_eq!(map.remove(&"a"), Some(2));
        assert_eq!(map.remove(&"a"), None);
        assert!(map.is_empty());
    }

    #[test]
    fn with_or_insert_with_runs_init_once() {
        let map = ShardedMap::new(4);
        let r1 = map.with_or_insert_with(7u64, || 100, |v| *v);
        let r2 = map.with_or_insert_with(7u64, || 999, |v| *v);
        assert_eq!((r1, r2), (100, 100));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn remove_if_respects_predicate() {
        let map = ShardedMap::new(4);
        map.insert(1u8, 10);
        assert_eq!(map.remove_if(&1, |v| *v > 50), None);
        assert_eq!(map.len(), 1);
        assert_eq!(map.remove_if(&1, |v| *v == 10), Some(10));
        assert_eq!(map.len(), 0);
        assert_eq!(map.remove_if(&1, |_| true), None);
    }

    #[test]
    fn round_and_floor_clamp_pathological_requests() {
        assert_eq!(round_shards(usize::MAX), MAX_SHARDS);
        assert_eq!(round_shards(1 << 40), MAX_SHARDS);
        assert_eq!(floor_shards(usize::MAX), MAX_SHARDS);
    }

    #[test]
    fn update_or_insert_evicting_drops_min_score_entry() {
        let map = ShardedMap::new(4);
        map.insert(1u8, 100u64);
        map.insert(2u8, 5u64);
        map.insert(3u8, 50u64);
        // At capacity 3: inserting key 4 evicts key 2 (min score).
        map.update_or_insert_evicting(4u8, 3, |v| *v, || 7, |v| *v += 1);
        assert_eq!(map.len(), 3);
        assert_eq!(map.get_cloned(&2), None);
        assert_eq!(map.get_cloned(&4), Some(8));
    }

    #[test]
    fn update_or_insert_evicting_never_evicts_own_key_or_existing() {
        let map = ShardedMap::new(4);
        map.insert(1u8, 0u64);
        // Existing key takes the fast path: no eviction even at capacity.
        map.update_or_insert_evicting(1u8, 1, |v| *v, || 99, |v| *v += 10);
        assert_eq!(map.get_cloned(&1), Some(10));
        assert_eq!(map.len(), 1);
        // A sole new key with nothing else to evict still inserts
        // (bounded overshoot rather than a lost update).
        let map: ShardedMap<u8, u64> = ShardedMap::new(4);
        map.update_or_insert_evicting(9u8, 0, |v| *v, || 1, |v| *v);
        assert_eq!(map.get_cloned(&9), Some(1));
    }

    #[test]
    fn in_shard_eviction_drops_min_score_within_one_shard() {
        // One shard makes placement deterministic.
        let map: ShardedMap<u8, u64> = ShardedMap::new(1);
        map.insert(1, 100);
        map.insert(2, 5);
        map.insert(3, 50);
        // Shard full at 3: inserting key 4 evicts key 2 (min score).
        let (result, evicted) = map.update_or_insert_evicting_in_shard(
            4u8,
            3,
            |v: &u64| *v,
            || 7,
            |v| {
                *v += 1;
                *v
            },
        );
        assert_eq!((result, evicted), (8, true));
        assert_eq!(map.len(), 3);
        assert_eq!(map.get_cloned(&2), None);
        assert_eq!(map.get_cloned(&4), Some(8));

        // Existing keys update in place without eviction even when full.
        let (result, evicted) =
            map.update_or_insert_evicting_in_shard(1u8, 3, |v: &u64| *v, || 0, |v| *v);
        assert_eq!((result, evicted), (100, false));
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn in_shard_eviction_zero_capacity_still_inserts() {
        let map: ShardedMap<u8, u64> = ShardedMap::new(1);
        // A per-shard bound of 0 is clamped to 1: the sole entry keeps
        // being replaced rather than the insert being lost.
        let (_, evicted) =
            map.update_or_insert_evicting_in_shard(1u8, 0, |v: &u64| *v, || 1, |v| *v);
        assert!(!evicted);
        let (_, evicted) =
            map.update_or_insert_evicting_in_shard(2u8, 0, |v: &u64| *v, || 2, |v| *v);
        assert!(evicted);
        assert_eq!(map.len(), 1);
        assert_eq!(map.get_cloned(&2), Some(2));
    }

    #[test]
    fn in_shard_eviction_bounds_total_population() {
        let map: ShardedMap<u32, u32> = ShardedMap::new(8);
        for i in 0..10_000u32 {
            map.update_or_insert_evicting_in_shard(i, 4, |v: &u32| *v, || i, |v| *v);
        }
        assert!(map.len() <= 4 * 8, "population {} over bound", map.len());
    }

    #[test]
    fn scan_counters_track_the_two_eviction_paths() {
        let map: ShardedMap<u32, u32> = ShardedMap::new(1);
        // Below capacity: no scans at all.
        map.update_or_insert_evicting_in_shard(1, 2, |v: &u32| *v, || 1, |v| *v);
        map.update_or_insert_evicting_in_shard(2, 2, |v: &u32| *v, || 2, |v| *v);
        assert_eq!(map.eviction_scan_steps(), 0);
        // At capacity: one bounded scan over the (2-entry) shard.
        map.update_or_insert_evicting_in_shard(3, 2, |v: &u32| *v, || 3, |v| *v);
        assert_eq!(map.eviction_scan_steps(), 2);
        // The bounded path never folds the whole map...
        assert_eq!(map.global_eviction_folds(), 0);
        // ...and the retired global path is the only thing that does.
        map.update_or_insert_evicting(4, 2, |v| *v, || 4, |v| *v);
        assert_eq!(map.global_eviction_folds(), 1);
    }

    #[test]
    fn grouped_visit_locks_each_shard_once_and_preserves_key_order() {
        let map: ShardedMap<u32, Vec<u32>> = ShardedMap::new(4);
        // Three items for key 7 interleaved with other keys: the stable
        // grouping must apply them in original order.
        let items: Vec<(u32, u32)> = vec![(7, 1), (3, 10), (7, 2), (5, 20), (7, 3)];
        map.with_shards_grouped(items, |handle, key, item| {
            let (_, evicted) = handle.update_or_insert_evicting(
                key,
                usize::MAX,
                |_: &Vec<u32>| 0u64,
                Vec::new,
                |v| v.push(item),
            );
            assert!(!evicted);
        });
        assert_eq!(map.get_cloned(&7), Some(vec![1, 2, 3]));
        assert_eq!(map.get_cloned(&3), Some(vec![10]));
        assert_eq!(map.get_cloned(&5), Some(vec![20]));
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn grouped_eviction_matches_single_key_semantics() {
        // One shard: grouped upserts at capacity evict the minimum-score
        // entry exactly as the single-key protocol does, and the length
        // and scan counters stay exact.
        let map: ShardedMap<u8, u64> = ShardedMap::new(1);
        map.insert(1, 100);
        map.insert(2, 5);
        map.insert(3, 50);
        let mut evictions = 0;
        map.with_shards_grouped(vec![(4u8, 7u64), (1u8, 1u64)], |handle, key, value| {
            let (_, evicted) =
                handle.update_or_insert_evicting(key, 3, |v: &u64| *v, || value, |v| *v += value);
            if evicted {
                evictions += 1;
            }
        });
        assert_eq!(evictions, 1);
        assert_eq!(map.len(), 3);
        assert_eq!(map.get_cloned(&2), None, "minimum-score entry evicted");
        assert_eq!(map.get_cloned(&4), Some(14));
        assert_eq!(
            map.get_cloned(&1),
            Some(101),
            "existing key updated in place"
        );
        assert_eq!(map.eviction_scan_steps(), 3);
        assert_eq!(map.global_eviction_folds(), 0);
    }

    #[test]
    fn grouped_get_mut_updates_only_existing_entries() {
        let map: ShardedMap<u8, u64> = ShardedMap::new(2);
        map.insert(1, 10);
        let mut missing = 0;
        map.with_shards_grouped(vec![(1u8, ()), (9u8, ())], |handle, key, ()| {
            match handle.get_mut(&key) {
                Some(v) => *v += 1,
                None => missing += 1,
            }
        });
        assert_eq!(map.get_cloned(&1), Some(11));
        assert_eq!(missing, 1);
        assert_eq!(map.len(), 1);
        // An empty batch is a no-op.
        map.with_shards_grouped(Vec::<(u8, ())>::new(), |_, _, ()| {
            panic!("callback on empty batch")
        });
    }

    #[test]
    fn retain_updates_len() {
        let map = ShardedMap::new(8);
        for i in 0..100u32 {
            map.insert(i, i);
        }
        map.retain(|_, v| *v % 2 == 0);
        assert_eq!(map.len(), 50);
        assert_eq!(map.fold(0usize, |acc, _, _| acc + 1), 50);
    }

    #[test]
    fn clear_empties_and_resets_len() {
        let map = ShardedMap::new(8);
        for i in 0..32u32 {
            map.insert(i, ());
        }
        map.clear();
        assert_eq!(map.len(), 0);
        assert_eq!(map.fold(0usize, |acc, _, _| acc + 1), 0);
    }

    #[test]
    fn fold_sees_every_entry() {
        let map = ShardedMap::new(8);
        for i in 0..50u64 {
            map.insert(i, i * 2);
        }
        let sum = map.fold(0u64, |acc, _, v| acc + v);
        assert_eq!(sum, (0..50).map(|i| i * 2).sum());
    }

    #[test]
    fn sharded_with_index_wraps() {
        let sharded: Sharded<u32> = Sharded::new(4, |i| i as u32);
        assert_eq!(sharded.with_index(0, |s| *s), 0);
        assert_eq!(sharded.with_index(5, |s| *s), 1); // 5 & 3
    }

    #[test]
    fn concurrent_len_is_exact() {
        let map = Arc::new(ShardedMap::new(16));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        map.insert(t * 1_000 + i, ());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(map.len(), 8_000);
        assert_eq!(map.fold(0usize, |acc, _, _| acc + 1), 8_000);
    }

    #[test]
    fn debug_impl_nonempty() {
        let map: ShardedMap<u8, u8> = ShardedMap::new(2);
        assert!(!format!("{map:?}").is_empty());
    }
}
