//! The `aipow` command-line binary; logic lives in the library so it stays
//! unit-testable.

#![forbid(unsafe_code)]

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = aipow_cli::dispatch(&raw) {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code);
    }
}
