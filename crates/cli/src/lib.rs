//! Command implementations for the `aipow` binary.
//!
//! The CLI wires the workspace into a deployable tool:
//!
//! ```text
//! aipow serve --addr 127.0.0.1:8471 --policy policy2 --resource /hello=world
//! aipow fetch --addr 127.0.0.1:8471 --path /hello
//! aipow solve --difficulty 16 --threads 4
//! aipow train --seed 7
//! ```
//!
//! Every command is a function from parsed [`Args`](args::Args) to a
//! `Result`, so the full surface is unit-testable without spawning the
//! binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

use core::fmt;

/// Top-level CLI failure: a message for stderr plus a process exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Suggested process exit code.
    pub exit_code: i32,
}

impl CliError {
    /// A usage error (exit code 2).
    pub fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            exit_code: 2,
        }
    }

    /// A runtime failure (exit code 1).
    pub fn runtime(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            exit_code: 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

impl From<args::ArgsError> for CliError {
    fn from(e: args::ArgsError) -> Self {
        CliError::usage(e.to_string())
    }
}

/// Usage text printed by `aipow help` and on usage errors.
pub const USAGE: &str = "\
aipow — policy-driven AI-assisted proof-of-work admission (DSN 2022 reproduction)

USAGE:
    aipow <COMMAND> [FLAGS]

COMMANDS:
    serve    serve resources behind PoW admission
             --addr <ip:port>          (default 127.0.0.1:8471)
             --policy <spec>           policy1|policy2|policy3[:eps=X]|DSL (default policy2)
             --resource <path=body>    repeatable; the resources to serve
             --key <hex32>             master key, 64 hex chars (default: random)
             --bypass <score>          admit scores below this without work
             --reactor-shards <n>      reactor threads (default: auto; alias --workers)
             --max-connections <n>     concurrent connection ceiling (default 65536)
             --per-ip-cap <n>          per-IP connection cap, 0 = off (default 4096)
             --idle-timeout <secs>     reap idle connections, 0 = off (default 30)
             --score <f>               fixed client reputation score (default 5.0)
             --max-batch <n>           admission batch-drain cap
             --lanes <n>               verify lanes: 1, 4, or 8 (alias --verify-lanes)
             --memory-hard-above <f>   route scores above this to the memory-hard puzzle
             --arena-mib <n>           memory-hard arena MiB, 1..=64 (default 8)
             --trace-sample <n>        trace 1-in-n requests, 0 disables (default 64)
             --flight-capacity <n>     flight-recorder ring capacity (default 4096)
    fetch    request a resource, solving the puzzle
             --addr <ip:port>          server address (required)
             --path <path>             resource path (default /)
             --threads <n>             solver threads (default 1)
             --strict                  use the paper's 32-bit nonce
             --count <n>               repeat the fetch n times (default 1)
    solve    generate and solve a local puzzle (microbenchmark)
             --difficulty <bits>       leading zero bits (default 16)
             --threads <n>             solver threads (default 1)
             --trials <n>              number of puzzles (default 5)
             --lanes <n>               digest lanes: 1, 4, or 8 (default 8)
             --backend <name>          sha256 | memory-hard (default sha256)
             --arena-mib <n>           memory-hard arena MiB, 1..=64 (default 8)
    train    train the DAbR model on the synthetic dataset and report quality
             --seed <n>                dataset seed (default 1)
             --overlap <f>             class overlap in [0,1] (default 0.38)
    observe  run a synthetic behavior-shift + redemption load through the
             online reputation loop and print score/difficulty trajectories
             --benign-rps <f>          benign request rate (default 1)
             --flood-rps <f>           flood request rate (default 100)
             --phase-s <f>             seconds before the behavior shift (default 30)
             --second-phase-s <f>      seconds of flood / silence (default 60)
             --half-life-ms <n>        behavioral decay half-life (default 10000)
             --prior-strength <f>      events to outweigh the prior (default 16)
             --rows <n>                trajectory rows to print (default 16)
             --remote <ip:port>        poll a live server's telemetry endpoint
                                       instead of simulating; prints headline
                                       counters and per-stage p50/p99 latency
             --poll <n>                telemetry polls before exiting (default 1)
             --poll-interval-s <f>     seconds between polls (default 2)
    help     print this message
";

/// Dispatches a full argument vector (without the program name).
///
/// # Errors
///
/// Returns [`CliError`] with a message and exit code on any failure.
pub fn dispatch(raw: &[String]) -> Result<(), CliError> {
    let command = raw.first().map(String::as_str).unwrap_or("help");
    let rest = raw.get(1..).unwrap_or(&[]);
    match command {
        "serve" => commands::serve(rest),
        "fetch" => commands::fetch(rest),
        "solve" => commands::solve(rest),
        "train" => commands::train(rest),
        "observe" => commands::observe(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::usage(format!(
            "unknown command `{other}`\n\n{USAGE}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_succeeds() {
        dispatch(&strings(&["help"])).unwrap();
        dispatch(&strings(&["--help"])).unwrap();
        dispatch(&[]).unwrap(); // no command defaults to help
    }

    #[test]
    fn unknown_command_is_usage_error() {
        let err = dispatch(&strings(&["frobnicate"])).unwrap_err();
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("frobnicate"));
    }

    #[test]
    fn subcommand_flag_errors_propagate() {
        let err = dispatch(&strings(&["fetch", "--bogus", "1"])).unwrap_err();
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn error_conversions() {
        let e: CliError = crate::args::ArgsError::Required { flag: "x".into() }.into();
        assert_eq!(e.exit_code, 2);
        assert!(!CliError::runtime("boom").to_string().is_empty());
    }
}
