//! The `serve`, `fetch`, `solve`, and `train` commands.

use crate::args::Args;
use crate::CliError;
use aipow_core::{framework::random_master_key, FrameworkBuilder, StaticFeatureSource};
use aipow_net::{PowClient, PowServer, ServerConfig};
use aipow_policy::registry;
use aipow_pow::solver::{self, SolverOptions};
use aipow_pow::{Difficulty, Issuer};
use aipow_reputation::dabr::DabrModel;
use aipow_reputation::eval::evaluate;
use aipow_reputation::model::FixedScoreModel;
use aipow_reputation::synth::DatasetSpec;
use aipow_reputation::{FeatureVector, ReputationScore};
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};
use std::sync::Arc;

/// `aipow serve` — run the PoW-fronted resource server until interrupted.
///
/// # Errors
///
/// Returns [`CliError`] on bad flags, an unresolvable policy spec, or bind
/// failure.
pub fn serve(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(
        raw.iter().cloned(),
        &[
            "addr",
            "policy",
            "resource",
            "key",
            "bypass",
            "workers",
            "reactor-shards",
            "max-connections",
            "per-ip-cap",
            "idle-timeout",
            "score",
            "max-batch",
            "lanes",
            "verify-lanes",
            "memory-hard-above",
            "arena-mib",
            "trace-sample",
            "flight-capacity",
        ],
        &[],
    )?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:8471").to_string();
    let policy_spec = args.get("policy").unwrap_or("policy2");
    let policy = registry::from_spec(policy_spec, 0)
        .map_err(|e| CliError::usage(format!("--policy: {e}")))?;

    let key = match args.get("key") {
        Some(hex) => parse_key(hex)?,
        None => random_master_key(),
    };

    // Until a flow monitor is wired in, the demo server scores every
    // client with a fixed value (configurable for experimentation).
    let score = args.get_parsed::<f64>("score", 5.0, "a score in [0,10]")?;
    let score =
        ReputationScore::new(score).map_err(|e| CliError::usage(format!("--score: {e}")))?;

    let mut builder = FrameworkBuilder::new()
        .master_key(key)
        .model(FixedScoreModel::new(score))
        .policy_boxed(policy);
    if let Some(threshold) = args.get("bypass") {
        let threshold: f64 = threshold
            .parse()
            .map_err(|_| CliError::usage("--bypass expects a number"))?;
        builder = builder.bypass_threshold(threshold);
    }
    // Backend routing: clients scoring past the threshold are issued
    // memory-hard puzzles instead of SHA-256 preimages.
    if let Some(threshold) = args.get("memory-hard-above") {
        let threshold: f64 = threshold
            .parse()
            .map_err(|_| CliError::usage("--memory-hard-above expects a number"))?;
        if !threshold.is_finite() || !(0.0..=10.0).contains(&threshold) {
            return Err(CliError::usage(
                "--memory-hard-above must be a score in [0,10]",
            ));
        }
        builder = builder.route_memory_hard_above(threshold);
    }
    if let Some(mib) = args.get("arena-mib") {
        let mib: u8 = mib
            .parse()
            .map_err(|_| CliError::usage("--arena-mib expects an integer MiB count"))?;
        if !aipow_crypto::memmix::validate_arena_mib(mib) {
            return Err(CliError::usage(format!(
                "--arena-mib must be within [{},{}]",
                aipow_crypto::memmix::MIN_ARENA_MIB,
                aipow_crypto::memmix::MAX_ARENA_MIB
            )));
        }
        builder = builder.memory_hard_arena_mib(mib);
    }
    // Tracing defaults ON for the server: 1-in-64 sampling keeps the
    // telemetry endpoint's stage histograms and the flight recorder live
    // with negligible overhead. `--trace-sample 0` disables it.
    let trace_sample = args.get_parsed::<u64>("trace-sample", 64, "an integer (0 disables)")?;
    let flight_capacity =
        args.get_parsed::<usize>("flight-capacity", 4096, "a positive integer")?;
    if trace_sample > 0 {
        if flight_capacity == 0 {
            return Err(CliError::usage(
                "--flight-capacity must be at least 1 when tracing is enabled",
            ));
        }
        builder = builder.tracer(Arc::new(aipow_trace::Tracer::new(
            aipow_trace::TraceConfig {
                sample_every: trace_sample,
                ring_capacity: flight_capacity,
                ..aipow_trace::TraceConfig::default()
            },
        )));
    }
    let framework = Arc::new(
        builder
            .build()
            .map_err(|e| CliError::runtime(e.to_string()))?,
    );

    let mut resources = HashMap::new();
    for spec in args.get_all("resource") {
        let (path, body) = spec.split_once('=').ok_or_else(|| {
            CliError::usage(format!("--resource expects path=body, got `{spec}`"))
        })?;
        resources.insert(path.to_string(), body.as_bytes().to_vec());
    }
    if resources.is_empty() {
        resources.insert("/".to_string(), b"it works".to_vec());
    }

    let reactor_shards = reactor_shards_flag(&args)?;
    let defaults = ServerConfig::default();
    let max_connections = args.get_parsed::<usize>(
        "max-connections",
        defaults.max_connections,
        "a positive integer",
    )?;
    if max_connections == 0 {
        return Err(CliError::usage("--max-connections must be at least 1"));
    }
    let per_ip_connection_cap = args.get_parsed::<usize>(
        "per-ip-cap",
        defaults.per_ip_connection_cap,
        "an integer (0 disables the per-IP cap)",
    )?;
    let idle_secs = args.get_parsed::<u64>(
        "idle-timeout",
        defaults.idle_timeout.as_secs(),
        "a whole number of seconds (0 disables idle reaping)",
    )?;
    let max_batch = args.get_parsed::<usize>(
        "max-batch",
        aipow_core::DEFAULT_MAX_BATCH,
        "a positive integer",
    )?;
    if max_batch == 0 {
        return Err(CliError::usage("--max-batch must be at least 1"));
    }
    let lanes = lanes_flag(&args)?;
    let server = PowServer::start(
        &addr,
        Arc::clone(&framework),
        Arc::new(StaticFeatureSource::new(FeatureVector::zeros())),
        resources,
        ServerConfig {
            max_connections,
            per_ip_connection_cap,
            idle_timeout: std::time::Duration::from_secs(idle_secs),
            reactor_shards,
            max_batch,
            lanes,
            ..Default::default()
        },
    )
    .map_err(|e| CliError::runtime(format!("bind {addr}: {e}")))?;

    println!(
        "serving on {} with policy `{}` (fixed client score {score}, {} verify lanes, {}); Ctrl-C to stop",
        server.local_addr(),
        framework.policy_name(),
        framework.verifier().verify_lanes(),
        if trace_sample > 0 {
            format!("tracing 1-in-{trace_sample}")
        } else {
            "tracing off".to_string()
        },
    );
    // Serve until the process is killed; print a metrics line every 10 s.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(10));
        let snap = framework.metrics().snapshot();
        println!(
            "issued {} accepted {} rejected {} bypassed {}",
            snap.challenges_issued, snap.solutions_accepted, snap.solutions_rejected, snap.bypassed
        );
    }
}

/// `aipow fetch` — request a resource, solving the returned puzzle.
///
/// # Errors
///
/// Returns [`CliError`] on bad flags, connection failure, or rejection.
pub fn fetch(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(
        raw.iter().cloned(),
        &["addr", "path", "threads", "count"],
        &["strict"],
    )?;
    let addr = args.require("addr")?.to_string();
    let path = args.get("path").unwrap_or("/").to_string();
    let threads = args.get_parsed::<usize>("threads", 1, "an integer")?;
    let count = args.get_parsed::<u32>("count", 1, "an integer")?;

    let mut client =
        PowClient::connect(&addr).map_err(|e| CliError::runtime(format!("connect {addr}: {e}")))?;
    if args.has("strict") {
        client = client.with_solver_options(SolverOptions::strict());
    }
    if threads > 1 {
        client = client.with_solver_threads(threads);
    }

    for i in 0..count {
        let report = client
            .fetch(&path)
            .map_err(|e| CliError::runtime(e.to_string()))?;
        println!(
            "[{}] {} bytes  difficulty {}  {} hashes  solve {:.3} ms  total {:.3} ms",
            i + 1,
            report.body.len(),
            report
                .difficulty
                .map(|d| d.bits().to_string())
                .unwrap_or_else(|| "bypass".into()),
            report.attempts,
            report.solve_time.as_secs_f64() * 1e3,
            report.total_time.as_secs_f64() * 1e3,
        );
    }
    Ok(())
}

/// `aipow solve` — local puzzle microbenchmark.
///
/// # Errors
///
/// Returns [`CliError`] on bad flags or an unsolvable configuration.
pub fn solve(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(
        raw.iter().cloned(),
        &[
            "difficulty",
            "threads",
            "trials",
            "lanes",
            "backend",
            "arena-mib",
        ],
        &[],
    )?;
    let bits = args.get_parsed::<u8>("difficulty", 16, "bits in [0,64]")?;
    let difficulty =
        Difficulty::new(bits).map_err(|e| CliError::usage(format!("--difficulty: {e}")))?;
    let threads = args.get_parsed::<usize>("threads", 1, "an integer")?;
    let trials = args.get_parsed::<u32>("trials", 5, "an integer")?;
    // Default to the hardware-detected kernel width; --lanes 1 forces the
    // scalar search for comparison.
    let lanes =
        args.get_parsed::<usize>("lanes", aipow_crypto::auto_lanes(), "an integer in [1,8]")?;
    if lanes == 0 || lanes > aipow_crypto::MAX_LANES {
        return Err(CliError::usage(format!(
            "--lanes must be within [1,{}]",
            aipow_crypto::MAX_LANES
        )));
    }
    let options = SolverOptions {
        lanes,
        ..Default::default()
    };
    // --backend picks the puzzle family; memory-hard puzzles take an
    // optional arena size so the microbenchmark can sweep the cost knob.
    let backend = match args.get("backend").unwrap_or("sha256") {
        "sha256" | "sha-256" => aipow_pow::BackendId::SHA256,
        "memory-hard" | "memhard" => aipow_pow::BackendId::MEMORY_HARD,
        other => {
            return Err(CliError::usage(format!(
                "--backend must be `sha256` or `memory-hard`, got `{other}`"
            )))
        }
    };
    let arena_mib = args.get_parsed::<u8>(
        "arena-mib",
        aipow_crypto::memmix::DEFAULT_ARENA_MIB,
        "an integer MiB count",
    )?;
    if !aipow_crypto::memmix::validate_arena_mib(arena_mib) {
        return Err(CliError::usage(format!(
            "--arena-mib must be within [{},{}]",
            aipow_crypto::memmix::MIN_ARENA_MIB,
            aipow_crypto::memmix::MAX_ARENA_MIB
        )));
    }

    let issuer =
        Issuer::new(&[0xC1u8; 32]).with_backend_param(aipow_pow::BackendId::MEMORY_HARD, arena_mib);
    let ip = IpAddr::V4(Ipv4Addr::new(203, 0, 113, 1));
    println!(
        "solving {trials} × {difficulty} {} puzzles with {threads} thread(s), {lanes} lane(s)",
        if backend == aipow_pow::BackendId::MEMORY_HARD {
            format!("memory-hard ({arena_mib} MiB arena)")
        } else {
            "sha256".to_string()
        },
    );
    let mut total_attempts = 0u64;
    let mut total_secs = 0f64;
    for i in 0..trials {
        let challenge = issuer.issue_backend(ip, difficulty, backend);
        let report = if threads > 1 {
            solver::solve_parallel(&challenge, ip, threads, &options)
        } else {
            solver::solve(&challenge, ip, &options)
        }
        .map_err(|e| CliError::runtime(e.to_string()))?;
        println!(
            "  [{}] nonce {:>12}  {:>9} hashes  {:>9.3} ms  {:>8.0} kH/s",
            i + 1,
            report.solution.nonce,
            report.attempts,
            report.elapsed.as_secs_f64() * 1e3,
            report.hash_rate() / 1e3,
        );
        total_attempts += report.attempts;
        total_secs += report.elapsed.as_secs_f64();
    }
    println!(
        "mean: {:.0} hashes/puzzle (theory {:.0}), aggregate {:.0} kH/s",
        total_attempts as f64 / trials as f64,
        difficulty.expected_attempts(),
        if total_secs > 0.0 {
            total_attempts as f64 / total_secs / 1e3
        } else {
            0.0
        },
    );
    Ok(())
}

/// `aipow train` — train DAbR on the synthetic dataset and report quality.
///
/// # Errors
///
/// Returns [`CliError`] on bad flags.
pub fn train(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw.iter().cloned(), &["seed", "overlap"], &[])?;
    let seed = args.get_parsed::<u64>("seed", 1, "an integer")?;
    let overlap = args.get_parsed::<f64>("overlap", 0.38, "a number in [0,1]")?;
    if !(0.0..=1.0).contains(&overlap) {
        return Err(CliError::usage("--overlap must be within [0,1]"));
    }

    let dataset = DatasetSpec::default()
        .with_seed(seed)
        .with_overlap(overlap)
        .generate();
    let (train_set, test_set) = dataset.split(0.8, seed);
    let model = DabrModel::fit(&train_set, &Default::default());
    let report = evaluate(&model, &test_set);

    println!(
        "dataset: {} train / {} test (overlap {overlap}, seed {seed})",
        train_set.len(),
        test_set.len()
    );
    println!(
        "dabr: accuracy {:.1}%  precision {:.3}  recall {:.3}  f1 {:.3}  ϵ {:.2}",
        report.accuracy * 100.0,
        report.precision,
        report.recall,
        report.f1,
        report.score_mae
    );
    println!("paper reference: accuracy ≈ 80%");
    Ok(())
}

/// `aipow observe` — run a synthetic behavior-shift + redemption load
/// through a `Framework` with the online recorder attached and print the
/// per-client score/difficulty trajectory.
///
/// # Errors
///
/// Returns [`CliError`] on bad flags.
pub fn observe(raw: &[String]) -> Result<(), CliError> {
    use aipow_netsim::behavior::{
        run_behavior_shift, run_redemption, BehaviorConfig, TrajectoryPoint,
    };

    let args = Args::parse(
        raw.iter().cloned(),
        &[
            "benign-rps",
            "flood-rps",
            "phase-s",
            "second-phase-s",
            "half-life-ms",
            "prior-strength",
            "rows",
            "remote",
            "poll",
            "poll-interval-s",
        ],
        &[],
    )?;
    if let Some(addr) = args.get("remote") {
        let polls = args.get_parsed::<u32>("poll", 1, "an integer")?.max(1);
        let interval = args.get_parsed::<f64>("poll-interval-s", 2.0, "seconds")?;
        if !interval.is_finite() || interval < 0.0 {
            return Err(CliError::usage(
                "--poll-interval-s must be a non-negative finite number",
            ));
        }
        return observe_remote(addr, polls, interval);
    }
    let defaults = BehaviorConfig::default();
    let config = BehaviorConfig {
        benign_rps: args.get_parsed("benign-rps", defaults.benign_rps, "a rate in req/s")?,
        flood_rps: args.get_parsed("flood-rps", defaults.flood_rps, "a rate in req/s")?,
        phase_s: args.get_parsed("phase-s", defaults.phase_s, "seconds")?,
        second_phase_s: args.get_parsed("second-phase-s", defaults.second_phase_s, "seconds")?,
        half_life_ms: args.get_parsed("half-life-ms", defaults.half_life_ms, "milliseconds")?,
        prior_strength: args.get_parsed(
            "prior-strength",
            defaults.prior_strength,
            "an event count",
        )?,
        ..defaults
    };
    let rows = args.get_parsed::<usize>("rows", 16, "an integer")?.max(2);
    // The scenario asserts internally; reject bad knob values here as a
    // usage error instead of a mid-run panic or a degenerate zero-event
    // run that exits 0.
    for (flag, value) in [
        ("benign-rps", config.benign_rps),
        ("flood-rps", config.flood_rps),
        ("phase-s", config.phase_s),
        ("second-phase-s", config.second_phase_s),
    ] {
        if !value.is_finite() || value <= 0.0 {
            return Err(CliError::usage(format!(
                "--{flag} must be a positive finite number, got {value}"
            )));
        }
    }
    aipow_core::OnlineSettings {
        half_life_ms: config.half_life_ms,
        prior_strength: config.prior_strength,
        ..Default::default()
    }
    .validate()
    .map_err(|e| CliError::usage(e.to_string()))?;

    fn print_sampled(label: &str, trajectory: &[TrajectoryPoint], rows: usize) {
        let stride = (trajectory.len() / rows).max(1);
        for point in trajectory.iter().step_by(stride) {
            println!(
                "  {:>8.1} s  {label:<8}  score {:>5.2}  {}",
                point.t_ms as f64 / 1_000.0,
                point.score,
                point
                    .bits
                    .map(|b| format!("difficulty {b:>2}"))
                    .unwrap_or_else(|| "bypass/quiet".into()),
            );
        }
    }

    println!(
        "behavior-shift: benign {} rps throughout; shifty client turns {} rps flooder at {} s",
        config.benign_rps, config.flood_rps, config.phase_s
    );
    let shift = run_behavior_shift(&config);
    println!("\n       t  client    score      difficulty");
    print_sampled("benign", &shift.benign, rows / 2);
    print_sampled("shifty", &shift.shifty, rows);
    println!(
        "\nshifty: {} → {} bits (+{} within {} flood requests); benign stayed {}–{} bits; \
         peak tracked {}",
        shift.baseline_bits,
        shift.peak_bits,
        shift.peak_bits.saturating_sub(shift.baseline_bits),
        shift
            .requests_to_climb_4
            .map(|n| n.to_string())
            .unwrap_or_else(|| "∞".into()),
        shift.benign_min_bits,
        shift.benign_max_bits,
        shift.peak_tracked,
    );

    println!(
        "\nredemption: flooder quiet after {} s (half-life {} ms, bypass threshold {})",
        config.phase_s, config.half_life_ms, config.bypass_threshold
    );
    let redemption = run_redemption(&config);
    print_sampled("flooder", &redemption.trajectory, rows);
    println!(
        "\npeak score {:.2}; recovered below threshold after {}; bypassed again: {}; \
         sketch pruned: {}",
        redemption.peak_score,
        redemption
            .recovered_after_half_lives
            .map(|h| format!("{h:.1} half-lives"))
            .unwrap_or_else(|| "never".into()),
        redemption.bypassed_after_recovery,
        redemption.pruned,
    );
    Ok(())
}

/// `aipow observe --remote` — poll a live server's telemetry endpoint and
/// print headline counters plus a per-stage p50/p99 latency table.
fn observe_remote(addr: &str, polls: u32, interval_s: f64) -> Result<(), CliError> {
    let mut client =
        PowClient::connect(addr).map_err(|e| CliError::runtime(format!("connect {addr}: {e}")))?;
    for poll in 0..polls {
        if poll > 0 && interval_s > 0.0 {
            std::thread::sleep(std::time::Duration::from_secs_f64(interval_s));
        }
        let snap = client
            .telemetry()
            .map_err(|e| CliError::runtime(format!("telemetry: {e}")))?;
        print_remote_snapshot(addr, poll, &snap.prometheus);
    }
    Ok(())
}

fn print_remote_snapshot(addr: &str, poll: u32, prometheus: &str) {
    let scalar = |name: &str| {
        prom_samples(prometheus, name)
            .first()
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    };
    println!(
        "[{poll}] {addr}: issued {} accepted {} rejected {} bypassed {} ({:.1} rej/s)",
        scalar("aipow_challenges_issued") as u64,
        scalar("aipow_solutions_accepted") as u64,
        scalar("aipow_solutions_rejected") as u64,
        scalar("aipow_bypassed") as u64,
        scalar("aipow_rejections_per_s"),
    );
    let p50 = prom_samples(prometheus, "aipow_stage_p50_ns");
    let p99 = prom_samples(prometheus, "aipow_stage_p99_ns");
    let items = prom_samples(prometheus, "aipow_stage_items");
    if p50.is_empty() {
        println!("  (no stage timings yet — has the server admitted a request?)");
        return;
    }
    println!(
        "  {:<18} {:>8} {:>12} {:>12}",
        "stage", "items", "p50", "p99"
    );
    for (stage, p50_ns) in &p50 {
        let find = |samples: &[(String, f64)]| {
            samples
                .iter()
                .find(|(s, _)| s == stage)
                .map(|(_, v)| *v)
                .unwrap_or(0.0)
        };
        println!(
            "  {:<18} {:>8} {:>12} {:>12}",
            stage,
            find(&items) as u64,
            format_ns(*p50_ns),
            format_ns(find(&p99)),
        );
    }
}

/// Extracts `(label-or-empty, value)` pairs for one metric family from
/// Prometheus text exposition. Matches `name value` and
/// `name{key="label"} value` lines; comments and other families are
/// skipped.
fn prom_samples(text: &str, name: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let Some(rest) = line.strip_prefix(name) else {
            continue;
        };
        let (label, value) = match rest.strip_prefix('{') {
            Some(labeled) => {
                let Some((labels, value)) = labeled.split_once("} ") else {
                    continue;
                };
                // One label per family in our exposition: key="value".
                let label = labels
                    .split_once('"')
                    .and_then(|(_, v)| v.split('"').next())
                    .unwrap_or(labels);
                (label.to_string(), value)
            }
            None => match rest.strip_prefix(' ') {
                Some(value) => (String::new(), value),
                // A longer family name sharing this prefix.
                None => continue,
            },
        };
        if let Ok(v) = value.trim().parse::<f64>() {
            out.push((label, v));
        }
    }
    out
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Reads the verification lane-count knob. The documented flag is
/// `--lanes` (one name across config, CLI, and `SolverOptions`);
/// `--verify-lanes` remains accepted as a deprecated alias. When both are
/// given they must agree.
fn lanes_flag(args: &Args) -> Result<Option<usize>, CliError> {
    let parse = |flag: &str, raw: &str| -> Result<usize, CliError> {
        let lanes: usize = raw
            .parse()
            .map_err(|_| CliError::usage(format!("--{flag} expects an integer in [1,8]")))?;
        if lanes == 0 || lanes > aipow_crypto::MAX_LANES {
            return Err(CliError::usage(format!(
                "--{flag} must be within [1,{}]",
                aipow_crypto::MAX_LANES
            )));
        }
        Ok(lanes)
    };
    let canonical = args
        .get("lanes")
        .map(|raw| parse("lanes", raw))
        .transpose()?;
    let alias = args
        .get("verify-lanes")
        .map(|raw| parse("verify-lanes", raw))
        .transpose()?;
    match (canonical, alias) {
        (Some(a), Some(b)) if a != b => Err(CliError::usage(
            "--lanes and --verify-lanes (deprecated alias) disagree; pass only --lanes",
        )),
        (Some(a), _) => Ok(Some(a)),
        (None, alias) => Ok(alias),
    }
}

/// Parses `--reactor-shards`, accepting `--workers` as a deprecated
/// alias (the knob the threaded server had; on the reactor it means
/// shard threads). `None` lets the server auto-size from the machine's
/// parallelism.
fn reactor_shards_flag(args: &Args) -> Result<Option<usize>, CliError> {
    let parse = |flag: &str, raw: &str| -> Result<usize, CliError> {
        let shards: usize = raw
            .parse()
            .map_err(|_| CliError::usage(format!("--{flag} expects a positive integer")))?;
        if shards == 0 {
            return Err(CliError::usage(format!("--{flag} must be at least 1")));
        }
        Ok(shards)
    };
    let canonical = args
        .get("reactor-shards")
        .map(|raw| parse("reactor-shards", raw))
        .transpose()?;
    let alias = args
        .get("workers")
        .map(|raw| parse("workers", raw))
        .transpose()?;
    match (canonical, alias) {
        (Some(a), Some(b)) if a != b => Err(CliError::usage(
            "--reactor-shards and --workers (deprecated alias) disagree; pass only --reactor-shards",
        )),
        (Some(a), _) => Ok(Some(a)),
        (None, alias) => Ok(alias),
    }
}

fn parse_key(hex: &str) -> Result<[u8; 32], CliError> {
    let bytes =
        aipow_crypto::hex::decode(hex).map_err(|e| CliError::usage(format!("--key: {e}")))?;
    bytes
        .try_into()
        .map_err(|_| CliError::usage("--key must be exactly 64 hex characters"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn solve_command_runs() {
        solve(&strings(&["--difficulty", "8", "--trials", "2"])).unwrap();
    }

    #[test]
    fn solve_command_runs_at_explicit_lane_widths() {
        for lanes in ["1", "4", "8"] {
            solve(&strings(&[
                "--difficulty",
                "8",
                "--trials",
                "1",
                "--lanes",
                lanes,
            ]))
            .unwrap();
        }
    }

    #[test]
    fn solve_command_runs_memory_hard_backend() {
        solve(&strings(&[
            "--difficulty",
            "4",
            "--trials",
            "1",
            "--backend",
            "memory-hard",
            "--arena-mib",
            "1",
        ]))
        .unwrap();
    }

    #[test]
    fn solve_rejects_bad_backend_flags() {
        for flags in [
            ["--backend", "scrypt"],
            ["--arena-mib", "0"],
            ["--arena-mib", "200"],
        ] {
            let err = solve(&strings(&flags)).unwrap_err();
            assert_eq!(err.exit_code, 2, "{flags:?}: {err}");
        }
    }

    #[test]
    fn lanes_flag_parses_under_both_names() {
        // Satellite knob unification: `--lanes` is the documented name;
        // `--verify-lanes` stays accepted as a deprecated alias.
        for flag in ["--lanes", "--verify-lanes"] {
            let args = Args::parse(strings(&[flag, "4"]), &["lanes", "verify-lanes"], &[]).unwrap();
            assert_eq!(lanes_flag(&args).unwrap(), Some(4), "{flag}");
        }
        let agree = Args::parse(
            strings(&["--lanes", "2", "--verify-lanes", "2"]),
            &["lanes", "verify-lanes"],
            &[],
        )
        .unwrap();
        assert_eq!(lanes_flag(&agree).unwrap(), Some(2));
        let disagree = Args::parse(
            strings(&["--lanes", "2", "--verify-lanes", "8"]),
            &["lanes", "verify-lanes"],
            &[],
        )
        .unwrap();
        let err = lanes_flag(&disagree).unwrap_err();
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("disagree"), "{}", err.message);
    }

    #[test]
    fn serve_rejects_bad_lane_flags_under_both_names() {
        for flag in ["--lanes", "--verify-lanes"] {
            for bad in ["0", "9", "wide"] {
                let err = serve(&strings(&[flag, bad])).unwrap_err();
                assert_eq!(err.exit_code, 2, "{flag} {bad}: {err}");
            }
        }
    }

    #[test]
    fn serve_rejects_bad_backend_routing_flags() {
        for flags in [
            ["--memory-hard-above", "11"],
            ["--memory-hard-above", "NaN"],
            ["--memory-hard-above", "-1"],
            ["--arena-mib", "0"],
            ["--arena-mib", "65"],
            ["--arena-mib", "big"],
        ] {
            let err = serve(&strings(&flags)).unwrap_err();
            assert_eq!(err.exit_code, 2, "{flags:?}: {err}");
        }
    }

    #[test]
    fn solve_rejects_bad_difficulty() {
        let err = solve(&strings(&["--difficulty", "90"])).unwrap_err();
        assert_eq!(err.exit_code, 2);
    }

    #[test]
    fn solve_rejects_bad_lane_widths() {
        for lanes in ["0", "9", "wide"] {
            let err = solve(&strings(&["--lanes", lanes])).unwrap_err();
            assert_eq!(err.exit_code, 2, "--lanes {lanes}");
        }
    }

    #[test]
    fn train_command_runs() {
        train(&strings(&["--seed", "3"])).unwrap();
    }

    #[test]
    fn observe_command_runs() {
        observe(&strings(&[
            "--phase-s",
            "10",
            "--second-phase-s",
            "40",
            "--rows",
            "6",
        ]))
        .unwrap();
    }

    #[test]
    fn observe_rejects_bad_rate() {
        let err = observe(&strings(&["--flood-rps", "fast"])).unwrap_err();
        assert_eq!(err.exit_code, 2);
    }

    #[test]
    fn observe_rejects_invalid_settings_as_usage_errors() {
        for flags in [
            ["--half-life-ms", "0"],
            ["--prior-strength", "-1"],
            ["--flood-rps", "0"],
            ["--flood-rps", "NaN"],
            ["--benign-rps", "-3"],
            ["--phase-s", "0"],
        ] {
            let err = observe(&strings(&flags)).unwrap_err();
            assert_eq!(err.exit_code, 2, "{flags:?}: {err}");
        }
    }

    #[test]
    fn train_rejects_bad_overlap() {
        assert!(train(&strings(&["--overlap", "1.5"])).is_err());
    }

    #[test]
    fn fetch_requires_addr() {
        let err = fetch(&strings(&["--path", "/x"])).unwrap_err();
        assert!(err.message.contains("--addr"));
    }

    #[test]
    fn key_parsing() {
        assert!(parse_key(&"ab".repeat(32)).is_ok());
        assert!(parse_key("abcd").is_err());
        assert!(parse_key(&"zz".repeat(32)).is_err());
    }

    #[test]
    fn serve_rejects_bad_trace_flags() {
        // serve() loops forever on success, so only the error paths are
        // reachable from a unit test.
        for flags in [["--trace-sample", "lots"], ["--flight-capacity", "0"]] {
            let err = serve(&strings(&flags)).unwrap_err();
            assert_eq!(err.exit_code, 2, "{flags:?}: {err}");
        }
        let err = serve(&strings(&["--trace-sample", "8", "--flight-capacity", "0"])).unwrap_err();
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("--flight-capacity"));
    }

    #[test]
    fn observe_rejects_bad_remote_flags() {
        for flags in [
            ["--remote", "127.0.0.1:1", "--poll", "two"],
            ["--remote", "127.0.0.1:1", "--poll-interval-s", "-1"],
        ] {
            let err = observe(&strings(&flags)).unwrap_err();
            assert_eq!(err.exit_code, 2, "{flags:?}: {err}");
        }
    }

    #[test]
    fn prom_samples_parses_plain_and_labeled_lines() {
        let text = "# TYPE aipow_x counter\n\
                    aipow_x 3\n\
                    aipow_x_per_s 0.5\n\
                    aipow_stage_p50_ns{stage=\"score\"} 1200\n\
                    aipow_stage_p50_ns{stage=\"verify\"} 3400\n";
        assert_eq!(prom_samples(text, "aipow_x"), vec![(String::new(), 3.0)]);
        assert_eq!(
            prom_samples(text, "aipow_x_per_s"),
            vec![(String::new(), 0.5)]
        );
        assert_eq!(
            prom_samples(text, "aipow_stage_p50_ns"),
            vec![
                ("score".to_string(), 1200.0),
                ("verify".to_string(), 3400.0)
            ]
        );
        assert!(prom_samples(text, "aipow_missing").is_empty());
    }

    #[test]
    fn format_ns_scales_units() {
        assert_eq!(format_ns(750.0), "750 ns");
        assert_eq!(format_ns(1_500.0), "1.50 µs");
        assert_eq!(format_ns(2_500_000.0), "2.50 ms");
    }

    /// observe --remote against a live traced server: the table must carry
    /// per-stage p50/p99 rows once a request has flowed through.
    #[test]
    fn observe_remote_prints_stage_quantiles() {
        let tracer = Arc::new(aipow_trace::Tracer::new(aipow_trace::TraceConfig {
            sample_every: 1,
            ..aipow_trace::TraceConfig::default()
        }));
        let framework = Arc::new(
            FrameworkBuilder::new()
                .master_key([2u8; 32])
                .model(FixedScoreModel::new(ReputationScore::new(2.0).unwrap()))
                .policy(aipow_policy::LinearPolicy::policy1())
                .tracer(tracer)
                .build()
                .unwrap(),
        );
        let mut resources = HashMap::new();
        resources.insert("/t".to_string(), b"traced".to_vec());
        let server = PowServer::start(
            "127.0.0.1:0",
            Arc::clone(&framework),
            Arc::new(StaticFeatureSource::new(FeatureVector::zeros())),
            resources,
            ServerConfig::default(),
        )
        .unwrap();
        let addr = server.local_addr().to_string();

        fetch(&strings(&["--addr", &addr, "--path", "/t"])).unwrap();
        observe(&strings(&[
            "--remote",
            &addr,
            "--poll",
            "2",
            "--poll-interval-s",
            "0",
        ]))
        .unwrap();

        // The same snapshot the command printed must carry stage quantiles.
        let mut client = PowClient::connect(&addr).unwrap();
        let snap = client.telemetry().unwrap();
        let p50 = prom_samples(&snap.prometheus, "aipow_stage_p50_ns");
        let p99 = prom_samples(&snap.prometheus, "aipow_stage_p99_ns");
        assert!(!p50.is_empty(), "no p50 stage rows:\n{}", snap.prometheus);
        assert_eq!(p50.len(), p99.len());
        server.shutdown();
    }

    /// serve+fetch end-to-end through the command layer, using a thread
    /// for the serving loop (it never returns).
    #[test]
    fn serve_and_fetch_roundtrip() {
        // Bind the server components directly (serve() loops forever), but
        // exercise fetch() against it.
        let framework = Arc::new(
            FrameworkBuilder::new()
                .master_key([1u8; 32])
                .model(FixedScoreModel::new(ReputationScore::new(2.0).unwrap()))
                .policy(aipow_policy::LinearPolicy::policy1())
                .build()
                .unwrap(),
        );
        let mut resources = HashMap::new();
        resources.insert("/cli".to_string(), b"hello".to_vec());
        let server = PowServer::start(
            "127.0.0.1:0",
            framework,
            Arc::new(StaticFeatureSource::new(FeatureVector::zeros())),
            resources,
            ServerConfig::default(),
        )
        .unwrap();
        let addr = server.local_addr().to_string();

        fetch(&strings(&[
            "--addr", &addr, "--path", "/cli", "--count", "2",
        ]))
        .unwrap();
        fetch(&strings(&["--addr", &addr, "--path", "/cli", "--strict"])).unwrap();
        server.shutdown();
    }
}
