//! Minimal flag parser (the workspace's dependency policy excludes `clap`).
//!
//! Supports `--key value`, `--key=value`, boolean `--flag`, repeated keys,
//! and positional arguments. Unknown flags are an error so typos fail loud.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Args {
    positional: Vec<String>,
    flags: BTreeMap<String, Vec<String>>,
}

/// A parse or lookup failure, printable as the CLI error message.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgsError {
    /// A flag was not in the accepted set.
    UnknownFlag {
        /// The offending flag (without dashes).
        flag: String,
    },
    /// A flag that requires a value appeared last with none following.
    MissingValue {
        /// The flag lacking its value.
        flag: String,
    },
    /// A required flag was absent.
    Required {
        /// The missing flag.
        flag: String,
    },
    /// A value failed to parse.
    BadValue {
        /// The flag concerned.
        flag: String,
        /// The unparsable text.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::UnknownFlag { flag } => write!(f, "unknown flag --{flag}"),
            ArgsError::MissingValue { flag } => write!(f, "flag --{flag} requires a value"),
            ArgsError::Required { flag } => write!(f, "missing required flag --{flag}"),
            ArgsError::BadValue {
                flag,
                value,
                expected,
            } => write!(
                f,
                "invalid value `{value}` for --{flag}: expected {expected}"
            ),
        }
    }
}

impl std::error::Error for ArgsError {}

impl Args {
    /// Parses raw arguments. `boolean_flags` take no value; every other
    /// accepted flag consumes one. Flags must appear in `accepted`.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] on unknown flags or missing values.
    pub fn parse<I, S>(raw: I, accepted: &[&str], boolean_flags: &[&str]) -> Result<Self, ArgsError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut args = Args::default();
        let mut iter = raw.into_iter().map(Into::into).peekable();
        while let Some(token) = iter.next() {
            if let Some(body) = token.strip_prefix("--") {
                let (name, inline_value) = match body.split_once('=') {
                    Some((n, v)) => (n.to_string(), Some(v.to_string())),
                    None => (body.to_string(), None),
                };
                if !accepted.contains(&name.as_str()) && !boolean_flags.contains(&name.as_str()) {
                    return Err(ArgsError::UnknownFlag { flag: name });
                }
                let value = if boolean_flags.contains(&name.as_str()) {
                    inline_value.unwrap_or_else(|| "true".to_string())
                } else if let Some(v) = inline_value {
                    v
                } else if let Some(next) = iter.next() {
                    next
                } else {
                    return Err(ArgsError::MissingValue { flag: name });
                };
                args.flags.entry(name).or_default().push(value);
            } else {
                args.positional.push(token);
            }
        }
        Ok(args)
    }

    /// Positional arguments in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// The last value of a flag, if present.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags
            .get(flag)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    /// All values of a repeatable flag.
    pub fn get_all(&self, flag: &str) -> &[String] {
        self.flags.get(flag).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether a boolean flag was set.
    pub fn has(&self, flag: &str) -> bool {
        self.flags.contains_key(flag)
    }

    /// The last value of a flag, or an error naming it as required.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::Required`] when absent.
    pub fn require(&self, flag: &str) -> Result<&str, ArgsError> {
        self.get(flag).ok_or_else(|| ArgsError::Required {
            flag: flag.to_string(),
        })
    }

    /// Parses a flag's value with a default when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::BadValue`] when present but unparsable.
    pub fn get_parsed<T: std::str::FromStr>(
        &self,
        flag: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgsError> {
        match self.get(flag) {
            None => Ok(default),
            Some(text) => text.parse().map_err(|_| ArgsError::BadValue {
                flag: flag.to_string(),
                value: text.to_string(),
                expected,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ACCEPTED: &[&str] = &["addr", "policy", "resource", "threads"];
    const BOOLS: &[&str] = &["verbose", "strict"];

    fn parse(tokens: &[&str]) -> Result<Args, ArgsError> {
        Args::parse(tokens.iter().copied(), ACCEPTED, BOOLS)
    }

    #[test]
    fn space_and_equals_forms() {
        let args = parse(&["--addr", "127.0.0.1:80", "--policy=policy2"]).unwrap();
        assert_eq!(args.get("addr"), Some("127.0.0.1:80"));
        assert_eq!(args.get("policy"), Some("policy2"));
    }

    #[test]
    fn positional_and_flags_mix() {
        let args = parse(&["serve", "--addr", "x", "extra"]).unwrap();
        assert_eq!(
            args.positional(),
            &["serve".to_string(), "extra".to_string()]
        );
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let args = parse(&["--verbose", "--addr", "y"]).unwrap();
        assert!(args.has("verbose"));
        assert!(!args.has("strict"));
        assert_eq!(args.get("addr"), Some("y"));
    }

    #[test]
    fn repeated_flags_accumulate() {
        let args = parse(&["--resource", "/a=1", "--resource", "/b=2"]).unwrap();
        assert_eq!(args.get_all("resource").len(), 2);
        assert_eq!(args.get("resource"), Some("/b=2"));
    }

    #[test]
    fn unknown_flag_rejected() {
        assert_eq!(
            parse(&["--bogus", "1"]),
            Err(ArgsError::UnknownFlag {
                flag: "bogus".into()
            })
        );
    }

    #[test]
    fn missing_value_rejected() {
        assert_eq!(
            parse(&["--addr"]),
            Err(ArgsError::MissingValue {
                flag: "addr".into()
            })
        );
    }

    #[test]
    fn require_and_get_parsed() {
        let args = parse(&["--threads", "4"]).unwrap();
        assert_eq!(args.require("threads").unwrap(), "4");
        assert!(matches!(
            args.require("addr"),
            Err(ArgsError::Required { .. })
        ));
        assert_eq!(
            args.get_parsed::<usize>("threads", 1, "an integer")
                .unwrap(),
            4
        );
        assert_eq!(
            args.get_parsed::<usize>("missingflag", 7, "an integer")
                .unwrap(),
            7
        );
    }

    #[test]
    fn bad_value_reports_expectation() {
        let args = parse(&["--threads", "four"]).unwrap();
        let err = args
            .get_parsed::<usize>("threads", 1, "an integer")
            .unwrap_err();
        assert!(err.to_string().contains("an integer"));
    }

    #[test]
    fn error_display() {
        for e in [
            ArgsError::UnknownFlag { flag: "x".into() },
            ArgsError::MissingValue { flag: "x".into() },
            ArgsError::Required { flag: "x".into() },
        ] {
            assert!(e.to_string().contains("--x"));
        }
    }
}
