//! Policy 3: error-range mapping (paper §III.B).
//!
//! “we consider the error ϵ from \[the\] DAbR system … given this error, the
//! resulting IP reputation score might be higher or lower than the ground
//! truth. Our Policy 3 attempts to correct for this in the following way.
//! All reputation scores sᵢ are in the interval [0, 10]. For a score sᵢ,
//! the difficulty value is a value chosen at random in the interval
//! [⌈dᵢ−ϵ⌉, ⌈dᵢ+ϵ⌉], where dᵢ = ⌈sᵢ + 1⌉.”

use crate::context::PolicyContext;
use crate::Policy;
use aipow_pow::Difficulty;
use aipow_reputation::ReputationScore;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's Policy 3: randomized difficulty within the model's error
/// band around the linear mapping.
///
/// The policy is seedable so experiments are reproducible; one draw is made
/// per decision.
///
/// ```
/// use aipow_policy::{ErrorRangePolicy, Policy, PolicyContext};
/// use aipow_reputation::ReputationScore;
/// let p3 = ErrorRangePolicy::new(1.0, 42);
/// let d = p3.difficulty_for(ReputationScore::new(4.0).unwrap(), &PolicyContext::default());
/// // d_i = ceil(4 + 1) = 5, so the draw lies in [4, 6].
/// assert!((4..=6).contains(&d.bits()));
/// ```
#[derive(Debug)]
pub struct ErrorRangePolicy {
    name: String,
    epsilon: f64,
    rng: Mutex<StdRng>,
}

impl ErrorRangePolicy {
    /// Creates Policy 3 with model error `epsilon` and an RNG `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative or not finite.
    pub fn new(epsilon: f64, seed: u64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "epsilon {epsilon} must be a finite non-negative number"
        );
        ErrorRangePolicy {
            name: "policy3".to_string(),
            epsilon,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// Creates Policy 3 with `epsilon` estimated from a model evaluation
    /// (see [`aipow_reputation::eval::estimate_epsilon`]).
    pub fn from_estimated_epsilon(epsilon: f64, seed: u64) -> Self {
        Self::new(epsilon, seed)
    }

    /// The error band half-width.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The inclusive difficulty interval for `score`:
    /// `[⌈dᵢ−ϵ⌉, ⌈dᵢ+ϵ⌉]` with `dᵢ = ⌈sᵢ+1⌉`, clamped at zero.
    pub fn interval(&self, score: ReputationScore) -> (u8, u8) {
        let d_i = (score.value() + 1.0).ceil();
        let lo = ((d_i - self.epsilon).ceil().max(0.0)) as u32;
        let hi = ((d_i + self.epsilon).ceil().max(0.0)) as u32;
        (
            Difficulty::saturating(lo).bits(),
            Difficulty::saturating(hi).bits(),
        )
    }
}

impl Policy for ErrorRangePolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn difficulty_for(&self, score: ReputationScore, _ctx: &PolicyContext) -> Difficulty {
        let (lo, hi) = self.interval(score);
        let bits = if lo == hi {
            lo
        } else {
            self.rng.lock().gen_range(lo..=hi)
        };
        Difficulty::saturating(bits as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score(v: f64) -> ReputationScore {
        ReputationScore::new(v).unwrap()
    }

    #[test]
    fn interval_matches_paper_formula() {
        let p = ErrorRangePolicy::new(1.5, 0);
        // s=4: d_i = ceil(5) = 5; interval [ceil(3.5), ceil(6.5)] = [4, 7].
        assert_eq!(p.interval(score(4.0)), (4, 7));
        // s=0: d_i = 1; interval [ceil(-0.5)→0, ceil(2.5)=3].
        assert_eq!(p.interval(score(0.0)), (0, 3));
        // s=10: d_i = 11; interval [10, 13].
        assert_eq!(p.interval(score(10.0)), (10, 13));
    }

    #[test]
    fn fractional_scores_ceil() {
        let p = ErrorRangePolicy::new(0.0, 0);
        // s=3.2: d_i = ceil(4.2) = 5; zero epsilon pins the draw.
        assert_eq!(p.interval(score(3.2)), (5, 5));
        assert_eq!(
            p.difficulty_for(score(3.2), &PolicyContext::default())
                .bits(),
            5
        );
    }

    #[test]
    fn draws_stay_in_interval() {
        let p = ErrorRangePolicy::new(2.0, 7);
        let ctx = PolicyContext::default();
        for _ in 0..500 {
            let d = p.difficulty_for(score(6.0), &ctx).bits();
            let (lo, hi) = p.interval(score(6.0));
            assert!((lo..=hi).contains(&d), "draw {d} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn draws_cover_the_interval() {
        let p = ErrorRangePolicy::new(2.0, 11);
        let ctx = PolicyContext::default();
        let (lo, hi) = p.interval(score(5.0));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2_000 {
            seen.insert(p.difficulty_for(score(5.0), &ctx).bits());
        }
        for d in lo..=hi {
            assert!(seen.contains(&d), "difficulty {d} never drawn");
        }
        assert_eq!(seen.len() as u32, (hi - lo + 1) as u32);
    }

    #[test]
    fn same_seed_reproduces_sequence() {
        let a = ErrorRangePolicy::new(1.0, 99);
        let b = ErrorRangePolicy::new(1.0, 99);
        let ctx = PolicyContext::default();
        for band in 0..=10 {
            let s = score(band as f64);
            assert_eq!(
                a.difficulty_for(s, &ctx).bits(),
                b.difficulty_for(s, &ctx).bits()
            );
        }
    }

    #[test]
    fn mean_draw_tracks_linear_mapping() {
        // Policy 3's expected difficulty should sit near d_i = ceil(s)+1,
        // which is how Figure 2 places it between Policies 1 and 2.
        let p = ErrorRangePolicy::new(2.0, 3);
        let ctx = PolicyContext::default();
        let s = score(7.0);
        let n = 4_000;
        let sum: u64 = (0..n)
            .map(|_| p.difficulty_for(s, &ctx).bits() as u64)
            .sum();
        let mean = sum as f64 / n as f64;
        // d_i = 8; interval [6, 10]; uniform mean 8.
        assert!((mean - 8.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_epsilon_panics() {
        ErrorRangePolicy::new(-1.0, 0);
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn nan_epsilon_panics() {
        ErrorRangePolicy::new(f64::NAN, 0);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The interval always contains the deterministic mapping
            /// d_i = ceil(s+1), and is symmetric up to ceiling effects.
            #[test]
            fn interval_contains_center(s in 0.0f64..=10.0, eps in 0.0f64..4.0) {
                let p = ErrorRangePolicy::new(eps, 1);
                let sc = ReputationScore::new(s).unwrap();
                let (lo, hi) = p.interval(sc);
                let d_i = (s + 1.0).ceil() as u8;
                prop_assert!(lo <= d_i && d_i <= hi,
                    "d_i {} outside [{}, {}]", d_i, lo, hi);
            }
        }
    }
}
