//! Policies 1 and 2: linear mapping (paper §III.A).
//!
//! “For Policy 1, we map a 1-difficult puzzle to a client with a reputation
//! score 0, a 2-difficult puzzle to a client with a reputation score of 1,
//! and so on. … we evaluate Policy 2, where the easiest puzzle has
//! difficulty 5. Thus, we map a 5-difficult puzzle to the client with
//! reputation score 0, a 6-difficult puzzle to a client with a reputation
//! score of 1, and so on.”

use crate::context::PolicyContext;
use crate::Policy;
use aipow_pow::Difficulty;
use aipow_reputation::ReputationScore;

/// A linear score→difficulty mapping: `d = round(R) + base`.
///
/// ```
/// use aipow_policy::{LinearPolicy, Policy, PolicyContext};
/// use aipow_reputation::ReputationScore;
/// let p1 = LinearPolicy::policy1();
/// let ctx = PolicyContext::default();
/// assert_eq!(p1.difficulty_for(ReputationScore::MIN, &ctx).bits(), 1);
/// assert_eq!(p1.difficulty_for(ReputationScore::MAX, &ctx).bits(), 11);
/// ```
#[derive(Debug, Clone)]
pub struct LinearPolicy {
    name: String,
    base: u8,
}

impl LinearPolicy {
    /// A linear policy with the given base difficulty (difficulty assigned
    /// to reputation score 0).
    pub fn new(name: impl Into<String>, base: u8) -> Self {
        LinearPolicy {
            name: name.into(),
            base,
        }
    }

    /// The paper's Policy 1: `d = R + 1`.
    pub fn policy1() -> Self {
        LinearPolicy::new("policy1", 1)
    }

    /// The paper's Policy 2: `d = R + 5`.
    pub fn policy2() -> Self {
        LinearPolicy::new("policy2", 5)
    }

    /// The base difficulty (at reputation score 0).
    pub fn base(&self) -> u8 {
        self.base
    }
}

impl Policy for LinearPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn difficulty_for(&self, score: ReputationScore, _ctx: &PolicyContext) -> Difficulty {
        Difficulty::saturating(score.band() as u32 + self.base as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score(v: f64) -> ReputationScore {
        ReputationScore::new(v).unwrap()
    }

    #[test]
    fn policy1_matches_paper_table() {
        let p = LinearPolicy::policy1();
        let ctx = PolicyContext::default();
        for band in 0..=10u8 {
            let d = p.difficulty_for(score(band as f64), &ctx);
            assert_eq!(d.bits(), band + 1, "reputation {band}");
        }
    }

    #[test]
    fn policy2_matches_paper_table() {
        let p = LinearPolicy::policy2();
        let ctx = PolicyContext::default();
        for band in 0..=10u8 {
            let d = p.difficulty_for(score(band as f64), &ctx);
            assert_eq!(d.bits(), band + 5, "reputation {band}");
        }
    }

    #[test]
    fn fractional_scores_round_to_band() {
        let p = LinearPolicy::policy1();
        let ctx = PolicyContext::default();
        assert_eq!(p.difficulty_for(score(3.4), &ctx).bits(), 4);
        assert_eq!(p.difficulty_for(score(3.5), &ctx).bits(), 5);
    }

    #[test]
    fn extreme_base_saturates() {
        let p = LinearPolicy::new("extreme", 60);
        let ctx = PolicyContext::default();
        assert_eq!(p.difficulty_for(score(10.0), &ctx).bits(), 64);
    }

    #[test]
    fn monotone_in_score() {
        let p = LinearPolicy::policy2();
        let ctx = PolicyContext::default();
        let mut prev = 0u8;
        for tenths in 0..=100 {
            let d = p.difficulty_for(score(tenths as f64 / 10.0), &ctx);
            assert!(d.bits() >= prev);
            prev = d.bits();
        }
    }

    #[test]
    fn names() {
        assert_eq!(LinearPolicy::policy1().name(), "policy1");
        assert_eq!(LinearPolicy::policy2().name(), "policy2");
        assert_eq!(LinearPolicy::policy1().base(), 1);
        assert_eq!(LinearPolicy::policy2().base(), 5);
    }
}
