//! Policy combinators: clamp, offset, and closure policies.
//!
//! Small wrappers that let operators adjust a deployed policy without
//! rewriting it — e.g. capping Policy 2 during an incident retro, or
//! shifting every difficulty by a constant.

use crate::context::PolicyContext;
use crate::Policy;
use aipow_pow::Difficulty;
use aipow_reputation::ReputationScore;

/// Clamps another policy's output into `[min, max]`.
///
/// ```
/// use aipow_policy::{LinearPolicy, Policy, PolicyContext};
/// use aipow_policy::combinators::ClampPolicy;
/// use aipow_pow::Difficulty;
/// use aipow_reputation::ReputationScore;
/// let capped = ClampPolicy::new(
///     LinearPolicy::policy2(),
///     Difficulty::ZERO,
///     Difficulty::new(10).unwrap(),
/// );
/// let d = capped.difficulty_for(ReputationScore::MAX, &PolicyContext::default());
/// assert_eq!(d.bits(), 10); // policy2 would say 15
/// ```
#[derive(Debug, Clone)]
pub struct ClampPolicy<P> {
    name: String,
    inner: P,
    min: Difficulty,
    max: Difficulty,
}

impl<P: Policy> ClampPolicy<P> {
    /// Wraps `inner`, clamping outputs into `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn new(inner: P, min: Difficulty, max: Difficulty) -> Self {
        assert!(min <= max, "clamp bounds inverted: {min} > {max}");
        let name = format!("clamp({})", inner.name());
        ClampPolicy {
            name,
            inner,
            min,
            max,
        }
    }
}

impl<P: Policy> Policy for ClampPolicy<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn difficulty_for(&self, score: ReputationScore, ctx: &PolicyContext) -> Difficulty {
        self.inner
            .difficulty_for(score, ctx)
            .clamp(self.min, self.max)
    }
}

/// Adds a signed constant to another policy's output (saturating at both
/// ends of the difficulty range).
#[derive(Debug, Clone)]
pub struct OffsetPolicy<P> {
    name: String,
    inner: P,
    delta: i16,
}

impl<P: Policy> OffsetPolicy<P> {
    /// Wraps `inner`, adding `delta` bits to every decision.
    pub fn new(inner: P, delta: i16) -> Self {
        let name = format!("offset({},{delta:+})", inner.name());
        OffsetPolicy { name, inner, delta }
    }
}

impl<P: Policy> Policy for OffsetPolicy<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn difficulty_for(&self, score: ReputationScore, ctx: &PolicyContext) -> Difficulty {
        let base = self.inner.difficulty_for(score, ctx).bits() as i32;
        let shifted = (base + self.delta as i32).max(0) as u32;
        Difficulty::saturating(shifted)
    }
}

/// Wraps a closure as a policy, for tests and one-off experiments.
pub struct FnPolicy<F> {
    name: String,
    f: F,
}

impl<F> FnPolicy<F>
where
    F: Fn(ReputationScore, &PolicyContext) -> Difficulty + Send + Sync,
{
    /// Creates a policy from a closure.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnPolicy {
            name: name.into(),
            f,
        }
    }
}

impl<F> Policy for FnPolicy<F>
where
    F: Fn(ReputationScore, &PolicyContext) -> Difficulty + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn difficulty_for(&self, score: ReputationScore, ctx: &PolicyContext) -> Difficulty {
        (self.f)(score, ctx)
    }
}

impl<F> core::fmt::Debug for FnPolicy<F> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "FnPolicy({})", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearPolicy;

    fn score(v: f64) -> ReputationScore {
        ReputationScore::new(v).unwrap()
    }

    #[test]
    fn clamp_limits_both_ends() {
        let p = ClampPolicy::new(
            LinearPolicy::policy2(),
            Difficulty::new(7).unwrap(),
            Difficulty::new(12).unwrap(),
        );
        let ctx = PolicyContext::default();
        assert_eq!(p.difficulty_for(score(0.0), &ctx).bits(), 7); // was 5
        assert_eq!(p.difficulty_for(score(5.0), &ctx).bits(), 10); // unchanged
        assert_eq!(p.difficulty_for(score(10.0), &ctx).bits(), 12); // was 15
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn clamp_rejects_inverted_bounds() {
        ClampPolicy::new(
            LinearPolicy::policy1(),
            Difficulty::new(10).unwrap(),
            Difficulty::new(2).unwrap(),
        );
    }

    #[test]
    fn offset_shifts_and_saturates() {
        let up = OffsetPolicy::new(LinearPolicy::policy1(), 3);
        let down = OffsetPolicy::new(LinearPolicy::policy1(), -5);
        let ctx = PolicyContext::default();
        assert_eq!(up.difficulty_for(score(0.0), &ctx).bits(), 4);
        assert_eq!(down.difficulty_for(score(0.0), &ctx).bits(), 0); // 1-5 → floor 0
        assert_eq!(down.difficulty_for(score(10.0), &ctx).bits(), 6);
    }

    #[test]
    fn fn_policy_delegates() {
        let p = FnPolicy::new("always7", |_, _| Difficulty::new(7).unwrap());
        let ctx = PolicyContext::default();
        assert_eq!(p.difficulty_for(score(9.0), &ctx).bits(), 7);
        assert_eq!(p.name(), "always7");
        assert!(format!("{p:?}").contains("always7"));
    }

    #[test]
    fn combinators_compose() {
        let p = ClampPolicy::new(
            OffsetPolicy::new(LinearPolicy::policy1(), 10),
            Difficulty::ZERO,
            Difficulty::new(13).unwrap(),
        );
        let ctx = PolicyContext::default();
        assert_eq!(p.difficulty_for(score(0.0), &ctx).bits(), 11);
        assert_eq!(p.difficulty_for(score(10.0), &ctx).bits(), 13);
        assert!(p.name().contains("clamp(offset(policy1,+10))"));
    }
}
