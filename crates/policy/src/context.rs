//! Server conditions available to adaptive policies.

use serde::{Deserialize, Serialize};

/// A snapshot of server conditions at decision time.
///
/// The paper's three policies ignore context; the adaptive extensions
/// (e.g. [`LoadAdaptivePolicy`](crate::LoadAdaptivePolicy)) raise
/// difficulty when the server is loaded or an attack has been declared.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyContext {
    /// Server load in `[0, 1]` (e.g. in-flight requests / capacity).
    pub server_load: f64,
    /// Whether the deployment has declared an active attack.
    pub under_attack: bool,
    /// Decision time, milliseconds since the Unix epoch (0 if unknown).
    pub now_ms: u64,
}

impl Default for PolicyContext {
    fn default() -> Self {
        PolicyContext {
            server_load: 0.0,
            under_attack: false,
            now_ms: 0,
        }
    }
}

impl PolicyContext {
    /// A context with the given load, clamped into `[0, 1]`.
    pub fn with_load(load: f64) -> Self {
        PolicyContext {
            server_load: if load.is_nan() {
                0.0
            } else {
                load.clamp(0.0, 1.0)
            },
            ..Default::default()
        }
    }

    /// Returns the context with the attack flag raised.
    pub fn attacked(mut self) -> Self {
        self.under_attack = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_idle() {
        let ctx = PolicyContext::default();
        assert_eq!(ctx.server_load, 0.0);
        assert!(!ctx.under_attack);
    }

    #[test]
    fn with_load_clamps() {
        assert_eq!(PolicyContext::with_load(1.7).server_load, 1.0);
        assert_eq!(PolicyContext::with_load(-0.5).server_load, 0.0);
        assert_eq!(PolicyContext::with_load(f64::NAN).server_load, 0.0);
    }

    #[test]
    fn attacked_sets_flag() {
        assert!(PolicyContext::with_load(0.5).attacked().under_attack);
    }
}
