//! Backend routing: which *kind* of puzzle a client gets.
//!
//! Difficulty scaling alone leaves the work function fixed; a flooder
//! with a wide SHA-256 pipeline pays difficulty increases at its peak
//! hash rate. Routing suspicious clients to the memory-hard backend
//! changes the *currency*: their per-attempt cost serializes on memory
//! latency, while benign clients keep the cheap SHA-256 puzzle and flat
//! admission latency. A [`BackendRouter`] is consulted alongside the
//! [`Policy`](crate::Policy) at issue time — score in, backend id out.

use crate::context::PolicyContext;
use aipow_pow::BackendId;
use aipow_reputation::ReputationScore;

/// A rule-based strategy mapping a reputation score to the puzzle
/// backend the client must solve.
///
/// Mirrors [`Policy`](crate::Policy): one shared instance serves the
/// whole admission pipeline, so implementations must be thread-safe.
pub trait BackendRouter: Send + Sync + core::fmt::Debug {
    /// A short, stable identifier for reports and configuration.
    fn name(&self) -> &str;

    /// Picks the puzzle backend for a client scoring `score` under
    /// server conditions `ctx`.
    fn route(&self, score: ReputationScore, ctx: &PolicyContext) -> BackendId;
}

impl<R: BackendRouter + ?Sized> BackendRouter for Box<R> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn route(&self, score: ReputationScore, ctx: &PolicyContext) -> BackendId {
        (**self).route(score, ctx)
    }
}

impl<R: BackendRouter + ?Sized> BackendRouter for std::sync::Arc<R> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn route(&self, score: ReputationScore, ctx: &PolicyContext) -> BackendId {
        (**self).route(score, ctx)
    }
}

/// Routes every client to the SHA-256 backend — the pre-routing
/// behavior, and the default when no threshold is configured.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sha256Router;

impl BackendRouter for Sha256Router {
    fn name(&self) -> &str {
        "sha256"
    }

    fn route(&self, _score: ReputationScore, _ctx: &PolicyContext) -> BackendId {
        BackendId::SHA256
    }
}

/// Sends clients whose reputation score has climbed to `threshold` or
/// beyond (higher score = more suspicious) to the memory-hard backend;
/// everyone else keeps SHA-256.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdRouter {
    threshold: f64,
}

impl ThresholdRouter {
    /// Routes scores `>= threshold` to the memory-hard backend.
    pub fn new(threshold: f64) -> Self {
        ThresholdRouter { threshold }
    }

    /// The configured score threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl BackendRouter for ThresholdRouter {
    fn name(&self) -> &str {
        "memory-hard-above"
    }

    fn route(&self, score: ReputationScore, _ctx: &PolicyContext) -> BackendId {
        if score.value() >= self.threshold {
            BackendId::MEMORY_HARD
        } else {
            BackendId::SHA256
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score(v: f64) -> ReputationScore {
        ReputationScore::new(v).unwrap()
    }

    #[test]
    fn sha256_router_is_constant() {
        let ctx = PolicyContext::default();
        for v in [0.0, 5.0, 10.0] {
            assert_eq!(Sha256Router.route(score(v), &ctx), BackendId::SHA256);
        }
    }

    #[test]
    fn threshold_router_splits_at_the_threshold() {
        let router = ThresholdRouter::new(6.0);
        let ctx = PolicyContext::default();
        assert_eq!(router.route(score(0.0), &ctx), BackendId::SHA256);
        assert_eq!(router.route(score(5.9), &ctx), BackendId::SHA256);
        assert_eq!(router.route(score(6.0), &ctx), BackendId::MEMORY_HARD);
        assert_eq!(router.route(score(10.0), &ctx), BackendId::MEMORY_HARD);
        assert_eq!(router.threshold(), 6.0);
    }

    #[test]
    fn boxed_and_arc_routers_delegate() {
        let ctx = PolicyContext::default();
        let boxed: Box<dyn BackendRouter> = Box::new(ThresholdRouter::new(1.0));
        assert_eq!(boxed.name(), "memory-hard-above");
        assert_eq!(boxed.route(score(2.0), &ctx), BackendId::MEMORY_HARD);
        let arced: std::sync::Arc<dyn BackendRouter> = std::sync::Arc::new(Sha256Router);
        assert_eq!(arced.route(score(2.0), &ctx), BackendId::SHA256);
    }
}
