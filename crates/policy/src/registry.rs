//! Textual policy specs → boxed policies.
//!
//! Configuration files, the CLI, and the benchmark harness name policies as
//! strings. A spec is either a built-in shorthand or full DSL source:
//!
//! | Spec | Meaning |
//! |------|---------|
//! | `policy1` | the paper's Policy 1 (`d = R + 1`) |
//! | `policy2` | the paper's Policy 2 (`d = R + 5`) |
//! | `policy3` | the paper's Policy 3 with default `ϵ = 2.0` |
//! | `policy3:eps=1.5` | Policy 3 with explicit `ϵ` |
//! | `policy "x" { … }` | DSL source (see [`crate::dsl`]) |

use crate::dsl;
use crate::error_range::ErrorRangePolicy;
use crate::linear::LinearPolicy;
use crate::Policy;
use core::fmt;

/// Error resolving a policy spec.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The spec names no known builtin and is not DSL source.
    UnknownSpec {
        /// The unrecognized spec.
        spec: String,
    },
    /// A builtin parameter could not be parsed.
    BadParameter {
        /// The offending parameter text.
        parameter: String,
    },
    /// DSL source failed to parse.
    Dsl(dsl::ParseError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownSpec { spec } => write!(f, "unknown policy spec `{spec}`"),
            SpecError::BadParameter { parameter } => {
                write!(f, "invalid policy parameter `{parameter}`")
            }
            SpecError::Dsl(e) => write!(f, "policy dsl error: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<dsl::ParseError> for SpecError {
    fn from(e: dsl::ParseError) -> Self {
        SpecError::Dsl(e)
    }
}

/// Resolves a policy spec string. `seed` feeds randomized policies
/// (Policy 3) so experiments stay reproducible.
///
/// # Errors
///
/// Returns [`SpecError`] for unknown shorthands, malformed parameters, or
/// invalid DSL source.
///
/// ```
/// let p = aipow_policy::registry::from_spec("policy3:eps=1.5", 7)?;
/// assert_eq!(p.name(), "policy3");
/// # Ok::<(), aipow_policy::registry::SpecError>(())
/// ```
pub fn from_spec(spec: &str, seed: u64) -> Result<Box<dyn Policy>, SpecError> {
    let trimmed = spec.trim();
    match trimmed {
        "policy1" => return Ok(Box::new(LinearPolicy::policy1())),
        "policy2" => return Ok(Box::new(LinearPolicy::policy2())),
        "policy3" => return Ok(Box::new(ErrorRangePolicy::new(2.0, seed))),
        _ => {}
    }

    if let Some(params) = trimmed.strip_prefix("policy3:") {
        let mut epsilon: Option<f64> = None;
        for part in params.split(',') {
            let part = part.trim();
            match part.split_once('=') {
                Some(("eps", v)) => {
                    let value: f64 = v.trim().parse().map_err(|_| SpecError::BadParameter {
                        parameter: part.to_string(),
                    })?;
                    if !value.is_finite() || value < 0.0 {
                        return Err(SpecError::BadParameter {
                            parameter: part.to_string(),
                        });
                    }
                    epsilon = Some(value);
                }
                _ => {
                    return Err(SpecError::BadParameter {
                        parameter: part.to_string(),
                    })
                }
            }
        }
        let epsilon = epsilon.ok_or_else(|| SpecError::BadParameter {
            parameter: params.to_string(),
        })?;
        return Ok(Box::new(ErrorRangePolicy::new(epsilon, seed)));
    }

    if trimmed.starts_with("policy ") || trimmed.starts_with("policy\"") {
        return Ok(Box::new(dsl::parse(trimmed)?));
    }

    Err(SpecError::UnknownSpec {
        spec: trimmed.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::PolicyContext;
    use aipow_reputation::ReputationScore;

    fn score(v: f64) -> ReputationScore {
        ReputationScore::new(v).unwrap()
    }

    #[test]
    fn builtin_policies_resolve() {
        let ctx = PolicyContext::default();
        let p1 = from_spec("policy1", 0).unwrap();
        let p2 = from_spec("policy2", 0).unwrap();
        assert_eq!(p1.difficulty_for(score(0.0), &ctx).bits(), 1);
        assert_eq!(p2.difficulty_for(score(0.0), &ctx).bits(), 5);
    }

    #[test]
    fn policy3_with_epsilon() {
        let p = from_spec("policy3:eps=0.0", 1).unwrap();
        let ctx = PolicyContext::default();
        // eps=0 pins the draw: d = ceil(s+1).
        assert_eq!(p.difficulty_for(score(4.0), &ctx).bits(), 5);
    }

    #[test]
    fn policy3_default_epsilon() {
        let p = from_spec("policy3", 1).unwrap();
        assert_eq!(p.name(), "policy3");
    }

    #[test]
    fn policy3_seed_reproducibility() {
        let ctx = PolicyContext::default();
        let a = from_spec("policy3:eps=2.0", 9).unwrap();
        let b = from_spec("policy3:eps=2.0", 9).unwrap();
        for band in 0..=10 {
            assert_eq!(
                a.difficulty_for(score(band as f64), &ctx).bits(),
                b.difficulty_for(score(band as f64), &ctx).bits()
            );
        }
    }

    #[test]
    fn dsl_source_resolves() {
        let p = from_spec(
            "policy \"inline\" { when score < 5.0 => difficulty 2; otherwise => difficulty 9; }",
            0,
        )
        .unwrap();
        assert_eq!(p.name(), "inline");
    }

    #[test]
    fn unknown_spec_rejected() {
        assert!(matches!(
            from_spec("policyX", 0),
            Err(SpecError::UnknownSpec { .. })
        ));
    }

    #[test]
    fn bad_parameters_rejected() {
        assert!(matches!(
            from_spec("policy3:eps=abc", 0),
            Err(SpecError::BadParameter { .. })
        ));
        assert!(matches!(
            from_spec("policy3:eps=-1", 0),
            Err(SpecError::BadParameter { .. })
        ));
        assert!(matches!(
            from_spec("policy3:sigma=2", 0),
            Err(SpecError::BadParameter { .. })
        ));
    }

    #[test]
    fn dsl_errors_propagate() {
        match from_spec("policy \"broken\" { }", 0) {
            Err(SpecError::Dsl(e)) => assert!(e.message.contains("no rules")),
            other => panic!("expected DSL error, got {other:?}"),
        }
    }

    #[test]
    fn error_display() {
        assert!(from_spec("nope", 0)
            .unwrap_err()
            .to_string()
            .contains("nope"));
    }
}
