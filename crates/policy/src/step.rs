//! Tiered (step) policies.
//!
//! Operators often think in tiers — “trusted / unknown / hostile” — rather
//! than per-point mappings. A [`StepPolicy`] assigns one difficulty per
//! score band.

use crate::context::PolicyContext;
use crate::Policy;
use aipow_pow::Difficulty;
use aipow_reputation::ReputationScore;
use core::fmt;

/// A step policy: consecutive half-open score bands, each mapped to one
/// difficulty, plus a final difficulty for everything above the last bound.
///
/// ```
/// use aipow_policy::{StepPolicy, Policy, PolicyContext};
/// use aipow_reputation::ReputationScore;
/// let policy = StepPolicy::builder("tiers")
///     .band_below(2.0, 1)   // score < 2.0  → 1-difficult
///     .band_below(7.0, 8)   // 2.0 ≤ s < 7  → 8-difficult
///     .otherwise(16)        // s ≥ 7        → 16-difficult
///     .build()?;
/// let ctx = PolicyContext::default();
/// assert_eq!(policy.difficulty_for(ReputationScore::new(1.0).unwrap(), &ctx).bits(), 1);
/// assert_eq!(policy.difficulty_for(ReputationScore::new(9.0).unwrap(), &ctx).bits(), 16);
/// # Ok::<(), aipow_policy::step::StepPolicyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StepPolicy {
    name: String,
    /// `(upper_bound, difficulty)`: applies to scores `< upper_bound`.
    bands: Vec<(f64, Difficulty)>,
    fallback: Difficulty,
}

/// Error constructing a [`StepPolicy`].
#[derive(Debug, Clone, PartialEq)]
pub enum StepPolicyError {
    /// Band bounds must be strictly increasing.
    NonIncreasingBounds {
        /// The offending bound.
        bound: f64,
    },
    /// A bound was NaN or infinite.
    NonFiniteBound,
    /// A difficulty exceeded the representable maximum.
    BadDifficulty {
        /// The offending difficulty in bits.
        bits: u16,
    },
}

impl fmt::Display for StepPolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepPolicyError::NonIncreasingBounds { bound } => {
                write!(
                    f,
                    "step bound {bound} does not increase over the previous band"
                )
            }
            StepPolicyError::NonFiniteBound => write!(f, "step bound must be finite"),
            StepPolicyError::BadDifficulty { bits } => {
                write!(f, "step difficulty {bits} exceeds 64 bits")
            }
        }
    }
}

impl std::error::Error for StepPolicyError {}

impl StepPolicy {
    /// Starts building a step policy.
    pub fn builder(name: impl Into<String>) -> StepPolicyBuilder {
        StepPolicyBuilder {
            name: name.into(),
            bands: Vec::new(),
        }
    }

    /// The configured bands as `(upper_bound, difficulty)` pairs.
    pub fn bands(&self) -> &[(f64, Difficulty)] {
        &self.bands
    }

    /// The difficulty for scores at or above the last bound.
    pub fn fallback(&self) -> Difficulty {
        self.fallback
    }
}

impl Policy for StepPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn difficulty_for(&self, score: ReputationScore, _ctx: &PolicyContext) -> Difficulty {
        for &(bound, difficulty) in &self.bands {
            if score.value() < bound {
                return difficulty;
            }
        }
        self.fallback
    }
}

/// Builder for [`StepPolicy`]; see [`StepPolicy::builder`].
#[derive(Debug, Clone)]
pub struct StepPolicyBuilder {
    name: String,
    bands: Vec<(f64, u16)>,
}

impl StepPolicyBuilder {
    /// Adds a band: scores below `upper_bound` (and at/above the previous
    /// bound) receive `difficulty_bits`.
    pub fn band_below(mut self, upper_bound: f64, difficulty_bits: u16) -> Self {
        self.bands.push((upper_bound, difficulty_bits));
        self
    }

    /// Finishes with the difficulty for all remaining (highest) scores.
    ///
    /// # Errors
    ///
    /// Returns [`StepPolicyError`] if bounds are not finite and strictly
    /// increasing, or any difficulty exceeds 64 bits.
    pub fn otherwise(self, difficulty_bits: u16) -> StepPolicyFinal {
        StepPolicyFinal {
            builder: self,
            fallback: difficulty_bits,
        }
    }
}

/// Terminal builder state produced by [`StepPolicyBuilder::otherwise`].
#[derive(Debug, Clone)]
pub struct StepPolicyFinal {
    builder: StepPolicyBuilder,
    fallback: u16,
}

impl StepPolicyFinal {
    /// Validates and constructs the policy.
    ///
    /// # Errors
    ///
    /// Returns [`StepPolicyError`] if bounds are not finite and strictly
    /// increasing, or any difficulty exceeds 64 bits.
    pub fn build(self) -> Result<StepPolicy, StepPolicyError> {
        let mut bands = Vec::with_capacity(self.builder.bands.len());
        let mut prev: Option<f64> = None;
        for (bound, bits) in self.builder.bands {
            if !bound.is_finite() {
                return Err(StepPolicyError::NonFiniteBound);
            }
            if let Some(p) = prev {
                if bound <= p {
                    return Err(StepPolicyError::NonIncreasingBounds { bound });
                }
            }
            prev = Some(bound);
            let difficulty = to_difficulty(bits)?;
            bands.push((bound, difficulty));
        }
        Ok(StepPolicy {
            name: self.builder.name,
            bands,
            fallback: to_difficulty(self.fallback)?,
        })
    }
}

fn to_difficulty(bits: u16) -> Result<Difficulty, StepPolicyError> {
    if bits > 64 {
        return Err(StepPolicyError::BadDifficulty { bits });
    }
    Difficulty::new(bits as u8).map_err(|e| StepPolicyError::BadDifficulty { bits: e.bits })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score(v: f64) -> ReputationScore {
        ReputationScore::new(v).unwrap()
    }

    fn tiers() -> StepPolicy {
        StepPolicy::builder("tiers")
            .band_below(2.0, 1)
            .band_below(7.0, 8)
            .otherwise(16)
            .build()
            .unwrap()
    }

    #[test]
    fn bands_select_correctly() {
        let p = tiers();
        let ctx = PolicyContext::default();
        assert_eq!(p.difficulty_for(score(0.0), &ctx).bits(), 1);
        assert_eq!(p.difficulty_for(score(1.999), &ctx).bits(), 1);
        assert_eq!(p.difficulty_for(score(2.0), &ctx).bits(), 8);
        assert_eq!(p.difficulty_for(score(6.999), &ctx).bits(), 8);
        assert_eq!(p.difficulty_for(score(7.0), &ctx).bits(), 16);
        assert_eq!(p.difficulty_for(score(10.0), &ctx).bits(), 16);
    }

    #[test]
    fn no_bands_is_constant_policy() {
        let p = StepPolicy::builder("const").otherwise(9).build().unwrap();
        let ctx = PolicyContext::default();
        assert_eq!(p.difficulty_for(score(0.0), &ctx).bits(), 9);
        assert_eq!(p.difficulty_for(score(10.0), &ctx).bits(), 9);
    }

    #[test]
    fn rejects_non_increasing_bounds() {
        let err = StepPolicy::builder("bad")
            .band_below(5.0, 1)
            .band_below(5.0, 2)
            .otherwise(3)
            .build()
            .unwrap_err();
        assert_eq!(err, StepPolicyError::NonIncreasingBounds { bound: 5.0 });
    }

    #[test]
    fn rejects_nan_bound() {
        let err = StepPolicy::builder("bad")
            .band_below(f64::NAN, 1)
            .otherwise(3)
            .build()
            .unwrap_err();
        assert_eq!(err, StepPolicyError::NonFiniteBound);
    }

    #[test]
    fn rejects_oversized_difficulty() {
        let err = StepPolicy::builder("bad")
            .band_below(5.0, 70)
            .otherwise(3)
            .build()
            .unwrap_err();
        assert_eq!(err, StepPolicyError::BadDifficulty { bits: 70 });
    }

    #[test]
    fn accessors_expose_structure() {
        let p = tiers();
        assert_eq!(p.bands().len(), 2);
        assert_eq!(p.fallback().bits(), 16);
        assert_eq!(p.name(), "tiers");
    }

    #[test]
    fn errors_display() {
        assert!(!StepPolicyError::NonFiniteBound.to_string().is_empty());
        assert!(StepPolicyError::BadDifficulty { bits: 70 }
            .to_string()
            .contains("70"));
    }
}
