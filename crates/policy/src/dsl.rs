//! The administrator policy rule DSL.
//!
//! The paper positions the policy module as operator-configurable: “a
//! network administrator may specify a policy based on her specific
//! security needs.” This module gives that sentence a concrete syntax, so
//! policies can live in configuration files and be hot-swapped without
//! recompiling:
//!
//! ```text
//! policy "escalate" {
//!   # trusted clients solve trivial puzzles
//!   when score < 2.0 => difficulty 1;
//!   when score in [2.0, 7.0) => linear(base = 5);
//!   otherwise => power(min = 12, max = 18, exponent = 2.0);
//! }
//! ```
//!
//! Rules are evaluated top to bottom; the first matching rule decides. The
//! final rule must be `otherwise`, so every score is covered by
//! construction. `#` starts a comment running to end of line.
//!
//! # Example
//!
//! ```
//! use aipow_policy::{dsl, Policy, PolicyContext};
//! use aipow_reputation::ReputationScore;
//!
//! let policy = dsl::parse(r#"
//!     policy "demo" {
//!         when score < 5.0 => difficulty 2;
//!         otherwise => difficulty 12;
//!     }
//! "#)?;
//! let ctx = PolicyContext::default();
//! assert_eq!(policy.difficulty_for(ReputationScore::new(1.0).unwrap(), &ctx).bits(), 2);
//! assert_eq!(policy.difficulty_for(ReputationScore::new(9.0).unwrap(), &ctx).bits(), 12);
//! # Ok::<(), aipow_policy::dsl::ParseError>(())
//! ```

use crate::context::PolicyContext;
use crate::Policy;
use aipow_pow::Difficulty;
use aipow_reputation::ReputationScore;
use core::fmt;

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

/// A parsed policy definition.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyDef {
    /// The policy's declared name.
    pub name: String,
    /// Ordered rules; the last is always [`Condition::Otherwise`].
    pub rules: Vec<Rule>,
}

/// One `when … => …;` rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// The guard.
    pub condition: Condition,
    /// The difficulty computation applied when the guard matches.
    pub action: Action,
}

/// A rule guard over the reputation score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Condition {
    /// `score < x`
    Lt(f64),
    /// `score <= x`
    Le(f64),
    /// `score > x`
    Gt(f64),
    /// `score >= x`
    Ge(f64),
    /// `score in [lo, hi)` or `score in [lo, hi]`
    InRange {
        /// Inclusive lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
        /// Whether `hi` is inclusive (`]`) or exclusive (`)`).
        hi_inclusive: bool,
    },
    /// `otherwise` — matches every score.
    Otherwise,
}

impl Condition {
    /// Whether the guard matches `score`.
    pub fn matches(&self, score: f64) -> bool {
        match *self {
            Condition::Lt(x) => score < x,
            Condition::Le(x) => score <= x,
            Condition::Gt(x) => score > x,
            Condition::Ge(x) => score >= x,
            Condition::InRange {
                lo,
                hi,
                hi_inclusive,
            } => score >= lo && (score < hi || (hi_inclusive && score <= hi)),
            Condition::Otherwise => true,
        }
    }
}

/// A rule action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// `difficulty N` — a constant difficulty.
    Constant(u8),
    /// `linear(base = N)` — `d = round(score) + base`.
    Linear {
        /// Difficulty at score 0.
        base: u8,
    },
    /// `power(min = A, max = B, exponent = E)` —
    /// `d = round(min + (max−min)·(score/10)^E)`.
    Power {
        /// Difficulty at score 0.
        min: u8,
        /// Difficulty at score 10.
        max: u8,
        /// Curvature.
        exponent: f64,
    },
}

impl Action {
    /// Computes the difficulty for `score`.
    pub fn apply(&self, score: ReputationScore) -> Difficulty {
        match *self {
            Action::Constant(bits) => Difficulty::saturating(bits as u32),
            Action::Linear { base } => Difficulty::saturating(score.band() as u32 + base as u32),
            Action::Power { min, max, exponent } => {
                let fraction = (score.value() / 10.0).powf(exponent);
                let bits = min as f64 + (max.saturating_sub(min)) as f64 * fraction;
                Difficulty::saturating(bits.round() as u32)
            }
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Condition::Lt(x) => write!(f, "when score < {x}"),
            Condition::Le(x) => write!(f, "when score <= {x}"),
            Condition::Gt(x) => write!(f, "when score > {x}"),
            Condition::Ge(x) => write!(f, "when score >= {x}"),
            Condition::InRange {
                lo,
                hi,
                hi_inclusive,
            } => {
                let close = if hi_inclusive { ']' } else { ')' };
                write!(f, "when score in [{lo}, {hi}{close}")
            }
            Condition::Otherwise => write!(f, "otherwise"),
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Action::Constant(bits) => write!(f, "difficulty {bits}"),
            Action::Linear { base } => write!(f, "linear(base = {base})"),
            Action::Power { min, max, exponent } => {
                write!(f, "power(min = {min}, max = {max}, exponent = {exponent})")
            }
        }
    }
}

impl fmt::Display for PolicyDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "policy \"{}\" {{", self.name)?;
        for rule in &self.rules {
            writeln!(f, "    {} => {};", rule.condition, rule.action)?;
        }
        write!(f, "}}")
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A parse or validation error, with source position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line of the error.
    pub line: usize,
    /// 1-based column of the error.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    fn new(line: usize, col: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}, column {}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Number(f64),
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    RParenBracket, // ')' used as range close
    LParen,
    Comma,
    Semi,
    Arrow,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Str(s) => write!(f, "string \"{s}\""),
            Tok::Number(n) => write!(f, "number {n}"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::RParenBracket => write!(f, "`)`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Arrow => write!(f, "`=>`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::Eq => write!(f, "`=`"),
        }
    }
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

fn lex(source: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut chars = source.chars().peekable();

    macro_rules! push {
        ($tok:expr, $line:expr, $col:expr) => {
            out.push(Spanned {
                tok: $tok,
                line: $line,
                col: $col,
            })
        };
    }

    while let Some(&c) = chars.peek() {
        let (tline, tcol) = (line, col);
        match c {
            '\n' => {
                chars.next();
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                chars.next();
                col += 1;
            }
            '#' => {
                // Comment to end of line.
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        col = 1;
                        break;
                    }
                }
            }
            '{' => {
                chars.next();
                col += 1;
                push!(Tok::LBrace, tline, tcol);
            }
            '}' => {
                chars.next();
                col += 1;
                push!(Tok::RBrace, tline, tcol);
            }
            '[' => {
                chars.next();
                col += 1;
                push!(Tok::LBracket, tline, tcol);
            }
            ']' => {
                chars.next();
                col += 1;
                push!(Tok::RBracket, tline, tcol);
            }
            '(' => {
                chars.next();
                col += 1;
                push!(Tok::LParen, tline, tcol);
            }
            ')' => {
                chars.next();
                col += 1;
                push!(Tok::RParenBracket, tline, tcol);
            }
            ',' => {
                chars.next();
                col += 1;
                push!(Tok::Comma, tline, tcol);
            }
            ';' => {
                chars.next();
                col += 1;
                push!(Tok::Semi, tline, tcol);
            }
            '=' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'>') {
                    chars.next();
                    col += 1;
                    push!(Tok::Arrow, tline, tcol);
                } else {
                    push!(Tok::Eq, tline, tcol);
                }
            }
            '<' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'=') {
                    chars.next();
                    col += 1;
                    push!(Tok::Le, tline, tcol);
                } else {
                    push!(Tok::Lt, tline, tcol);
                }
            }
            '>' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'=') {
                    chars.next();
                    col += 1;
                    push!(Tok::Ge, tline, tcol);
                } else {
                    push!(Tok::Gt, tline, tcol);
                }
            }
            '"' => {
                chars.next();
                col += 1;
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => {
                            col += 1;
                            break;
                        }
                        Some('\n') => {
                            return Err(ParseError::new(tline, tcol, "unterminated string literal"))
                        }
                        Some(c) => {
                            col += 1;
                            s.push(c);
                        }
                        None => {
                            return Err(ParseError::new(tline, tcol, "unterminated string literal"))
                        }
                    }
                }
                push!(Tok::Str(s), tline, tcol);
            }
            c if c.is_ascii_digit() || c == '-' || c == '.' => {
                let mut text = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' {
                        text.push(c);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                let value: f64 = text.parse().map_err(|_| {
                    ParseError::new(tline, tcol, format!("invalid number `{text}`"))
                })?;
                if !value.is_finite() {
                    return Err(ParseError::new(tline, tcol, "number must be finite"));
                }
                push!(Tok::Number(value), tline, tcol);
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut text = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                        text.push(c);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                push!(Tok::Ident(text), tline, tcol);
            }
            other => {
                return Err(ParseError::new(
                    tline,
                    tcol,
                    format!("unexpected character `{other}`"),
                ))
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Spanned> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, message: impl Into<String>) -> ParseError {
        match self.peek().or_else(|| self.tokens.last()) {
            Some(t) => ParseError::new(t.line, t.col, message),
            None => ParseError::new(1, 1, message),
        }
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<Spanned, ParseError> {
        match self.next() {
            Some(t) if t.tok == *want => Ok(t),
            Some(t) => Err(ParseError::new(
                t.line,
                t.col,
                format!("expected {what}, found {}", t.tok),
            )),
            None => Err(self.err_here(format!("expected {what}, found end of input"))),
        }
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Spanned {
                tok: Tok::Ident(ref s),
                ..
            }) if s == keyword => Ok(()),
            Some(t) => Err(ParseError::new(
                t.line,
                t.col,
                format!("expected keyword `{keyword}`, found {}", t.tok),
            )),
            None => Err(self.err_here(format!("expected keyword `{keyword}`, found end of input"))),
        }
    }

    fn number(&mut self, what: &str) -> Result<(f64, usize, usize), ParseError> {
        match self.next() {
            Some(Spanned {
                tok: Tok::Number(n),
                line,
                col,
            }) => Ok((n, line, col)),
            Some(t) => Err(ParseError::new(
                t.line,
                t.col,
                format!("expected {what}, found {}", t.tok),
            )),
            None => Err(self.err_here(format!("expected {what}, found end of input"))),
        }
    }

    fn difficulty_bits(&mut self, what: &str) -> Result<u8, ParseError> {
        let (n, line, col) = self.number(what)?;
        if !(0.0..=64.0).contains(&n) || n.fract() != 0.0 {
            return Err(ParseError::new(
                line,
                col,
                format!("{what} must be an integer in [0, 64], got {n}"),
            ));
        }
        Ok(n as u8)
    }

    fn parse_policy(&mut self) -> Result<PolicyDef, ParseError> {
        self.expect_keyword("policy")?;
        let name = match self.next() {
            Some(Spanned {
                tok: Tok::Str(s), ..
            }) => s,
            Some(Spanned {
                tok: Tok::Ident(s), ..
            }) => s,
            Some(t) => {
                return Err(ParseError::new(
                    t.line,
                    t.col,
                    format!("expected policy name, found {}", t.tok),
                ))
            }
            None => return Err(self.err_here("expected policy name, found end of input")),
        };
        self.expect(&Tok::LBrace, "`{`")?;

        let mut rules = Vec::new();
        loop {
            match self.peek() {
                Some(Spanned {
                    tok: Tok::RBrace, ..
                }) => {
                    self.next();
                    break;
                }
                Some(_) => rules.push(self.parse_rule()?),
                None => return Err(self.err_here("expected rule or `}`, found end of input")),
            }
        }

        if let Some(t) = self.peek() {
            return Err(ParseError::new(
                t.line,
                t.col,
                format!("unexpected trailing input: {}", t.tok),
            ));
        }

        validate(&PolicyDef {
            name: name.clone(),
            rules: rules.clone(),
        })?;
        Ok(PolicyDef { name, rules })
    }

    fn parse_rule(&mut self) -> Result<Rule, ParseError> {
        let condition = match self.next() {
            Some(Spanned {
                tok: Tok::Ident(ref s),
                ..
            }) if s == "when" => self.parse_condition()?,
            Some(Spanned {
                tok: Tok::Ident(ref s),
                ..
            }) if s == "otherwise" => Condition::Otherwise,
            Some(t) => {
                return Err(ParseError::new(
                    t.line,
                    t.col,
                    format!("expected `when` or `otherwise`, found {}", t.tok),
                ))
            }
            None => return Err(self.err_here("expected `when` or `otherwise`, found end of input")),
        };
        self.expect(&Tok::Arrow, "`=>`")?;
        let action = self.parse_action()?;
        self.expect(&Tok::Semi, "`;`")?;
        Ok(Rule { condition, action })
    }

    fn parse_condition(&mut self) -> Result<Condition, ParseError> {
        self.expect_keyword("score")?;
        match self.next() {
            Some(Spanned { tok: Tok::Lt, .. }) => Ok(Condition::Lt(self.number("score bound")?.0)),
            Some(Spanned { tok: Tok::Le, .. }) => Ok(Condition::Le(self.number("score bound")?.0)),
            Some(Spanned { tok: Tok::Gt, .. }) => Ok(Condition::Gt(self.number("score bound")?.0)),
            Some(Spanned { tok: Tok::Ge, .. }) => Ok(Condition::Ge(self.number("score bound")?.0)),
            Some(Spanned {
                tok: Tok::Ident(ref s),
                line,
                col,
            }) if s == "in" => {
                self.expect(&Tok::LBracket, "`[`")?;
                let (lo, ..) = self.number("range lower bound")?;
                self.expect(&Tok::Comma, "`,`")?;
                let (hi, ..) = self.number("range upper bound")?;
                let hi_inclusive = match self.next() {
                    Some(Spanned {
                        tok: Tok::RBracket, ..
                    }) => true,
                    Some(Spanned {
                        tok: Tok::RParenBracket,
                        ..
                    }) => false,
                    Some(t) => {
                        return Err(ParseError::new(
                            t.line,
                            t.col,
                            format!("expected `]` or `)`, found {}", t.tok),
                        ))
                    }
                    None => return Err(self.err_here("expected `]` or `)`, found end of input")),
                };
                if lo > hi {
                    return Err(ParseError::new(
                        line,
                        col,
                        format!("range [{lo}, {hi}] has inverted bounds"),
                    ));
                }
                Ok(Condition::InRange {
                    lo,
                    hi,
                    hi_inclusive,
                })
            }
            Some(t) => Err(ParseError::new(
                t.line,
                t.col,
                format!("expected comparison or `in`, found {}", t.tok),
            )),
            None => Err(self.err_here("expected comparison or `in`, found end of input")),
        }
    }

    fn parse_action(&mut self) -> Result<Action, ParseError> {
        match self.next() {
            Some(Spanned {
                tok: Tok::Ident(ref s),
                ..
            }) if s == "difficulty" => Ok(Action::Constant(self.difficulty_bits("difficulty")?)),
            Some(Spanned {
                tok: Tok::Ident(ref s),
                ..
            }) if s == "linear" => {
                self.expect(&Tok::LParen, "`(`")?;
                self.expect_keyword("base")?;
                self.expect(&Tok::Eq, "`=`")?;
                let base = self.difficulty_bits("base")?;
                self.expect(&Tok::RParenBracket, "`)`")?;
                Ok(Action::Linear { base })
            }
            Some(Spanned {
                tok: Tok::Ident(ref s),
                line,
                col,
            }) if s == "power" => {
                self.expect(&Tok::LParen, "`(`")?;
                self.expect_keyword("min")?;
                self.expect(&Tok::Eq, "`=`")?;
                let min = self.difficulty_bits("min")?;
                self.expect(&Tok::Comma, "`,`")?;
                self.expect_keyword("max")?;
                self.expect(&Tok::Eq, "`=`")?;
                let max = self.difficulty_bits("max")?;
                self.expect(&Tok::Comma, "`,`")?;
                self.expect_keyword("exponent")?;
                self.expect(&Tok::Eq, "`=`")?;
                let (exponent, eline, ecol) = self.number("exponent")?;
                self.expect(&Tok::RParenBracket, "`)`")?;
                if min > max {
                    return Err(ParseError::new(
                        line,
                        col,
                        format!("power range [{min}, {max}] has inverted bounds"),
                    ));
                }
                if exponent <= 0.0 {
                    return Err(ParseError::new(
                        eline,
                        ecol,
                        format!("exponent must be positive, got {exponent}"),
                    ));
                }
                Ok(Action::Power { min, max, exponent })
            }
            Some(t) => Err(ParseError::new(
                t.line,
                t.col,
                format!(
                    "expected `difficulty`, `linear`, or `power`, found {}",
                    t.tok
                ),
            )),
            None => Err(self.err_here("expected an action, found end of input")),
        }
    }
}

/// Structural validation: at least one rule, `otherwise` present exactly
/// once, and only in final position.
fn validate(def: &PolicyDef) -> Result<(), ParseError> {
    if def.rules.is_empty() {
        return Err(ParseError::new(1, 1, "policy has no rules"));
    }
    for (i, rule) in def.rules.iter().enumerate() {
        let is_last = i + 1 == def.rules.len();
        let is_otherwise = rule.condition == Condition::Otherwise;
        if is_last && !is_otherwise {
            return Err(ParseError::new(
                1,
                1,
                "the final rule must be `otherwise` so every score is covered",
            ));
        }
        if !is_last && is_otherwise {
            return Err(ParseError::new(1, 1, "`otherwise` must be the final rule"));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Compiled policy
// ---------------------------------------------------------------------------

/// A parsed, validated, executable DSL policy.
#[derive(Debug, Clone, PartialEq)]
pub struct DslPolicy {
    def: PolicyDef,
}

impl DslPolicy {
    /// The underlying definition.
    pub fn def(&self) -> &PolicyDef {
        &self.def
    }
}

impl fmt::Display for DslPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.def.fmt(f)
    }
}

impl Policy for DslPolicy {
    fn name(&self) -> &str {
        &self.def.name
    }

    fn difficulty_for(&self, score: ReputationScore, _ctx: &PolicyContext) -> Difficulty {
        let s = score.value();
        for rule in &self.def.rules {
            if rule.condition.matches(s) {
                return rule.action.apply(score);
            }
        }
        // lint:allow(no-unwrap) validation invariant: a validated
        // policy always ends in `otherwise`, so the loop returns.
        unreachable!("validated policy must have a total rule set")
    }
}

/// Parses DSL source into an executable policy.
///
/// # Errors
///
/// Returns [`ParseError`] (with line/column) for lexical, syntactic, or
/// structural problems — including a missing final `otherwise` rule.
pub fn parse(source: &str) -> Result<DslPolicy, ParseError> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    let def = parser.parse_policy()?;
    Ok(DslPolicy { def })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = r#"
        policy "escalate" {
            # trusted clients solve trivial puzzles
            when score < 2.0 => difficulty 1;
            when score in [2.0, 7.0) => linear(base = 5);
            otherwise => power(min = 12, max = 18, exponent = 2.0);
        }
    "#;

    fn score(v: f64) -> ReputationScore {
        ReputationScore::new(v).unwrap()
    }

    #[test]
    fn parses_demo_policy() {
        let p = parse(DEMO).unwrap();
        assert_eq!(p.name(), "escalate");
        assert_eq!(p.def().rules.len(), 3);
    }

    #[test]
    fn evaluation_follows_rule_order() {
        let p = parse(DEMO).unwrap();
        let ctx = PolicyContext::default();
        assert_eq!(p.difficulty_for(score(0.5), &ctx).bits(), 1);
        // In-range rule: linear(base=5) at score 4 → band 4 + 5 = 9.
        assert_eq!(p.difficulty_for(score(4.0), &ctx).bits(), 9);
        // Otherwise: power curve at score 10 → max = 18.
        assert_eq!(p.difficulty_for(score(10.0), &ctx).bits(), 18);
    }

    #[test]
    fn range_endpoint_semantics() {
        let p = parse(
            r#"policy p {
                when score in [2.0, 7.0) => difficulty 3;
                when score in [7.0, 9.0] => difficulty 5;
                otherwise => difficulty 8;
            }"#,
        )
        .unwrap();
        let ctx = PolicyContext::default();
        assert_eq!(p.difficulty_for(score(2.0), &ctx).bits(), 3); // lo inclusive
        assert_eq!(p.difficulty_for(score(6.999), &ctx).bits(), 3);
        assert_eq!(p.difficulty_for(score(7.0), &ctx).bits(), 5); // hi exclusive in first
        assert_eq!(p.difficulty_for(score(9.0), &ctx).bits(), 5); // hi inclusive in second
        assert_eq!(p.difficulty_for(score(9.5), &ctx).bits(), 8);
        assert_eq!(p.difficulty_for(score(1.0), &ctx).bits(), 8);
    }

    #[test]
    fn comparison_operators() {
        let p = parse(
            r#"policy cmp {
                when score <= 1.0 => difficulty 0;
                when score > 8.0 => difficulty 20;
                otherwise => difficulty 6;
            }"#,
        )
        .unwrap();
        let ctx = PolicyContext::default();
        assert_eq!(p.difficulty_for(score(1.0), &ctx).bits(), 0);
        assert_eq!(p.difficulty_for(score(8.0), &ctx).bits(), 6);
        assert_eq!(p.difficulty_for(score(8.01), &ctx).bits(), 20);
    }

    #[test]
    fn bare_identifier_name_allowed() {
        let p = parse("policy strict-prod { otherwise => difficulty 9; }").unwrap();
        assert_eq!(p.name(), "strict-prod");
    }

    #[test]
    fn missing_otherwise_is_rejected() {
        let err = parse(r#"policy p { when score < 5.0 => difficulty 1; }"#).unwrap_err();
        assert!(err.message.contains("otherwise"), "{err}");
    }

    #[test]
    fn otherwise_not_last_is_rejected() {
        let err = parse(
            r#"policy p {
                otherwise => difficulty 1;
                when score < 5.0 => difficulty 2;
            }"#,
        )
        .unwrap_err();
        assert!(err.message.contains("final rule"), "{err}");
    }

    #[test]
    fn empty_policy_is_rejected() {
        let err = parse("policy p { }").unwrap_err();
        assert!(err.message.contains("no rules"), "{err}");
    }

    #[test]
    fn missing_semicolon_reports_position() {
        let err = parse("policy p {\n  otherwise => difficulty 1\n}").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("`;`"), "{err}");
    }

    #[test]
    fn oversized_difficulty_rejected() {
        let err = parse("policy p { otherwise => difficulty 65; }").unwrap_err();
        assert!(err.message.contains("[0, 64]"), "{err}");
    }

    #[test]
    fn fractional_difficulty_rejected() {
        let err = parse("policy p { otherwise => difficulty 3.5; }").unwrap_err();
        assert!(err.message.contains("integer"), "{err}");
    }

    #[test]
    fn inverted_range_rejected() {
        let err = parse(
            "policy p { when score in [7.0, 2.0) => difficulty 1; otherwise => difficulty 2; }",
        )
        .unwrap_err();
        assert!(err.message.contains("inverted"), "{err}");
    }

    #[test]
    fn inverted_power_range_rejected() {
        let err = parse("policy p { otherwise => power(min = 9, max = 2, exponent = 1.0); }")
            .unwrap_err();
        assert!(err.message.contains("inverted"), "{err}");
    }

    #[test]
    fn nonpositive_exponent_rejected() {
        let err = parse("policy p { otherwise => power(min = 1, max = 9, exponent = 0.0); }")
            .unwrap_err();
        assert!(err.message.contains("positive"), "{err}");
    }

    #[test]
    fn unterminated_string_rejected() {
        let err = parse("policy \"oops { otherwise => difficulty 1; }").unwrap_err();
        assert!(err.message.contains("unterminated"), "{err}");
    }

    #[test]
    fn unknown_character_rejected() {
        let err = parse("policy p { otherwise => difficulty 1; } @").unwrap_err();
        assert!(err.message.contains('@'), "{err}");
    }

    #[test]
    fn trailing_tokens_rejected() {
        let err = parse("policy p { otherwise => difficulty 1; } policy").unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
    }

    #[test]
    fn comments_are_ignored() {
        let p =
            parse("# leading comment\npolicy p { # inline\n otherwise => difficulty 4; # end\n }")
                .unwrap();
        assert_eq!(
            p.difficulty_for(score(5.0), &PolicyContext::default())
                .bits(),
            4
        );
    }

    #[test]
    fn print_parse_fixpoint() {
        let p1 = parse(DEMO).unwrap();
        let printed = p1.to_string();
        let p2 = parse(&printed).unwrap();
        assert_eq!(p1.def(), p2.def(), "printed:\n{printed}");
        assert_eq!(printed, p2.to_string());
    }

    #[test]
    fn negative_bounds_parse() {
        // Scores are never negative, but the grammar permits the literal;
        // the rule simply never fires.
        let p = parse("policy p { when score < -1.0 => difficulty 0; otherwise => difficulty 2; }")
            .unwrap();
        assert_eq!(
            p.difficulty_for(score(0.0), &PolicyContext::default())
                .bits(),
            2
        );
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_condition() -> impl Strategy<Value = Condition> {
            prop_oneof![
                (0.0f64..10.0).prop_map(Condition::Lt),
                (0.0f64..10.0).prop_map(Condition::Le),
                (0.0f64..10.0).prop_map(Condition::Gt),
                (0.0f64..10.0).prop_map(Condition::Ge),
                (0.0f64..5.0, 0.0f64..5.0, any::<bool>()).prop_map(|(a, b, inc)| {
                    Condition::InRange {
                        lo: a.min(b),
                        hi: a.max(b) + 0.5,
                        hi_inclusive: inc,
                    }
                }),
            ]
        }

        fn arb_action() -> impl Strategy<Value = Action> {
            prop_oneof![
                (0u8..=64).prop_map(Action::Constant),
                (0u8..=50).prop_map(|base| Action::Linear { base }),
                (0u8..=20, 0u8..=40, 1u32..=40).prop_map(|(min, extra, e)| Action::Power {
                    min,
                    max: min + extra,
                    exponent: e as f64 / 10.0,
                }),
            ]
        }

        proptest! {
            /// Printing any valid AST and re-parsing reproduces it exactly.
            #[test]
            fn print_parse_roundtrip(rules in proptest::collection::vec(
                (arb_condition(), arb_action()), 0..6),
                final_action in arb_action()) {
                let mut all: Vec<Rule> = rules
                    .into_iter()
                    .map(|(condition, action)| Rule { condition, action })
                    .collect();
                all.push(Rule { condition: Condition::Otherwise, action: final_action });
                let def = PolicyDef { name: "prop".into(), rules: all };
                let printed = def.to_string();
                let reparsed = parse(&printed).expect("printed policy must parse");
                prop_assert_eq!(reparsed.def(), &def, "printed:\n{}", printed);
            }

            /// Every score gets a difficulty (totality) within bounds.
            #[test]
            fn evaluation_total(s in 0.0f64..=10.0) {
                let p = parse(DEMO).unwrap();
                let d = p.difficulty_for(
                    ReputationScore::new(s).unwrap(),
                    &PolicyContext::default(),
                );
                prop_assert!(d.bits() <= 64);
            }

            /// The parser never panics, whatever bytes arrive — it returns
            /// a positioned error instead.
            #[test]
            fn parser_never_panics(source in "\\PC{0,200}") {
                let _ = parse(&source);
            }

            /// Mutilating valid source still never panics (truncations,
            /// splices).
            #[test]
            fn mutated_source_never_panics(cut in 0usize..200, splice in "\\PC{0,16}") {
                let mut source = DEMO.to_string();
                let mut cut = cut.min(source.len());
                while !source.is_char_boundary(cut) {
                    cut -= 1;
                }
                source.truncate(cut);
                source.push_str(&splice);
                let _ = parse(&source);
            }
        }
    }
}
