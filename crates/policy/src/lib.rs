//! The policy module of the framework (paper §II.2, §III).
//!
//! “A policy is a rule-based strategy for mapping the reputation score of a
//! client to the appropriate puzzle difficulty. … a network administrator
//! may specify a policy based on her specific security needs.”
//!
//! This crate provides:
//!
//! - the [`Policy`] trait — score in, difficulty out, with a
//!   [`PolicyContext`] carrying server conditions for adaptive policies;
//! - the paper's three evaluated policies:
//!   [`LinearPolicy::policy1`] (`d = R + 1`),
//!   [`LinearPolicy::policy2`] (`d = R + 5`), and
//!   [`ErrorRangePolicy`] (Policy 3: error-range randomized mapping);
//! - extensions: [`StepPolicy`] tiers, [`PowerPolicy`] curvature,
//!   [`LoadAdaptivePolicy`] server-load coupling, and
//!   [`combinators`] for clamping/offsetting any policy;
//! - an administrator **rule DSL** ([`dsl`]) so policies can be specified
//!   as text in configuration, exactly as the paper envisions;
//! - a [`registry`] resolving textual policy specs (`"policy2"`,
//!   `"policy3:eps=2.5"`, or full DSL source) into boxed policies;
//! - [`routing`]: a [`BackendRouter`] picks which *puzzle backend* a
//!   client gets (score past a threshold → the memory-hard puzzle),
//!   complementing the difficulty mapping.
//!
//! # Example
//!
//! ```
//! use aipow_policy::{LinearPolicy, Policy, PolicyContext};
//! use aipow_reputation::ReputationScore;
//!
//! let policy = LinearPolicy::policy2();
//! let score = ReputationScore::new(10.0)?;
//! let d = policy.difficulty_for(score, &PolicyContext::default());
//! assert_eq!(d.bits(), 15); // R=10 → 15-difficult, paper §III.A
//! # Ok::<(), aipow_reputation::score::ScoreRangeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod combinators;
pub mod context;
pub mod dsl;
pub mod error_range;
pub mod linear;
pub mod power;
pub mod registry;
pub mod routing;
pub mod step;

pub use adaptive::LoadAdaptivePolicy;
pub use context::PolicyContext;
pub use error_range::ErrorRangePolicy;
pub use linear::LinearPolicy;
pub use power::PowerPolicy;
pub use routing::{BackendRouter, Sha256Router, ThresholdRouter};
pub use step::StepPolicy;

use aipow_pow::Difficulty;
use aipow_reputation::ReputationScore;

/// A rule-based strategy mapping a reputation score to puzzle difficulty.
///
/// Implementations must be thread-safe: one policy instance serves the
/// whole admission pipeline. Policies that randomize (Policy 3) use
/// interior mutability for their RNG.
pub trait Policy: Send + Sync + core::fmt::Debug {
    /// A short, stable identifier for reports and configuration.
    fn name(&self) -> &str;

    /// Maps `score` to a puzzle difficulty under server conditions `ctx`.
    fn difficulty_for(&self, score: ReputationScore, ctx: &PolicyContext) -> Difficulty;
}

impl<P: Policy + ?Sized> Policy for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn difficulty_for(&self, score: ReputationScore, ctx: &PolicyContext) -> Difficulty {
        (**self).difficulty_for(score, ctx)
    }
}

impl<P: Policy + ?Sized> Policy for std::sync::Arc<P> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn difficulty_for(&self, score: ReputationScore, ctx: &PolicyContext) -> Difficulty {
        (**self).difficulty_for(score, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boxed_and_arc_policies_delegate() {
        let boxed: Box<dyn Policy> = Box::new(LinearPolicy::policy1());
        assert_eq!(boxed.name(), "policy1");
        let arced: std::sync::Arc<dyn Policy> = std::sync::Arc::new(LinearPolicy::policy2());
        let d = arced.difficulty_for(
            ReputationScore::new(0.0).unwrap(),
            &PolicyContext::default(),
        );
        assert_eq!(d.bits(), 5);
    }
}
