//! Load-adaptive policy wrapper.
//!
//! The paper's property 2: “the amount of work inflicted by a puzzle is
//! adaptive and can be tuned.” This wrapper couples any base policy to the
//! server's live condition: as load rises (or an attack is declared), every
//! client's difficulty rises with it, benign clients least in absolute
//! latency because their base difficulty is lowest.

use crate::context::PolicyContext;
use crate::Policy;
use aipow_pow::Difficulty;
use aipow_reputation::ReputationScore;

/// Wraps a policy and adds difficulty under load:
/// `d' = d + round(load · load_boost) + (under_attack ? attack_boost : 0)`.
///
/// ```
/// use aipow_policy::{LinearPolicy, LoadAdaptivePolicy, Policy, PolicyContext};
/// use aipow_reputation::ReputationScore;
/// let p = LoadAdaptivePolicy::new(LinearPolicy::policy1(), 4, 3);
/// let s = ReputationScore::new(0.0).unwrap();
/// assert_eq!(p.difficulty_for(s, &PolicyContext::default()).bits(), 1);
/// assert_eq!(p.difficulty_for(s, &PolicyContext::with_load(1.0)).bits(), 5);
/// assert_eq!(p.difficulty_for(s, &PolicyContext::with_load(1.0).attacked()).bits(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct LoadAdaptivePolicy<P> {
    name: String,
    inner: P,
    load_boost: u8,
    attack_boost: u8,
}

impl<P: Policy> LoadAdaptivePolicy<P> {
    /// Wraps `inner`, adding up to `load_boost` bits as load goes 0→1 and a
    /// flat `attack_boost` bits while an attack is declared.
    pub fn new(inner: P, load_boost: u8, attack_boost: u8) -> Self {
        let name = format!("adaptive({})", inner.name());
        LoadAdaptivePolicy {
            name,
            inner,
            load_boost,
            attack_boost,
        }
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Policy> Policy for LoadAdaptivePolicy<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn difficulty_for(&self, score: ReputationScore, ctx: &PolicyContext) -> Difficulty {
        let base = self.inner.difficulty_for(score, ctx);
        let load = ctx.server_load.clamp(0.0, 1.0);
        let mut extra = (load * self.load_boost as f64).round() as u32;
        if ctx.under_attack {
            extra += self.attack_boost as u32;
        }
        Difficulty::saturating(base.bits() as u32 + extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearPolicy;

    fn score(v: f64) -> ReputationScore {
        ReputationScore::new(v).unwrap()
    }

    #[test]
    fn idle_equals_inner() {
        let p = LoadAdaptivePolicy::new(LinearPolicy::policy2(), 6, 4);
        let ctx = PolicyContext::default();
        for band in 0..=10u8 {
            assert_eq!(p.difficulty_for(score(band as f64), &ctx).bits(), band + 5);
        }
    }

    #[test]
    fn load_scales_boost() {
        let p = LoadAdaptivePolicy::new(LinearPolicy::policy1(), 8, 0);
        assert_eq!(
            p.difficulty_for(score(0.0), &PolicyContext::with_load(0.5))
                .bits(),
            1 + 4
        );
        assert_eq!(
            p.difficulty_for(score(0.0), &PolicyContext::with_load(0.25))
                .bits(),
            1 + 2
        );
    }

    #[test]
    fn attack_flag_adds_flat_boost() {
        let p = LoadAdaptivePolicy::new(LinearPolicy::policy1(), 0, 7);
        let ctx = PolicyContext::default().attacked();
        assert_eq!(p.difficulty_for(score(3.0), &ctx).bits(), 4 + 7);
    }

    #[test]
    fn boosts_saturate_at_max() {
        let p = LoadAdaptivePolicy::new(LinearPolicy::new("hi", 60), 10, 10);
        let ctx = PolicyContext::with_load(1.0).attacked();
        assert_eq!(p.difficulty_for(score(10.0), &ctx).bits(), 64);
    }

    #[test]
    fn out_of_range_load_is_clamped() {
        let p = LoadAdaptivePolicy::new(LinearPolicy::policy1(), 8, 0);
        // Direct field construction bypasses with_load's clamp.
        let ctx = PolicyContext {
            server_load: 99.0,
            ..Default::default()
        };
        assert_eq!(p.difficulty_for(score(0.0), &ctx).bits(), 9);
    }

    #[test]
    fn name_reflects_inner() {
        let p = LoadAdaptivePolicy::new(LinearPolicy::policy2(), 1, 1);
        assert_eq!(p.name(), "adaptive(policy2)");
        assert_eq!(p.inner().name(), "policy2");
    }
}
