//! Curved score→difficulty mappings.
//!
//! Linear policies add a constant bit per score point — i.e. a constant
//! *latency factor* per point. A [`PowerPolicy`] curves the mapping so an
//! operator can stay lenient across the benign range and escalate steeply
//! near the top.

use crate::context::PolicyContext;
use crate::Policy;
use aipow_pow::Difficulty;
use aipow_reputation::ReputationScore;
use core::fmt;

/// A power-curve policy: `d = round(min + (max − min) · (s/10)^exponent)`.
///
/// `exponent = 1` is linear between `min` and `max`; `exponent > 1` is
/// convex (lenient at low scores, harsh near 10); `exponent < 1` is concave.
///
/// ```
/// use aipow_policy::{PowerPolicy, Policy, PolicyContext};
/// use aipow_reputation::ReputationScore;
/// let p = PowerPolicy::new("curve", 1, 15, 2.0)?;
/// let ctx = PolicyContext::default();
/// assert_eq!(p.difficulty_for(ReputationScore::MIN, &ctx).bits(), 1);
/// assert_eq!(p.difficulty_for(ReputationScore::MAX, &ctx).bits(), 15);
/// // Convex: halfway up the score scale sits well below halfway in bits.
/// let mid = p.difficulty_for(ReputationScore::new(5.0).unwrap(), &ctx).bits();
/// assert!(mid < 8, "mid {mid}");
/// # Ok::<(), aipow_policy::power::PowerPolicyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PowerPolicy {
    name: String,
    min: u8,
    max: u8,
    exponent: f64,
}

/// Error constructing a [`PowerPolicy`].
#[derive(Debug, Clone, PartialEq)]
pub enum PowerPolicyError {
    /// `min` must not exceed `max`, and both must be ≤ 64.
    BadRange {
        /// Configured minimum bits.
        min: u8,
        /// Configured maximum bits.
        max: u8,
    },
    /// The exponent must be finite and positive.
    BadExponent {
        /// The rejected exponent.
        exponent: f64,
    },
}

impl fmt::Display for PowerPolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerPolicyError::BadRange { min, max } => {
                write!(f, "power policy range [{min}, {max}] is invalid")
            }
            PowerPolicyError::BadExponent { exponent } => {
                write!(
                    f,
                    "power policy exponent {exponent} must be finite and positive"
                )
            }
        }
    }
}

impl std::error::Error for PowerPolicyError {}

impl PowerPolicy {
    /// Creates a power policy mapping scores 0→`min` bits and 10→`max`
    /// bits with the given curvature.
    ///
    /// # Errors
    ///
    /// Returns [`PowerPolicyError`] for an inverted/overflowing range or a
    /// non-positive exponent.
    pub fn new(
        name: impl Into<String>,
        min: u8,
        max: u8,
        exponent: f64,
    ) -> Result<Self, PowerPolicyError> {
        if min > max || max > 64 {
            return Err(PowerPolicyError::BadRange { min, max });
        }
        if !exponent.is_finite() || exponent <= 0.0 {
            return Err(PowerPolicyError::BadExponent { exponent });
        }
        Ok(PowerPolicy {
            name: name.into(),
            min,
            max,
            exponent,
        })
    }

    /// The configured `(min, max, exponent)`.
    pub fn parameters(&self) -> (u8, u8, f64) {
        (self.min, self.max, self.exponent)
    }
}

impl Policy for PowerPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn difficulty_for(&self, score: ReputationScore, _ctx: &PolicyContext) -> Difficulty {
        let fraction = (score.value() / 10.0).powf(self.exponent);
        let bits = self.min as f64 + (self.max - self.min) as f64 * fraction;
        Difficulty::saturating(bits.round() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score(v: f64) -> ReputationScore {
        ReputationScore::new(v).unwrap()
    }

    #[test]
    fn endpoints_hit_min_and_max() {
        let p = PowerPolicy::new("p", 3, 20, 1.7).unwrap();
        let ctx = PolicyContext::default();
        assert_eq!(p.difficulty_for(score(0.0), &ctx).bits(), 3);
        assert_eq!(p.difficulty_for(score(10.0), &ctx).bits(), 20);
    }

    #[test]
    fn exponent_one_is_linear() {
        let p = PowerPolicy::new("lin", 0, 10, 1.0).unwrap();
        let ctx = PolicyContext::default();
        for band in 0..=10u8 {
            assert_eq!(p.difficulty_for(score(band as f64), &ctx).bits(), band);
        }
    }

    #[test]
    fn convex_curve_is_below_linear_midway() {
        let convex = PowerPolicy::new("cv", 0, 16, 2.0).unwrap();
        let ctx = PolicyContext::default();
        // (5/10)^2 = 0.25 → 4 bits, vs 8 for linear.
        assert_eq!(convex.difficulty_for(score(5.0), &ctx).bits(), 4);
    }

    #[test]
    fn concave_curve_is_above_linear_midway() {
        let concave = PowerPolicy::new("cc", 0, 16, 0.5).unwrap();
        let ctx = PolicyContext::default();
        // sqrt(0.5) ≈ 0.707 → round(11.3) = 11 bits.
        assert_eq!(concave.difficulty_for(score(5.0), &ctx).bits(), 11);
    }

    #[test]
    fn monotone_in_score() {
        let p = PowerPolicy::new("m", 2, 24, 3.0).unwrap();
        let ctx = PolicyContext::default();
        let mut prev = 0u8;
        for tenths in 0..=100 {
            let d = p.difficulty_for(score(tenths as f64 / 10.0), &ctx).bits();
            assert!(d >= prev, "not monotone at {tenths}");
            prev = d;
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert_eq!(
            PowerPolicy::new("x", 10, 5, 1.0).unwrap_err(),
            PowerPolicyError::BadRange { min: 10, max: 5 }
        );
        assert_eq!(
            PowerPolicy::new("x", 0, 70, 1.0).unwrap_err(),
            PowerPolicyError::BadRange { min: 0, max: 70 }
        );
        assert!(matches!(
            PowerPolicy::new("x", 0, 10, 0.0).unwrap_err(),
            PowerPolicyError::BadExponent { .. }
        ));
        assert!(matches!(
            PowerPolicy::new("x", 0, 10, f64::NAN).unwrap_err(),
            PowerPolicyError::BadExponent { .. }
        ));
    }

    #[test]
    fn degenerate_flat_range() {
        let p = PowerPolicy::new("flat", 7, 7, 2.0).unwrap();
        let ctx = PolicyContext::default();
        assert_eq!(p.difficulty_for(score(0.0), &ctx).bits(), 7);
        assert_eq!(p.difficulty_for(score(10.0), &ctx).bits(), 7);
    }

    #[test]
    fn error_display() {
        assert!(PowerPolicyError::BadRange { min: 9, max: 1 }
            .to_string()
            .contains("[9, 1]"));
    }
}
