//! Memory-hard fill/mix primitive for the memory-hard puzzle backend.
//!
//! The construction is an Argon2-style two-phase design over a byte
//! arena, vendored as a stand-in (no external password-hashing crate)
//! in the same spirit as the workspace's other hand-rolled primitives:
//!
//! 1. **Fill** — a sequential chain of 32-byte blocks seeded from a
//!    *public* domain label, `B_i = H(B_{i-1} ‖ B_{ref(i)})` with
//!    `ref(i)` drawn data-dependently from `B_{i-1}`. The chain is
//!    strictly sequential (each block depends on its predecessor), so
//!    the arena cannot be recomputed lazily per lookup without paying
//!    the whole fill again — holding it resident is the cheap strategy,
//!    which is exactly the memory-hardness argument.
//! 2. **Mix (walk)** — per solve attempt, a short data-dependent walk:
//!    `Y_0 = H(preimage)`, then `Y_j = H(Y_{j-1} ‖ B[idx_j][..16])`
//!    where `idx_j` is taken from `Y_{j-1}`. Each step's load address
//!    depends on the previous hash, so one item's walk serializes on
//!    memory latency; the step input is sized to a single SHA-256
//!    compression (32 + [`STEP_BLOCK_BYTES`] + padding ≤ 64 bytes).
//!
//! The arena seed contains **no secrets** — both prover and verifier
//! derive the identical arena from the label and the arena size alone,
//! so nothing beyond the arena size (one byte, carried in the
//! challenge) travels on the wire. The asymmetry the backend wants
//! falls out of the shapes: a solver does one strictly sequential walk
//! per *attempt* (~2^d of them at difficulty `d`, [`WALK_STEPS`] + 1
//! hashes each, every load dependent on the previous digest), while a
//! verifier does one walk per solution and — because distinct
//! solutions' walks are independent — interleaves a *batch* of them
//! through the multi-buffer SHA-256 kernel via [`Arena::walk_batch`].
//! Both sides amortize the fill across the process via
//! [`shared_arena`].

use crate::sha256::{Digest, Sha256};
use crate::sha256_wide;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Size of one arena block in bytes (one SHA-256 output).
pub const BLOCK_LEN: usize = 32;

/// Hash evaluations in one mix walk, excluding the initial preimage
/// hash. Chosen to pin both halves of the cost asymmetry `bench_gate`
/// checks: a solver pays `WALK_STEPS + 1` serialized compressions plus
/// the dependent loads *per attempt* (≥ 10x the SHA-256 backend's one
/// midstate-completed compression), while a verifier — batching
/// independent solutions' walks through the wide kernel — stays within
/// 2x of a scalar SHA-256 verification per solution.
pub const WALK_STEPS: usize = 12;

/// How many leading bytes of the referenced block each walk step hashes.
/// Sized so one step is one SHA-256 compression (32-byte digest +
/// 16-byte block prefix + padding fits one 64-byte block). The load
/// address still ranges over the whole arena and the block bytes are
/// unpredictable until the previous digest is known, so the residency
/// argument is unchanged (up to a factor of two in storable bytes).
pub const STEP_BLOCK_BYTES: usize = 16;

/// Smallest permitted arena, in MiB.
pub const MIN_ARENA_MIB: u8 = 1;

/// Largest permitted arena, in MiB. Bounded so a forged or
/// misconfigured parameter cannot ask either side to materialize
/// gigabytes.
pub const MAX_ARENA_MIB: u8 = 64;

/// Default arena size in MiB: large enough to spill L2 on commodity
/// cores (the walk then serializes on L3/DRAM latency), small enough
/// that the one-time fill stays in the tens of milliseconds.
pub const DEFAULT_ARENA_MIB: u8 = 8;

/// Domain label mixed into block 0; versioned so a future tweak to the
/// fill or walk schedule changes every digest.
const ARENA_LABEL: &[u8] = b"aipow/memmix-arena/v1";

/// Whether `mib` is an arena size this module will build.
pub fn validate_arena_mib(mib: u8) -> bool {
    (MIN_ARENA_MIB..=MAX_ARENA_MIB).contains(&mib)
}

/// A filled arena: `mib * 1024 * 1024 / 32` chained 32-byte blocks.
///
/// Arenas are deterministic in their size alone — every party building
/// an `N`-MiB arena holds identical bytes — and are immutable once
/// filled, so one instance is shared process-wide via [`shared_arena`].
pub struct Arena {
    mib: u8,
    blocks: Vec<[u8; BLOCK_LEN]>,
}

impl Arena {
    /// Fills an arena of `mib` MiB from the public domain label.
    ///
    /// # Panics
    ///
    /// Panics if `mib` is outside
    /// [`MIN_ARENA_MIB`]`..=`[`MAX_ARENA_MIB`]; callers validate via
    /// [`validate_arena_mib`] (the pow layer does so before any fill).
    pub fn fill(mib: u8) -> Self {
        assert!(
            validate_arena_mib(mib),
            "arena-size invariant: {MIN_ARENA_MIB}..={MAX_ARENA_MIB} MiB, got {mib}"
        );
        let n = mib as usize * 1024 * 1024 / BLOCK_LEN;
        let mut blocks: Vec<[u8; BLOCK_LEN]> = Vec::with_capacity(n);

        let mut h = Sha256::new();
        h.update(ARENA_LABEL);
        h.update(&[mib]);
        blocks.push(h.finalize().into_bytes());

        for i in 1..n {
            let prev = blocks[i - 1];
            // Data-dependent back-reference into the already-filled
            // prefix, à la Argon2's indexing: recomputing block i
            // requires block i-1 *and* an unpredictable earlier block.
            let back = u64::from_le_bytes(
                prev[..8]
                    .try_into()
                    .expect("block-length invariant: 32 >= 8"),
            ) as usize
                % i;
            let mut h = Sha256::new();
            h.update(&prev);
            h.update(&blocks[back]);
            blocks.push(h.finalize().into_bytes());
        }
        Arena { mib, blocks }
    }

    /// The arena size in MiB this arena was filled for.
    pub fn mib(&self) -> u8 {
        self.mib
    }

    /// Number of 32-byte blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the arena holds no blocks (never true for a filled
    /// arena; provided for the conventional `len`/`is_empty` pair).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The data-dependent mix walk over `msg`: `WALK_STEPS` rounds of
    /// hash-then-load, each load address taken from the previous
    /// digest. The returned digest is judged by leading zero bits
    /// exactly like the plain SHA-256 work function.
    pub fn walk(&self, msg: &[u8]) -> Digest {
        let mut y = Sha256::digest(msg);
        let n = self.blocks.len() as u64;
        for _ in 0..WALK_STEPS {
            let idx = (y.prefix_u64() % n) as usize;
            let mut h = Sha256::new();
            h.update(y.as_bytes());
            h.update(&self.blocks[idx][..STEP_BLOCK_BYTES]);
            y = h.finalize();
        }
        y
    }

    /// [`walk`](Self::walk) over many independent messages at once,
    /// digest-for-digest identical to the scalar walk per message.
    ///
    /// One message's steps are strictly sequential (each load address
    /// comes from the previous digest), but *across* messages step `j`
    /// is independent — so each round hashes all messages' step inputs
    /// through the multi-buffer SHA-256 kernel at up to `max_lanes`
    /// lanes. This is the verifier's edge: it holds a whole batch of
    /// solutions to check, while a solver probing nonces has only its
    /// own serial chain per attempt.
    pub fn walk_batch(&self, msgs: &[&[u8]], max_lanes: usize) -> Vec<Digest> {
        let mut ys = sha256_wide::digest_batch(msgs, max_lanes);
        let n = self.blocks.len() as u64;
        let mut bufs = vec![[0u8; BLOCK_LEN + STEP_BLOCK_BYTES]; ys.len()];
        for _ in 0..WALK_STEPS {
            for (buf, y) in bufs.iter_mut().zip(&ys) {
                let idx = (y.prefix_u64() % n) as usize;
                buf[..BLOCK_LEN].copy_from_slice(y.as_bytes());
                buf[BLOCK_LEN..].copy_from_slice(&self.blocks[idx][..STEP_BLOCK_BYTES]);
            }
            let step_msgs: Vec<&[u8]> = bufs.iter().map(|b| b.as_slice()).collect();
            ys = sha256_wide::digest_batch(&step_msgs, max_lanes);
        }
        ys
    }
}

impl core::fmt::Debug for Arena {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Arena")
            .field("mib", &self.mib)
            .field("blocks", &self.blocks.len())
            .finish()
    }
}

/// Process-wide arena cache: the fill is pure in `mib`, so every
/// issuer, verifier, and solver in the process shares one resident
/// copy per size. The lock guards only the map — a fill for a new size
/// runs outside it so concurrent users of other sizes never block.
pub fn shared_arena(mib: u8) -> Arc<Arena> {
    static CACHE: OnceLock<Mutex<HashMap<u8, Arc<Arena>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(arena) = cache
        .lock()
        .expect("arena-cache lock invariant: no code panics while holding it")
        .get(&mib)
    {
        return Arc::clone(arena);
    }
    let filled = Arc::new(Arena::fill(mib));
    let mut map = cache
        .lock()
        .expect("arena-cache lock invariant: no code panics while holding it");
    // A racing fill for the same size may have won; keep the first so
    // every caller shares one allocation.
    Arc::clone(map.entry(mib).or_insert(filled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_is_deterministic_in_its_size() {
        let a = Arena::fill(1);
        let b = Arena::fill(1);
        assert_eq!(a.len(), 1024 * 1024 / BLOCK_LEN);
        assert_eq!(a.blocks, b.blocks);
    }

    #[test]
    fn different_sizes_produce_different_arenas() {
        let a = Arena::fill(1);
        let b = Arena::fill(2);
        assert_ne!(a.blocks[0], b.blocks[0], "size is mixed into block 0");
        assert_eq!(b.len(), 2 * a.len());
    }

    #[test]
    fn walk_is_deterministic_and_message_sensitive() {
        let arena = shared_arena(1);
        let d1 = arena.walk(b"preimage-a");
        let d2 = arena.walk(b"preimage-a");
        let d3 = arena.walk(b"preimage-b");
        assert_eq!(d1, d2);
        assert_ne!(d1, d3);
    }

    #[test]
    fn walk_depends_on_the_arena() {
        let one = Arena::fill(1);
        let two = Arena::fill(2);
        assert_ne!(one.walk(b"same message"), two.walk(b"same message"));
    }

    #[test]
    fn walk_batch_matches_scalar_walk_at_every_lane_width() {
        let arena = shared_arena(1);
        let msgs: Vec<Vec<u8>> = (0..11u8).map(|i| vec![i; 40 + i as usize]).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let scalar: Vec<Digest> = refs.iter().map(|m| arena.walk(m)).collect();
        for lanes in [1, 4, 8] {
            assert_eq!(arena.walk_batch(&refs, lanes), scalar, "lanes={lanes}");
        }
        assert!(arena.walk_batch(&[], 8).is_empty());
    }

    #[test]
    fn walk_differs_from_plain_sha256() {
        let arena = shared_arena(1);
        assert_ne!(arena.walk(b"msg"), Sha256::digest(b"msg"));
    }

    #[test]
    fn shared_arena_returns_one_instance_per_size() {
        let a = shared_arena(1);
        let b = shared_arena(1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn bounds_are_enforced() {
        assert!(!validate_arena_mib(0));
        assert!(validate_arena_mib(MIN_ARENA_MIB));
        assert!(validate_arena_mib(DEFAULT_ARENA_MIB));
        assert!(validate_arena_mib(MAX_ARENA_MIB));
        assert!(!validate_arena_mib(MAX_ARENA_MIB + 1));
    }

    #[test]
    #[should_panic(expected = "arena-size invariant")]
    fn oversized_fill_panics() {
        let _ = Arena::fill(MAX_ARENA_MIB + 1);
    }
}
