//! HKDF-SHA-256 (RFC 5869).
//!
//! The framework derives independent subkeys (challenge MAC key, replay-cache
//! hash key, audit-log key) from one master secret using HKDF, so a leak of
//! one subsystem's key does not compromise the others.

use crate::hmac::HmacSha256;

/// Maximum output length: `255 * HashLen` per RFC 5869.
pub const MAX_OUTPUT_LEN: usize = 255 * 32;

/// Error returned when the requested HKDF output is longer than
/// [`MAX_OUTPUT_LEN`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidLengthError {
    /// The length that was requested.
    pub requested: usize,
}

impl core::fmt::Display for InvalidLengthError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "requested hkdf output of {} bytes exceeds the maximum of {} bytes",
            self.requested, MAX_OUTPUT_LEN
        )
    }
}

impl std::error::Error for InvalidLengthError {}

/// HKDF-Extract: derives a pseudorandom key from input keying material.
///
/// An empty `salt` is treated as 32 zero bytes, per the RFC.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    let zero_salt = [0u8; 32];
    let salt = if salt.is_empty() {
        &zero_salt[..]
    } else {
        salt
    };
    HmacSha256::mac(salt, ikm).into_bytes()
}

/// HKDF-Expand: stretches a pseudorandom key into `len` output bytes bound
/// to the context string `info`.
///
/// # Errors
///
/// Returns [`InvalidLengthError`] if `len > MAX_OUTPUT_LEN`.
pub fn expand(prk: &[u8; 32], info: &[u8], len: usize) -> Result<Vec<u8>, InvalidLengthError> {
    if len > MAX_OUTPUT_LEN {
        return Err(InvalidLengthError { requested: len });
    }
    let mut out = Vec::with_capacity(len);
    let mut previous: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < len {
        let mut m = HmacSha256::new(prk);
        m.update(&previous);
        m.update(info);
        m.update(&[counter]);
        let block = m.finalize().into_bytes();
        let take = (len - out.len()).min(32);
        out.extend_from_slice(&block[..take]);
        previous = block.to_vec();
        counter = counter.wrapping_add(1);
    }
    Ok(out)
}

/// Convenience: extract-then-expand in one call.
///
/// ```
/// let key = aipow_crypto::hkdf::derive(b"salt", b"master", b"aipow/mac", 32).unwrap();
/// assert_eq!(key.len(), 32);
/// ```
///
/// # Errors
///
/// Returns [`InvalidLengthError`] if `len > MAX_OUTPUT_LEN`.
pub fn derive(
    salt: &[u8],
    ikm: &[u8],
    info: &[u8],
    len: usize,
) -> Result<Vec<u8>, InvalidLengthError> {
    let prk = extract(salt, ikm);
    expand(&prk, info, len)
}

/// Derives a fixed 32-byte subkey bound to `label`; infallible convenience
/// for the common key-separation case.
pub fn derive_key32(master: &[u8], label: &str) -> [u8; 32] {
    let prk = extract(b"aipow/v1", master);
    let out = expand(&prk, label.as_bytes(), 32).expect("length invariant: 32 <= MAX_OUTPUT_LEN");
    out.try_into()
        .expect("HKDF invariant: expand(.., 32) returns exactly 32 bytes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    /// RFC 5869 Appendix A, Test Case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = vec![0x0bu8; 22];
        let salt: Vec<u8> = (0x00u8..=0x0c).collect();
        let info: Vec<u8> = (0xf0u8..=0xf9).collect();

        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex::encode(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );

        let okm = expand(&prk, &info, 42).unwrap();
        assert_eq!(
            hex::encode(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    /// RFC 5869 Appendix A, Test Case 2 (longer inputs/outputs).
    #[test]
    fn rfc5869_case2() {
        let ikm: Vec<u8> = (0x00u8..=0x4f).collect();
        let salt: Vec<u8> = (0x60u8..=0xaf).collect();
        let info: Vec<u8> = (0xb0u8..=0xff).collect();

        let okm = derive(&salt, &ikm, &info, 82).unwrap();
        assert_eq!(
            hex::encode(&okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c\
             59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71\
             cc30c58179ec3e87c14c01d5c1f3434f1d87"
        );
    }

    /// RFC 5869 Appendix A, Test Case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case3() {
        let ikm = vec![0x0bu8; 22];
        let okm = derive(&[], &ikm, &[], 42).unwrap();
        assert_eq!(
            hex::encode(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn expand_rejects_oversized_request() {
        let prk = [0u8; 32];
        let err = expand(&prk, b"", MAX_OUTPUT_LEN + 1).unwrap_err();
        assert_eq!(err.requested, MAX_OUTPUT_LEN + 1);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn expand_max_length_succeeds() {
        let prk = [7u8; 32];
        let okm = expand(&prk, b"ctx", MAX_OUTPUT_LEN).unwrap();
        assert_eq!(okm.len(), MAX_OUTPUT_LEN);
    }

    #[test]
    fn derive_key32_separates_labels() {
        let a = derive_key32(b"master", "aipow/mac");
        let b = derive_key32(b"master", "aipow/replay");
        assert_ne!(a, b);
        // Deterministic.
        assert_eq!(a, derive_key32(b"master", "aipow/mac"));
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn output_len_exact(len in 0usize..512,
                                ikm in proptest::collection::vec(any::<u8>(), 0..64),
                                info in proptest::collection::vec(any::<u8>(), 0..64)) {
                let okm = derive(b"s", &ikm, &info, len).unwrap();
                prop_assert_eq!(okm.len(), len);
            }

            #[test]
            fn prefix_consistency(ikm in proptest::collection::vec(any::<u8>(), 1..64)) {
                // Expanding to 64 bytes then truncating equals expanding to 32.
                let prk = extract(b"s", &ikm);
                let long = expand(&prk, b"i", 64).unwrap();
                let short = expand(&prk, b"i", 32).unwrap();
                prop_assert_eq!(&long[..32], &short[..]);
            }
        }
    }
}
