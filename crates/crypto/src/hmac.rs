//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! The puzzle issuer MACs every challenge it hands out so that the verifier
//! can authenticate returned solutions without keeping per-challenge state
//! (see `aipow-pow`). Validated against the RFC 4231 test vectors.

use crate::sha256::{Digest, Sha256};

const BLOCK_LEN: usize = 64;

/// Streaming HMAC-SHA-256.
///
/// ```
/// use aipow_crypto::hmac::HmacSha256;
/// let tag = HmacSha256::mac(b"key", b"message");
/// let mut m = HmacSha256::new(b"key");
/// m.update(b"mess");
/// m.update(b"age");
/// assert_eq!(m.finalize(), tag);
/// ```
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    /// Outer-pad key block, retained until finalization.
    opad_block: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates a MAC instance for `key`. Keys longer than the block size are
    /// pre-hashed per the HMAC specification; any key length is accepted.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let d = Sha256::digest(key);
            key_block[..32].copy_from_slice(d.as_bytes());
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut ipad_block = [0u8; BLOCK_LEN];
        let mut opad_block = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad_block[i] = key_block[i] ^ 0x36;
            opad_block[i] = key_block[i] ^ 0x5c;
        }

        let mut inner = Sha256::new();
        inner.update(&ipad_block);
        HmacSha256 { inner, opad_block }
    }

    /// One-shot convenience: `HMAC(key, data)`.
    pub fn mac(key: &[u8], data: &[u8]) -> Digest {
        let mut m = Self::new(key);
        m.update(data);
        m.finalize()
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Completes the MAC, consuming the instance.
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_block);
        outer.update(inner_digest.as_bytes());
        outer.finalize()
    }

    /// Verifies `tag` against `HMAC(key, data)` in constant time.
    ///
    /// ```
    /// use aipow_crypto::hmac::HmacSha256;
    /// let tag = HmacSha256::mac(b"k", b"d");
    /// assert!(HmacSha256::verify(b"k", b"d", tag.as_bytes()));
    /// assert!(!HmacSha256::verify(b"k", b"other", tag.as_bytes()));
    /// ```
    pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
        let expected = Self::mac(key, data);
        crate::ct::eq(expected.as_bytes(), tag)
    }
}

/// A key with its HMAC-SHA-256 schedule precomputed, for call sites that
/// MAC or verify many short messages under one key (the challenge issuer
/// and verifier sit on the admission hot path and do exactly that).
///
/// [`HmacSha256::mac`] pays the key schedule on every call: zero-pad the
/// key, derive the ipad/opad blocks, and compress one block for each.
/// This type runs that schedule once and keeps both pad-absorbed SHA-256
/// states; each subsequent [`mac`](HmacKey::mac) clones the states and
/// absorbs only the message and the inner digest — for the ~60-byte
/// challenge encoding that cuts the per-call compression count roughly in
/// half. Produces bit-identical tags to [`HmacSha256`].
///
/// ```
/// use aipow_crypto::hmac::{HmacKey, HmacSha256};
/// let key = HmacKey::new(b"key");
/// assert_eq!(key.mac(b"message"), HmacSha256::mac(b"key", b"message"));
/// assert!(key.verify(b"message", key.mac(b"message").as_bytes()));
/// ```
#[derive(Clone)]
pub struct HmacKey {
    /// SHA-256 state with the ipad block already absorbed.
    inner_base: Sha256,
    /// SHA-256 state with the opad block already absorbed.
    outer_base: Sha256,
}

impl HmacKey {
    /// Runs the key schedule once. Keys longer than the block size are
    /// pre-hashed per the HMAC specification.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let d = Sha256::digest(key);
            key_block[..32].copy_from_slice(d.as_bytes());
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut ipad_block = [0u8; BLOCK_LEN];
        let mut opad_block = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad_block[i] = key_block[i] ^ 0x36;
            opad_block[i] = key_block[i] ^ 0x5c;
        }

        let mut inner_base = Sha256::new();
        inner_base.update(&ipad_block);
        let mut outer_base = Sha256::new();
        outer_base.update(&opad_block);
        HmacKey {
            inner_base,
            outer_base,
        }
    }

    /// `HMAC(key, data)` without re-running the key schedule.
    pub fn mac(&self, data: &[u8]) -> Digest {
        let mut inner = self.inner_base.clone();
        inner.update(data);
        let inner_digest = inner.finalize();
        let mut outer = self.outer_base.clone();
        outer.update(inner_digest.as_bytes());
        outer.finalize()
    }

    /// Verifies `tag` against `HMAC(key, data)` in constant time.
    pub fn verify(&self, data: &[u8], tag: &[u8]) -> bool {
        crate::ct::eq(self.mac(data).as_bytes(), tag)
    }

    /// MACs many messages under this key through the multi-buffer
    /// SHA-256 kernel, `max_lanes` wide at most (see
    /// [`crate::sha256_wide`]). `out[i]` is `HMAC(key, msgs[i])`,
    /// bit-identical to [`mac`](HmacKey::mac).
    ///
    /// Both HMAC passes run wide: the inner pass groups messages of
    /// equal length into lanes (ragged tails fall back to the scalar
    /// path), and the outer pass is always fully packed because every
    /// inner digest is exactly 32 bytes. Both passes start from the
    /// hoisted pad-absorbed midstates, so the key schedule costs
    /// nothing per message.
    pub fn mac_batch(&self, msgs: &[&[u8]], max_lanes: usize) -> Vec<Digest> {
        let inner: Vec<Digest> =
            crate::sha256_wide::digest_batch_from(&self.inner_base, msgs, max_lanes);
        let inner_refs: Vec<&[u8]> = inner.iter().map(|d| d.as_bytes().as_slice()).collect();
        crate::sha256_wide::digest_batch_from(&self.outer_base, &inner_refs, max_lanes)
    }

    /// Verifies `tags[i]` against `HMAC(key, msgs[i])` for a whole
    /// batch, each comparison in constant time via [`crate::ct::eq`].
    /// The MACs are computed through [`mac_batch`](HmacKey::mac_batch);
    /// the comparisons stay per-item so one forged tag cannot shadow a
    /// valid neighbour.
    pub fn verify_batch(&self, msgs: &[&[u8]], tags: &[&[u8]], max_lanes: usize) -> Vec<bool> {
        assert_eq!(msgs.len(), tags.len(), "batch-shape invariant");
        self.mac_batch(msgs, max_lanes)
            .iter()
            .zip(tags)
            .map(|(expect, tag)| crate::ct::eq(expect.as_bytes(), tag))
            .collect()
    }
}

impl core::fmt::Debug for HmacKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print key-derived state.
        f.write_str("HmacKey{..}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    /// RFC 4231 §4 test cases 1-4, 6, 7.
    #[test]
    fn rfc4231_vectors() {
        // (key, data, expected HMAC-SHA-256)
        let tc1_key = vec![0x0bu8; 20];
        let tc3_key = vec![0xaau8; 20];
        let tc3_data = vec![0xddu8; 50];
        let tc4_key: Vec<u8> = (0x01u8..=0x19).collect();
        let tc4_data = vec![0xcdu8; 50];
        let tc67_key = vec![0xaau8; 131];

        let cases: Vec<(Vec<u8>, Vec<u8>, &str)> = vec![
            (
                tc1_key,
                b"Hi There".to_vec(),
                "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
            ),
            (
                b"Jefe".to_vec(),
                b"what do ya want for nothing?".to_vec(),
                "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
            ),
            (
                tc3_key,
                tc3_data,
                "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe",
            ),
            (
                tc4_key,
                tc4_data,
                "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b",
            ),
            (
                tc67_key.clone(),
                b"Test Using Larger Than Block-Size Key - Hash Key First".to_vec(),
                "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
            ),
            (
                tc67_key,
                b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm."
                    .to_vec(),
                "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2",
            ),
        ];

        for (i, (key, data, expected)) in cases.iter().enumerate() {
            let tag = HmacSha256::mac(key, data);
            assert_eq!(&tag.to_hex(), expected, "RFC 4231 case {}", i + 1);
        }
    }

    /// RFC 4231 test case 5 verifies a truncated tag (first 128 bits).
    #[test]
    fn rfc4231_truncated_case5() {
        let key = vec![0x0cu8; 20];
        let tag = HmacSha256::mac(&key, b"Test With Truncation");
        assert_eq!(
            hex::encode(&tag.as_bytes()[..16]),
            "a3b6167473100ee06e0c796c2955552b"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let key = b"stream-key";
        let data: Vec<u8> = (0u8..=200).collect();
        let oneshot = HmacSha256::mac(key, &data);
        for split in [0usize, 1, 63, 64, 65, 128, 200] {
            let mut m = HmacSha256::new(key);
            m.update(&data[..split]);
            m.update(&data[split..]);
            assert_eq!(m.finalize(), oneshot, "split {split}");
        }
    }

    #[test]
    fn verify_accepts_valid_and_rejects_forged() {
        let tag = HmacSha256::mac(b"k", b"payload");
        assert!(HmacSha256::verify(b"k", b"payload", tag.as_bytes()));

        let mut forged = *tag.as_bytes();
        forged[0] ^= 1;
        assert!(!HmacSha256::verify(b"k", b"payload", &forged));
        assert!(!HmacSha256::verify(b"wrong", b"payload", tag.as_bytes()));
        assert!(!HmacSha256::verify(b"k", b"payload", &tag.as_bytes()[..31]));
    }

    #[test]
    fn distinct_keys_yield_distinct_tags() {
        assert_ne!(HmacSha256::mac(b"a", b"m"), HmacSha256::mac(b"b", b"m"));
    }

    #[test]
    fn prepared_key_matches_oneshot_for_all_key_and_message_shapes() {
        for key_len in [0usize, 1, 32, 63, 64, 65, 131] {
            let key: Vec<u8> = (0..key_len).map(|i| i as u8).collect();
            let prepared = HmacKey::new(&key);
            for msg_len in [0usize, 1, 55, 56, 62, 64, 100, 300] {
                let msg: Vec<u8> = (0..msg_len).map(|i| (i * 7) as u8).collect();
                let expect = HmacSha256::mac(&key, &msg);
                assert_eq!(prepared.mac(&msg), expect, "key {key_len} msg {msg_len}");
                assert!(prepared.verify(&msg, expect.as_bytes()));
                let mut forged = *expect.as_bytes();
                forged[0] ^= 1;
                assert!(!prepared.verify(&msg, &forged));
                assert!(!prepared.verify(&msg, &expect.as_bytes()[..31]));
            }
        }
        assert_eq!(format!("{:?}", HmacKey::new(b"k")), "HmacKey{..}");
    }

    #[test]
    fn mac_batch_matches_scalar_mac_for_mixed_shapes() {
        let key = HmacKey::new(b"batch-key");
        // Lengths chosen to produce full 8-lane groups, a 4-lane group,
        // and ragged scalar tails.
        let msgs: Vec<Vec<u8>> = (0..21u8)
            .map(|i| vec![i; [0usize, 17, 17, 64, 64, 64, 64][i as usize % 7]])
            .collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        for lanes in 1..=8 {
            let tags = key.mac_batch(&refs, lanes);
            for (i, msg) in msgs.iter().enumerate() {
                assert_eq!(tags[i], key.mac(msg), "lanes={lanes} index={i}");
            }
        }
        assert!(key.mac_batch(&[], 8).is_empty());
    }

    #[test]
    fn verify_batch_flags_each_tag_independently() {
        let key = HmacKey::new(b"vb-key");
        let msgs: [&[u8]; 3] = [b"one", b"two", b"three"];
        let good: Vec<Digest> = msgs.iter().map(|m| key.mac(m)).collect();
        let mut forged = *good[1].as_bytes();
        forged[5] ^= 0x80;
        let tags: [&[u8]; 3] = [good[0].as_bytes(), &forged, good[2].as_bytes()];
        assert_eq!(key.verify_batch(&msgs, &tags, 8), vec![true, false, true]);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn chunking_invariant(key in proptest::collection::vec(any::<u8>(), 0..130),
                                  data in proptest::collection::vec(any::<u8>(), 0..512),
                                  split in any::<usize>()) {
                let oneshot = HmacSha256::mac(&key, &data);
                let split = split % (data.len() + 1);
                let mut m = HmacSha256::new(&key);
                m.update(&data[..split]);
                m.update(&data[split..]);
                prop_assert_eq!(m.finalize(), oneshot);
            }

            #[test]
            fn verify_roundtrip(key in proptest::collection::vec(any::<u8>(), 1..64),
                                data in proptest::collection::vec(any::<u8>(), 0..256)) {
                let tag = HmacSha256::mac(&key, &data);
                prop_assert!(HmacSha256::verify(&key, &data, tag.as_bytes()));
            }
        }
    }
}
