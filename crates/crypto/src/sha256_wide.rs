//! Lane-interleaved multi-buffer SHA-256 (DESIGN.md §12).
//!
//! One SHA-256 compression is a chain of 64 dependent rounds — there is
//! no instruction-level parallelism left to extract from a *single*
//! message. But the verifier never has a single message: a drained
//! batch carries dozens of independent MACs and work digests, and the
//! solver tries many independent nonces. This module exploits that by
//! processing `LANES` **independent** 64-byte blocks per round loop,
//! with the hash state transposed so that each of the eight working
//! variables (and each message-schedule word) is a `[u32; LANES]` — the
//! same word of every lane sits side by side.
//!
//! Written as plain lane loops over `u32` arithmetic so rustc
//! autovectorizes them (SSE2 baseline packs 4 lanes per `xmm` register;
//! AVX2 packs 8 per `ymm`). No `unsafe`, no intrinsics, no new
//! dependencies — consistent with the workspace's vendored-stand-in
//! policy, and the scalar [`Sha256`] stays the single source of truth
//! for padding and constants. Equivalence with the scalar path is
//! proven for every lane count in `tests/wide_kernel_props.rs`.
//!
//! Entry points, from rawest to most convenient:
//!
//! - [`WideHasher`] — streaming, `LANES` equal-length messages (the
//!   equal-length invariant is what lets all lanes share one buffer
//!   offset and one padding tail);
//! - [`digest_wide`] — one-shot over `LANES` equal-length messages;
//! - [`digest_batch_from`] / [`digest_batch`] — arbitrary mixed-length
//!   message sets, optionally from a shared midstate: groups
//!   equal-length runs into 8- then 4-lane calls and falls back to the
//!   scalar hasher for ragged tails, at a caller-chosen maximum width.

use crate::sha256::{Digest, Sha256, H256, K};

/// The widest kernel this module instantiates (AVX2-sized).
pub const MAX_LANES: usize = 8;

/// Lane width the current host is expected to profit from: 8 where the
/// CPU has 256-bit integer SIMD (AVX2), otherwise 4 (the SSE2/NEON
/// 128-bit baseline). This is a heuristic default for `verify_lanes`
/// auto-detection, not a correctness gate — every width 1..=8 computes
/// identical digests on every host.
pub fn auto_lanes() -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return 8;
        }
        4
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is baseline on aarch64: 128-bit vectors, 4 lanes of u32.
        4
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        4
    }
}

// Elementwise lane-vector primitives. Each is a trivially unrollable
// fixed-trip loop over the lane dimension; rustc maps the unrolled
// bodies onto packed `u32` instructions (one `xmm`/`ymm` op per 4/8
// lanes). Keeping every operation this small and uniform is what makes
// the SLP vectorizer take the whole round function, instead of
// scalarizing the rotate-heavy subtrees.

#[inline(always)]
fn vadd<const L: usize>(a: [u32; L], b: [u32; L]) -> [u32; L] {
    let mut r = a;
    let mut i = 0;
    while i < L {
        r[i] = r[i].wrapping_add(b[i]);
        i += 1;
    }
    r
}

#[inline(always)]
fn vxor<const L: usize>(a: [u32; L], b: [u32; L]) -> [u32; L] {
    let mut r = a;
    let mut i = 0;
    while i < L {
        r[i] ^= b[i];
        i += 1;
    }
    r
}

#[inline(always)]
fn vand<const L: usize>(a: [u32; L], b: [u32; L]) -> [u32; L] {
    let mut r = a;
    let mut i = 0;
    while i < L {
        r[i] &= b[i];
        i += 1;
    }
    r
}

#[inline(always)]
fn vnot<const L: usize>(a: [u32; L]) -> [u32; L] {
    let mut r = a;
    let mut i = 0;
    while i < L {
        r[i] = !r[i];
        i += 1;
    }
    r
}

#[inline(always)]
fn vshl<const L: usize>(a: [u32; L], n: u32) -> [u32; L] {
    let mut r = a;
    let mut i = 0;
    while i < L {
        r[i] <<= n;
        i += 1;
    }
    r
}

#[inline(always)]
fn vshr<const L: usize>(a: [u32; L], n: u32) -> [u32; L] {
    let mut r = a;
    let mut i = 0;
    while i < L {
        r[i] >>= n;
        i += 1;
    }
    r
}

/// `(x ror r1) ^ (x ror r2) ^ (x ror r3)` — the Σ functions — written
/// as grouped shift trees rather than three rotates. Baseline x86-64
/// has no packed-rotate instruction, and leaving the rotate idiom
/// visible makes LLVM's cost model scalarize the subtree (a scalar
/// `ror` is one instruction, a packed rotate is three); plain shifts
/// and xors vectorize unconditionally. Algebraically identical to the
/// scalar form in [`crate::sha256`].
#[inline(always)]
fn vbig_sigma<const L: usize>(x: [u32; L], r1: u32, r2: u32, r3: u32) -> [u32; L] {
    let right = vxor(vxor(vshr(x, r1), vshr(x, r2)), vshr(x, r3));
    let left = vxor(vxor(vshl(x, 32 - r1), vshl(x, 32 - r2)), vshl(x, 32 - r3));
    vxor(right, left)
}

/// `(x ror r1) ^ (x ror r2) ^ (x >> s)` — the σ schedule functions —
/// in the same grouped-shift form as [`vbig_sigma`].
#[inline(always)]
fn vsmall_sigma<const L: usize>(x: [u32; L], r1: u32, r2: u32, s: u32) -> [u32; L] {
    let right = vxor(vxor(vshr(x, r1), vshr(x, r2)), vshr(x, s));
    let left = vxor(vshl(x, 32 - r1), vshl(x, 32 - r2));
    vxor(right, left)
}

/// The SHA-256 compression function over `LANES` independent 64-byte
/// blocks, state transposed lane-wise. Computes exactly what the scalar
/// `compress` in [`crate::sha256`] computes, once per lane.
fn compress_wide<const LANES: usize>(state: &mut [[u32; LANES]; 8], blocks: &[[u8; 64]; LANES]) {
    // Message schedule, transposed: w[t][l] is word t of lane l.
    let mut w = [[0u32; LANES]; 64];
    for (t, wt) in w.iter_mut().enumerate().take(16) {
        for (l, block) in blocks.iter().enumerate() {
            wt[l] = u32::from_be_bytes([
                block[4 * t],
                block[4 * t + 1],
                block[4 * t + 2],
                block[4 * t + 3],
            ]);
        }
    }
    for t in 16..64 {
        let s0 = vsmall_sigma(w[t - 15], 7, 18, 3);
        let s1 = vsmall_sigma(w[t - 2], 17, 19, 10);
        w[t] = vadd(vadd(w[t - 16], s0), vadd(w[t - 7], s1));
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;

    for (t, wt) in w.iter().enumerate() {
        let big_s1 = vbig_sigma(e, 6, 11, 25);
        let ch = vxor(vand(e, f), vand(vnot(e), g));
        let t1 = vadd(vadd(h, big_s1), vadd(vadd(ch, [K[t]; LANES]), *wt));
        let big_s0 = vbig_sigma(a, 2, 13, 22);
        let maj = vxor(vxor(vand(a, b), vand(a, c)), vand(b, c));
        let t2 = vadd(big_s0, maj);

        h = g;
        g = f;
        f = e;
        e = vadd(d, t1);
        d = c;
        c = b;
        b = a;
        a = vadd(t1, t2);
    }

    let fed = [a, b, c, d, e, f, g, h];
    for (word, add) in state.iter_mut().zip(fed.iter()) {
        *word = vadd(*word, *add);
    }
}

/// Streaming multi-buffer SHA-256 over `LANES` equal-length messages.
///
/// All lanes advance in lockstep: every [`update`](WideHasher::update)
/// feeds the same number of bytes to each lane, so one shared buffer
/// offset, message length, and padding tail serve all lanes. That
/// invariant is asserted, not inferred — feeding unequal slices panics.
///
/// ```
/// use aipow_crypto::sha256::Sha256;
/// use aipow_crypto::sha256_wide::WideHasher;
/// let mut wide = WideHasher::<4>::new();
/// wide.update([b"aaaa", b"bbbb", b"cccc", b"dddd"]);
/// let digests = wide.finalize();
/// assert_eq!(digests[2], Sha256::digest(b"cccc"));
/// ```
#[derive(Clone)]
pub struct WideHasher<const LANES: usize> {
    /// Transposed hash state: `state[i][l]` is word `i` of lane `l`.
    state: [[u32; LANES]; 8],
    /// Per-lane partial block awaiting compression.
    buf: [[u8; 64]; LANES],
    /// Shared buffer fill (identical across lanes by the equal-length
    /// invariant).
    buf_len: usize,
    /// Shared per-lane message length in bytes.
    total_len: u64,
}

impl<const LANES: usize> Default for WideHasher<LANES> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const LANES: usize> WideHasher<LANES> {
    /// Creates a fresh `LANES`-wide hasher (1 ≤ `LANES` ≤ 8).
    pub fn new() -> Self {
        assert!(
            (1..=MAX_LANES).contains(&LANES),
            "lane-width invariant: 1..=8"
        );
        WideHasher {
            state: core::array::from_fn(|i| [H256[i]; LANES]),
            buf: [[0u8; 64]; LANES],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Broadcasts a scalar midstate into every lane: each lane continues
    /// hashing as if it were a clone of `base`. This is how the HMAC
    /// batch reuses the hoisted key schedule (ipad/opad already
    /// absorbed) and how the solver amortizes the challenge prefix —
    /// one scalar absorption, `LANES` divergent suffixes.
    pub fn from_midstate(base: &Sha256) -> Self {
        assert!(
            (1..=MAX_LANES).contains(&LANES),
            "lane-width invariant: 1..=8"
        );
        WideHasher {
            state: base.state.map(|word| [word; LANES]),
            buf: [base.buf; LANES],
            buf_len: base.buf_len,
            total_len: base.total_len,
        }
    }

    /// Absorbs one equal-length slice per lane.
    ///
    /// # Panics
    ///
    /// If the slices are not all the same length (the lockstep
    /// invariant).
    pub fn update(&mut self, inputs: [&[u8]; LANES]) {
        let len = inputs[0].len();
        assert!(
            inputs.iter().all(|m| m.len() == len),
            "equal-length lane invariant"
        );
        self.total_len = self.total_len.wrapping_add(len as u64);
        let mut off = 0usize;

        // Fill the shared partial block first, if any.
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(len);
            for (l, input) in inputs.iter().enumerate() {
                self.buf[l][self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            }
            self.buf_len += take;
            off += take;
            if self.buf_len == 64 {
                let blocks = self.buf;
                compress_wide(&mut self.state, &blocks);
                self.buf_len = 0;
            }
        }

        // Whole blocks, transposed straight from the inputs.
        while len - off >= 64 {
            let mut blocks = [[0u8; 64]; LANES];
            for (l, input) in inputs.iter().enumerate() {
                blocks[l].copy_from_slice(&input[off..off + 64]);
            }
            compress_wide(&mut self.state, &blocks);
            off += 64;
        }

        // Stash the shared-length tail.
        if off < len {
            for (l, input) in inputs.iter().enumerate() {
                self.buf[l][..len - off].copy_from_slice(&input[off..]);
            }
            self.buf_len = len - off;
        }
    }

    /// Completes all lanes, consuming the hasher. The padding tail is
    /// identical across lanes (equal lengths ⇒ equal pad), so it is
    /// built once and broadcast.
    pub fn finalize(mut self) -> [Digest; LANES] {
        let bit_len = self.total_len.wrapping_mul(8);
        let mut pad: Vec<u8> = Vec::with_capacity(72);
        pad.push(0x80);
        let after = (self.buf_len + 1) % 64;
        let zeros = if after <= 56 { 56 - after } else { 120 - after };
        pad.extend(std::iter::repeat_n(0u8, zeros));
        pad.extend_from_slice(&bit_len.to_be_bytes());
        self.update([pad.as_slice(); LANES]);
        debug_assert_eq!(self.buf_len, 0, "padding must end on a block boundary");

        let mut out = [Digest([0u8; 32]); LANES];
        for (i, word) in self.state.iter().enumerate() {
            for l in 0..LANES {
                out[l].0[i * 4..i * 4 + 4].copy_from_slice(&word[l].to_be_bytes());
            }
        }
        out
    }
}

/// One-shot wide digest over `LANES` equal-length messages.
///
/// # Panics
///
/// If the messages are not all the same length; mixed-length sets go
/// through [`digest_batch`], which groups and falls back.
pub fn digest_wide<const LANES: usize>(msgs: [&[u8]; LANES]) -> [Digest; LANES] {
    let mut h = WideHasher::<LANES>::new();
    h.update(msgs);
    h.finalize()
}

/// Hashes `suffix` continuing from the scalar midstate `base` — the
/// scalar fallback for lanes [`digest_batch_from`] cannot fill.
fn digest_one_from(base: &Sha256, suffix: &[u8]) -> Digest {
    let mut h = base.clone();
    h.update(suffix);
    h.finalize()
}

/// Digests an arbitrary set of messages, each continuing from the same
/// scalar midstate `base`, running equal-length groups through the
/// widest kernel `max_lanes` allows.
///
/// Grouping never reorders results: `out[i]` is always the digest of
/// `suffixes[i]`. Internally, indices are bucketed by message length
/// (the lockstep invariant), each bucket is carved into 8-lane then
/// 4-lane calls (as permitted by `max_lanes`, which is clamped to
/// 1..=[`MAX_LANES`]), and whatever remains — ragged tails, odd
/// shapes, or everything when `max_lanes` < 4 — takes the scalar path.
pub fn digest_batch_from(base: &Sha256, suffixes: &[&[u8]], max_lanes: usize) -> Vec<Digest> {
    let max_lanes = max_lanes.clamp(1, MAX_LANES);
    let mut out = vec![Digest([0u8; 32]); suffixes.len()];
    if suffixes.is_empty() {
        return out;
    }

    // Bucket indices by length without reordering within a bucket
    // (stable sort), so lanes fill with same-shape messages.
    let mut order: Vec<usize> = (0..suffixes.len()).collect();
    order.sort_by_key(|&i| suffixes[i].len());

    let mut run = 0usize;
    while run < order.len() {
        let len = suffixes[order[run]].len();
        let mut run_end = run + 1;
        while run_end < order.len() && suffixes[order[run_end]].len() == len {
            run_end += 1;
        }
        let bucket = &order[run..run_end];

        let mut i = 0usize;
        while i < bucket.len() {
            let left = bucket.len() - i;
            if max_lanes >= 8 && left >= 8 {
                let msgs: [&[u8]; 8] = core::array::from_fn(|l| suffixes[bucket[i + l]]);
                let mut h = WideHasher::<8>::from_midstate(base);
                h.update(msgs);
                for (l, d) in h.finalize().into_iter().enumerate() {
                    out[bucket[i + l]] = d;
                }
                i += 8;
            } else if max_lanes >= 4 && left >= 4 {
                let msgs: [&[u8]; 4] = core::array::from_fn(|l| suffixes[bucket[i + l]]);
                let mut h = WideHasher::<4>::from_midstate(base);
                h.update(msgs);
                for (l, d) in h.finalize().into_iter().enumerate() {
                    out[bucket[i + l]] = d;
                }
                i += 4;
            } else {
                out[bucket[i]] = digest_one_from(base, suffixes[bucket[i]]);
                i += 1;
            }
        }
        run = run_end;
    }
    out
}

/// Digests an arbitrary set of whole messages through the wide kernel:
/// [`digest_batch_from`] from the empty (initial) midstate.
pub fn digest_batch(msgs: &[&[u8]], max_lanes: usize) -> Vec<Digest> {
    digest_batch_from(&Sha256::new(), msgs, max_lanes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_matches_scalar_on_nist_vectors() {
        // The four FIPS 180-4 vectors padded out to equal length are
        // not equal-length, so run them through the batch (grouped)
        // entry point at every width.
        let msgs: [&[u8]; 4] = [
            b"",
            b"abc",
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
        ];
        for lanes in 1..=MAX_LANES {
            let wide = digest_batch(&msgs, lanes);
            for (msg, got) in msgs.iter().zip(&wide) {
                assert_eq!(*got, Sha256::digest(msg), "lanes={lanes}");
            }
        }
    }

    #[test]
    fn equal_length_wide_call_matches_scalar() {
        let msgs: [&[u8]; 8] = core::array::from_fn(|i| match i {
            0 => b"lane-0-padding-x" as &[u8],
            1 => b"lane-1-padding-x",
            2 => b"lane-2-padding-x",
            3 => b"lane-3-padding-x",
            4 => b"lane-4-padding-x",
            5 => b"lane-5-padding-x",
            6 => b"lane-6-padding-x",
            _ => b"lane-7-padding-x",
        });
        let wide = digest_wide(msgs);
        for (msg, got) in msgs.iter().zip(&wide) {
            assert_eq!(*got, Sha256::digest(msg));
        }
    }

    #[test]
    fn multi_block_and_boundary_lengths_match_scalar() {
        // 55/56/64/65/128 bytes straddle every padding regime.
        for len in [0usize, 1, 55, 56, 63, 64, 65, 127, 128, 129, 300] {
            let msgs: Vec<Vec<u8>> = (0..4u8).map(|l| vec![l ^ 0x5a; len]).collect();
            let refs: [&[u8]; 4] = core::array::from_fn(|l| msgs[l].as_slice());
            let wide = digest_wide(refs);
            for (msg, got) in msgs.iter().zip(&wide) {
                assert_eq!(*got, Sha256::digest(msg), "len={len}");
            }
        }
    }

    #[test]
    fn midstate_broadcast_continues_the_scalar_stream() {
        let mut base = Sha256::new();
        base.update(b"shared prefix of odd length 29!!!"[..29].as_ref());
        let suffixes: [&[u8]; 4] = [b"tail-a", b"tail-b", b"tail-c", b"tail-d"];
        let mut wide = WideHasher::<4>::from_midstate(&base);
        wide.update(suffixes);
        let got = wide.finalize();
        for (suffix, d) in suffixes.iter().zip(&got) {
            let mut scalar = base.clone();
            scalar.update(suffix);
            assert_eq!(*d, scalar.finalize());
        }
    }

    #[test]
    fn batch_preserves_input_order_across_mixed_lengths() {
        let msgs: Vec<Vec<u8>> = (0..23u8).map(|i| vec![i; (i as usize * 7) % 90]).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        for lanes in [1, 2, 4, 8] {
            let wide = digest_batch(&refs, lanes);
            for (i, msg) in msgs.iter().enumerate() {
                assert_eq!(wide[i], Sha256::digest(msg), "lanes={lanes} index={i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "equal-length lane invariant")]
    fn unequal_lanes_panic() {
        let mut h = WideHasher::<2>::new();
        h.update([b"aa", b"bbb"]);
    }

    #[test]
    fn auto_lanes_is_a_supported_width() {
        let lanes = auto_lanes();
        assert!(lanes == 4 || lanes == 8);
    }
}
