//! Constant-time comparison.
//!
//! MAC verification must not leak, via early exit, how many prefix bytes of
//! a forged tag were correct. [`eq`] runs in time dependent only on the
//! lengths of its inputs.

/// Compares two byte slices in constant time (for equal-length inputs).
///
/// Returns `false` immediately if the lengths differ — length is public
/// information for all uses in this workspace (fixed-size MACs).
///
/// ```
/// assert!(aipow_crypto::ct::eq(b"abc", b"abc"));
/// assert!(!aipow_crypto::ct::eq(b"abc", b"abd"));
/// assert!(!aipow_crypto::ct::eq(b"abc", b"ab"));
/// ```
pub fn eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    // Reduce without branching on individual bytes.
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices() {
        assert!(eq(&[], &[]));
        assert!(eq(&[1, 2, 3], &[1, 2, 3]));
    }

    #[test]
    fn differing_slices() {
        assert!(!eq(&[1, 2, 3], &[1, 2, 4]));
        assert!(!eq(&[0], &[1]));
    }

    #[test]
    fn length_mismatch() {
        assert!(!eq(&[1, 2], &[1, 2, 3]));
    }

    #[test]
    fn single_bit_difference_anywhere() {
        let a = [0u8; 32];
        for i in 0..32 {
            for bit in 0..8 {
                let mut b = a;
                b[i] ^= 1 << bit;
                assert!(!eq(&a, &b), "difference at byte {i} bit {bit}");
            }
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn agrees_with_slice_eq(a in proptest::collection::vec(any::<u8>(), 0..128),
                                    b in proptest::collection::vec(any::<u8>(), 0..128)) {
                prop_assert_eq!(eq(&a, &b), a == b);
            }
        }
    }
}
