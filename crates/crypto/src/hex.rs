//! Minimal hex encoding/decoding.
//!
//! Used for digest display, challenge serialization in human-readable
//! transcripts, and test vectors.

use core::fmt;

/// Error returned by [`decode`] for malformed hex input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseHexError {
    /// Input length was odd, or did not match the expected fixed width.
    BadLength,
    /// A character outside `[0-9a-fA-F]` was encountered at the given offset.
    BadChar {
        /// Byte offset of the offending character.
        index: usize,
    },
}

impl fmt::Display for ParseHexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseHexError::BadLength => write!(f, "hex string has invalid length"),
            ParseHexError::BadChar { index } => {
                write!(f, "invalid hex character at index {index}")
            }
        }
    }
}

impl std::error::Error for ParseHexError {}

const ALPHABET: &[u8; 16] = b"0123456789abcdef";

/// Encodes bytes as lowercase hex.
///
/// ```
/// assert_eq!(aipow_crypto::hex::encode(&[0xde, 0xad]), "dead");
/// assert_eq!(aipow_crypto::hex::encode(&[]), "");
/// ```
pub fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(ALPHABET[(b >> 4) as usize] as char);
        out.push(ALPHABET[(b & 0x0f) as usize] as char);
    }
    out
}

/// Decodes a hex string (case-insensitive) into bytes.
///
/// ```
/// assert_eq!(aipow_crypto::hex::decode("DEad").unwrap(), vec![0xde, 0xad]);
/// ```
///
/// # Errors
///
/// Returns [`ParseHexError::BadLength`] for odd-length input and
/// [`ParseHexError::BadChar`] for non-hex characters.
pub fn decode(s: &str) -> Result<Vec<u8>, ParseHexError> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err(ParseHexError::BadLength);
    }
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for (i, pair) in bytes.chunks_exact(2).enumerate() {
        let hi = val(pair[0]).ok_or(ParseHexError::BadChar { index: i * 2 })?;
        let lo = val(pair[1]).ok_or(ParseHexError::BadChar { index: i * 2 + 1 })?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

fn val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_known() {
        assert_eq!(encode(&[0x00, 0xff, 0x10]), "00ff10");
    }

    #[test]
    fn decode_known() {
        assert_eq!(decode("00ff10").unwrap(), vec![0x00, 0xff, 0x10]);
    }

    #[test]
    fn decode_mixed_case() {
        assert_eq!(decode("AbCdEf").unwrap(), vec![0xab, 0xcd, 0xef]);
    }

    #[test]
    fn decode_rejects_odd_length() {
        assert_eq!(decode("abc"), Err(ParseHexError::BadLength));
    }

    #[test]
    fn decode_rejects_bad_char_with_position() {
        assert_eq!(decode("ab!d"), Err(ParseHexError::BadChar { index: 2 }));
        assert_eq!(decode("zb"), Err(ParseHexError::BadChar { index: 0 }));
    }

    #[test]
    fn error_display_is_lowercase_prose() {
        let msg = ParseHexError::BadLength.to_string();
        assert!(msg.starts_with("hex"));
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
                prop_assert_eq!(decode(&encode(&bytes)).unwrap(), bytes);
            }

            #[test]
            fn encode_len_is_double(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
                prop_assert_eq!(encode(&bytes).len(), bytes.len() * 2);
            }
        }
    }
}
