//! Deterministic random byte generation via HMAC-DRBG.
//!
//! A simplified HMAC-DRBG in the style of NIST SP 800-90A: the issuer uses
//! it to mint unique, unpredictable puzzle seeds from a keyed state, and the
//! experiment harness uses it wherever a cryptographically-styled but fully
//! reproducible byte stream is needed.
//!
//! This implementation intentionally omits SP 800-90A's entropy-source
//! bookkeeping (reseed counters against prediction resistance); the
//! workspace uses it as a deterministic expander, not as an OS RNG.

use crate::hmac::HmacSha256;

/// HMAC-DRBG over SHA-256.
///
/// ```
/// use aipow_crypto::drbg::HmacDrbg;
/// let mut a = HmacDrbg::new(b"seed", b"context");
/// let mut b = HmacDrbg::new(b"seed", b"context");
/// assert_eq!(a.generate(16), b.generate(16)); // deterministic
/// ```
#[derive(Clone)]
pub struct HmacDrbg {
    key: [u8; 32],
    value: [u8; 32],
}

impl HmacDrbg {
    /// Instantiates the DRBG from seed material and a personalization string.
    pub fn new(seed: &[u8], personalization: &[u8]) -> Self {
        let mut drbg = HmacDrbg {
            key: [0u8; 32],
            value: [1u8; 32],
        };
        let mut material = Vec::with_capacity(seed.len() + personalization.len());
        material.extend_from_slice(seed);
        material.extend_from_slice(personalization);
        drbg.update(Some(&material));
        drbg
    }

    /// The SP 800-90A `HMAC_DRBG_Update` state transition.
    fn update(&mut self, provided: Option<&[u8]>) {
        let mut m = HmacSha256::new(&self.key);
        m.update(&self.value);
        m.update(&[0x00]);
        if let Some(data) = provided {
            m.update(data);
        }
        self.key = m.finalize().into_bytes();
        self.value = HmacSha256::mac(&self.key, &self.value).into_bytes();

        if let Some(data) = provided {
            let mut m = HmacSha256::new(&self.key);
            m.update(&self.value);
            m.update(&[0x01]);
            m.update(data);
            self.key = m.finalize().into_bytes();
            self.value = HmacSha256::mac(&self.key, &self.value).into_bytes();
        }
    }

    /// Mixes additional entropy or context into the state.
    pub fn reseed(&mut self, data: &[u8]) {
        self.update(Some(data));
    }

    /// Produces `len` pseudorandom bytes and advances the state.
    pub fn generate(&mut self, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            self.value = HmacSha256::mac(&self.key, &self.value).into_bytes();
            let take = (len - out.len()).min(32);
            out.extend_from_slice(&self.value[..take]);
        }
        self.update(None);
        out
    }

    /// Produces a fixed 16-byte seed, the size used by puzzle challenges.
    pub fn generate_seed16(&mut self) -> [u8; 16] {
        self.generate(16)
            .try_into()
            .expect("DRBG invariant: generate(16) returns exactly 16 bytes")
    }

    /// Produces `n` 16-byte seeds from a single generate request.
    ///
    /// One HMAC block yields two seeds and the post-request
    /// `HMAC_DRBG_Update` runs once for the whole batch instead of once
    /// per seed, so bulk issuance pays roughly a fifth of the per-seed
    /// hash work of `n` separate [`generate_seed16`](Self::generate_seed16)
    /// calls. The seeds are distinct draws of the stream (uniqueness is
    /// the same property as consecutive single draws); the *sequence*
    /// differs from `n` single calls because the state advances once, not
    /// `n` times — callers rely on unpredictability and uniqueness, never
    /// on the sequence itself.
    pub fn generate_seeds16(&mut self, n: usize) -> Vec<[u8; 16]> {
        let bytes = self.generate(16 * n);
        bytes
            .chunks_exact(16)
            .map(|chunk| {
                chunk
                    .try_into()
                    .expect("chunks_exact invariant: every chunk is 16 bytes")
            })
            .collect()
    }

    /// Produces a u64, useful for deriving per-stream RNG seeds.
    pub fn generate_u64(&mut self) -> u64 {
        let bytes = self.generate(8);
        u64::from_be_bytes(
            bytes
                .try_into()
                .expect("DRBG invariant: generate(8) returns exactly 8 bytes"),
        )
    }
}

impl core::fmt::Debug for HmacDrbg {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print key material.
        f.write_str("HmacDrbg{..}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_across_instances() {
        let mut a = HmacDrbg::new(b"seed material", b"aipow");
        let mut b = HmacDrbg::new(b"seed material", b"aipow");
        assert_eq!(a.generate(100), b.generate(100));
        assert_eq!(a.generate(7), b.generate(7));
    }

    #[test]
    fn personalization_separates_streams() {
        let mut a = HmacDrbg::new(b"seed", b"ctx-a");
        let mut b = HmacDrbg::new(b"seed", b"ctx-b");
        assert_ne!(a.generate(32), b.generate(32));
    }

    #[test]
    fn sequential_outputs_differ() {
        let mut d = HmacDrbg::new(b"seed", b"");
        let first = d.generate(32);
        let second = d.generate(32);
        assert_ne!(first, second);
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = HmacDrbg::new(b"seed", b"");
        let mut b = HmacDrbg::new(b"seed", b"");
        b.reseed(b"extra entropy");
        assert_ne!(a.generate(32), b.generate(32));
    }

    #[test]
    fn request_spanning_blocks() {
        let mut d = HmacDrbg::new(b"seed", b"");
        assert_eq!(d.generate(0).len(), 0);
        assert_eq!(d.generate(31).len(), 31);
        assert_eq!(d.generate(33).len(), 33);
        assert_eq!(d.generate(97).len(), 97);
    }

    #[test]
    fn seeds_are_unique_over_many_draws() {
        let mut d = HmacDrbg::new(b"uniqueness", b"seeds");
        let mut seen = HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(d.generate_seed16()), "seed collision");
        }
    }

    #[test]
    fn bulk_seeds_are_unique_within_and_across_batches() {
        let mut d = HmacDrbg::new(b"uniqueness", b"bulk");
        let mut seen = HashSet::new();
        for batch_len in [0usize, 1, 2, 3, 32, 128] {
            let seeds = d.generate_seeds16(batch_len);
            assert_eq!(seeds.len(), batch_len);
            for seed in seeds {
                assert!(seen.insert(seed), "seed collision in bulk draw");
            }
        }
        // Interleaving with single draws stays collision-free too.
        for _ in 0..100 {
            assert!(seen.insert(d.generate_seed16()));
        }
    }

    #[test]
    fn bulk_seeds_match_one_generate_request() {
        // A bulk draw is exactly one generate(16n) request, so its bytes
        // are reproducible by an identically-seeded instance.
        let mut a = HmacDrbg::new(b"seed", b"x");
        let mut b = HmacDrbg::new(b"seed", b"x");
        let seeds = a.generate_seeds16(3);
        let raw = b.generate(48);
        for (i, seed) in seeds.iter().enumerate() {
            assert_eq!(&raw[i * 16..(i + 1) * 16], seed);
        }
    }

    #[test]
    fn debug_hides_state() {
        let d = HmacDrbg::new(b"secret", b"");
        assert_eq!(format!("{d:?}"), "HmacDrbg{..}");
    }

    /// A crude sanity check that output bits are balanced — not a randomness
    /// proof, just a regression tripwire against e.g. returning zeros.
    #[test]
    fn output_bit_balance() {
        let mut d = HmacDrbg::new(b"balance", b"");
        let bytes = d.generate(4096);
        let ones: u32 = bytes.iter().map(|b| b.count_ones()).sum();
        let total = 4096 * 8;
        let ratio = ones as f64 / total as f64;
        assert!((0.47..0.53).contains(&ratio), "bit ratio {ratio}");
    }
}
