//! Self-contained cryptographic primitives for the `aipow` workspace.
//!
//! The AI-assisted PoW framework (Chakraborty et al., DSN 2022) rests on a
//! hash-puzzle substrate: clients repeatedly evaluate a cryptographic hash
//! until the output carries a required number of leading zero bits, and the
//! server authenticates the puzzles it issues so that verification can stay
//! stateless. This crate provides exactly that substrate, implemented from
//! scratch and validated against the official test vectors:
//!
//! - [`sha256`] — FIPS 180-4 SHA-256 and SHA-224 (streaming and one-shot),
//! - [`sha256_wide`] — lane-interleaved multi-buffer SHA-256 (4/8 independent
//!   blocks per round loop, written for autovectorization),
//! - [`hmac`] — RFC 2104 / FIPS 198-1 HMAC-SHA-256,
//! - [`hkdf`] — RFC 5869 HKDF-SHA-256 (extract / expand),
//! - [`drbg`] — an HMAC-DRBG (SP 800-90A style) deterministic byte generator,
//! - [`memmix`] — an Argon2-style memory-hard fill/mix arena (the work
//!   function behind the memory-hard puzzle backend),
//! - [`hex`] — hex encoding/decoding,
//! - [`ct`] — constant-time equality for MAC comparison.
//!
//! # Example
//!
//! ```
//! use aipow_crypto::sha256::Sha256;
//!
//! let digest = Sha256::digest(b"abc");
//! assert_eq!(
//!     digest.to_hex(),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
//! );
//! // The PoW solver cares about leading zero bits of the digest:
//! assert_eq!(Sha256::digest(&[0u8; 4]).leading_zero_bits() < 32, true);
//! ```
//!
//! # Security note
//!
//! These implementations favour clarity and portability over raw speed; they
//! are nonetheless fast enough that the workspace's PoW solver is hash-bound
//! in the tens of MH/s range on commodity hardware. They are intended for the
//! reproduction study in this repository, not as a general-purpose
//! cryptography library.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ct;
pub mod drbg;
pub mod hex;
pub mod hkdf;
pub mod hmac;
pub mod memmix;
pub mod sha256;
pub mod sha256_wide;

pub use drbg::HmacDrbg;
pub use hmac::{HmacKey, HmacSha256};
pub use sha256::{Digest, Sha224, Sha256};
pub use sha256_wide::{auto_lanes, WideHasher, MAX_LANES};
