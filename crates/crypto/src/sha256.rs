//! FIPS 180-4 SHA-256 and SHA-224.
//!
//! Both a streaming API ([`Sha256::new`] / [`update`](Sha256::update) /
//! [`finalize`](Sha256::finalize)) and a one-shot API ([`Sha256::digest`])
//! are provided. SHA-224 shares the compression function and differs only in
//! its initial state and truncated output.
//!
//! The [`Digest`] type wraps the 32-byte output and offers the helpers the
//! proof-of-work layer needs, most importantly
//! [`leading_zero_bits`](Digest::leading_zero_bits).

use core::fmt;

/// SHA-256 round constants: the first 32 bits of the fractional parts of the
/// cube roots of the first 64 primes (FIPS 180-4 §4.2.2). Shared with the
/// lane-interleaved kernel in [`crate::sha256_wide`].
pub(crate) const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

/// SHA-256 initial hash value (FIPS 180-4 §5.3.3).
pub(crate) const H256: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

/// SHA-224 initial hash value (FIPS 180-4 §5.3.2).
const H224: [u32; 8] = [
    0xc105_9ed8,
    0x367c_d507,
    0x3070_dd17,
    0xf70e_5939,
    0xffc0_0b31,
    0x6858_1511,
    0x64f9_8fa7,
    0xbefa_4fa4,
];

/// A 32-byte SHA-256 digest.
///
/// Provides the bit-level inspection helpers used by the proof-of-work
/// solver and verifier, plus hex formatting.
///
/// ```
/// use aipow_crypto::sha256::Sha256;
/// let d = Sha256::digest(b"hello");
/// assert_eq!(d.as_bytes().len(), 32);
/// assert_eq!(d.to_hex().len(), 64);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Returns the raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Consumes the digest, returning the raw byte array.
    pub fn into_bytes(self) -> [u8; 32] {
        self.0
    }

    /// Number of consecutive zero bits at the front (big-endian bit order)
    /// of the digest. This is the quantity a `d`-difficult puzzle constrains:
    /// a solution must hash to a digest with at least `d` leading zero bits.
    ///
    /// ```
    /// use aipow_crypto::sha256::Digest;
    /// let mut bytes = [0xffu8; 32];
    /// bytes[0] = 0b0000_0111; // five leading zero bits
    /// assert_eq!(Digest(bytes).leading_zero_bits(), 5);
    /// assert_eq!(Digest([0u8; 32]).leading_zero_bits(), 256);
    /// ```
    pub fn leading_zero_bits(&self) -> u32 {
        let mut bits = 0u32;
        for &byte in &self.0 {
            if byte == 0 {
                bits += 8;
            } else {
                bits += byte.leading_zeros();
                break;
            }
        }
        bits
    }

    /// Interprets the first eight bytes as a big-endian integer. Used by the
    /// fractional-difficulty ("target") extension of the puzzle module, where
    /// a solution must satisfy `prefix_u64 <= target`.
    pub fn prefix_u64(&self) -> u64 {
        u64::from_be_bytes(
            self.0[..8]
                .try_into()
                .expect("digest-length invariant: 32 >= 8"),
        )
    }

    /// Lowercase hex representation (64 characters).
    pub fn to_hex(&self) -> String {
        crate::hex::encode(&self.0)
    }

    /// Parses a digest from a 64-character hex string.
    ///
    /// # Errors
    ///
    /// Returns [`crate::hex::ParseHexError`] if the input is not exactly 64
    /// valid hex characters.
    pub fn from_hex(s: &str) -> Result<Self, crate::hex::ParseHexError> {
        let bytes = crate::hex::decode(s)?;
        let arr: [u8; 32] = bytes
            .try_into()
            .map_err(|_| crate::hex::ParseHexError::BadLength)?;
        Ok(Digest(arr))
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Digest {
    fn from(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }
}

/// Streaming SHA-256 hasher.
///
/// ```
/// use aipow_crypto::sha256::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), Sha256::digest(b"abc"));
/// ```
#[derive(Clone)]
pub struct Sha256 {
    pub(crate) state: [u32; 8],
    /// Partial input block awaiting compression.
    pub(crate) buf: [u8; 64],
    pub(crate) buf_len: usize,
    /// Total message length in bytes (message limit 2^61 bytes, far beyond
    /// anything this workspace hashes).
    pub(crate) total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H256,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// One-shot convenience: hash `data` and return the digest.
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;

        // Fill a partial block first, if any.
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                compress(&mut self.state, &block);
                self.buf_len = 0;
            }
        }

        // Whole blocks straight from the input.
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            compress(
                &mut self.state,
                block
                    .try_into()
                    .expect("split_at invariant: the block is exactly 64 bytes"),
            );
            rest = tail;
        }

        // Stash the tail.
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Completes the hash, consuming the hasher.
    pub fn finalize(mut self) -> Digest {
        self.pad();
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    /// Appends the FIPS 180-4 padding (0x80, zeros, 64-bit bit length).
    fn pad(&mut self) {
        let bit_len = self.total_len.wrapping_mul(8);
        // 0x80 terminator.
        let mut pad: Vec<u8> = Vec::with_capacity(72);
        pad.push(0x80);
        // Zeros until the block is 56 bytes mod 64.
        let after = (self.buf_len + 1) % 64;
        let zeros = if after <= 56 { 56 - after } else { 120 - after };
        pad.extend(std::iter::repeat_n(0u8, zeros));
        pad.extend_from_slice(&bit_len.to_be_bytes());
        // Feed padding through the normal path without recounting length.
        let save_len = self.total_len;
        self.update(&pad);
        self.total_len = save_len;
        debug_assert_eq!(self.buf_len, 0, "padding must end on a block boundary");
    }
}

/// Streaming SHA-224 hasher (FIPS 180-4): same compression as SHA-256 with a
/// distinct IV and output truncated to 28 bytes.
///
/// ```
/// use aipow_crypto::sha256::Sha224;
/// let d = Sha224::digest(b"abc");
/// assert_eq!(
///     aipow_crypto::hex::encode(&d),
///     "23097d223405d8228642a477bda255b32aadbce4bda0b3f7e36c9da7"
/// );
/// ```
#[derive(Clone)]
pub struct Sha224 {
    inner: Sha256,
}

impl Default for Sha224 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha224 {
    /// Creates a fresh SHA-224 hasher.
    pub fn new() -> Self {
        let mut inner = Sha256::new();
        inner.state = H224;
        Sha224 { inner }
    }

    /// One-shot convenience: hash `data` and return the 28-byte digest.
    pub fn digest(data: &[u8]) -> [u8; 28] {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Completes the hash, consuming the hasher.
    pub fn finalize(self) -> [u8; 28] {
        let full = self.inner.finalize();
        full.0[..28]
            .try_into()
            .expect("digest-length invariant: 28 <= 32")
    }
}

/// The SHA-256 compression function over one 64-byte block.
fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    // Message schedule.
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(
            chunk
                .try_into()
                .expect("chunks_exact invariant: every chunk is 4 bytes"),
        );
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;

    for i in 0..64 {
        let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ ((!e) & g);
        let t1 = h
            .wrapping_add(big_s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = big_s0.wrapping_add(maj);

        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS 180-4 / NIST CAVS known-answer vectors.
    #[test]
    fn sha256_nist_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (
                b"",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                b"abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
            (
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(&Sha256::digest(input).to_hex(), expected);
        }
    }

    #[test]
    fn sha256_million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn sha224_nist_vectors() {
        assert_eq!(
            crate::hex::encode(&Sha224::digest(b"abc")),
            "23097d223405d8228642a477bda255b32aadbce4bda0b3f7e36c9da7"
        );
        assert_eq!(
            crate::hex::encode(&Sha224::digest(b"")),
            "d14a028c2a3a2bc9476102bb288234c415a2b01f828ea62ac5b3e42f"
        );
        assert_eq!(
            crate::hex::encode(&Sha224::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "75388b16512776cc5dba5da1fd890150b0c6455cb4f58b1952522525"
        );
    }

    /// Streaming must agree with one-shot regardless of chunk boundaries.
    #[test]
    fn streaming_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0u8..=255).cycle().take(300).collect();
        let reference = Sha256::digest(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), reference, "split at {split}");
        }
    }

    #[test]
    fn leading_zero_bits_counts_bitwise() {
        let mut b = [0u8; 32];
        b[0] = 0x01;
        assert_eq!(Digest(b).leading_zero_bits(), 7);
        b[0] = 0x80;
        assert_eq!(Digest(b).leading_zero_bits(), 0);
        b[0] = 0x00;
        b[1] = 0x10;
        assert_eq!(Digest(b).leading_zero_bits(), 11);
    }

    #[test]
    fn digest_hex_roundtrip() {
        let d = Sha256::digest(b"roundtrip");
        let parsed = Digest::from_hex(&d.to_hex()).expect("valid hex");
        assert_eq!(parsed, d);
    }

    #[test]
    fn digest_from_hex_rejects_bad_input() {
        assert!(Digest::from_hex("abcd").is_err());
        assert!(Digest::from_hex(&"g".repeat(64)).is_err());
    }

    #[test]
    fn prefix_u64_is_big_endian() {
        let mut b = [0u8; 32];
        b[7] = 1;
        assert_eq!(Digest(b).prefix_u64(), 1);
        b[0] = 0x80;
        assert!(Digest(b).prefix_u64() > u64::MAX / 2);
    }

    #[test]
    fn debug_and_display_are_nonempty() {
        let d = Sha256::digest(b"x");
        assert!(!format!("{d:?}").is_empty());
        assert!(!format!("{d}").is_empty());
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Chunked hashing equals one-shot hashing for arbitrary inputs
            /// and split points.
            #[test]
            fn chunked_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                      splits in proptest::collection::vec(0usize..2048, 0..4)) {
                let reference = Sha256::digest(&data);
                let mut points: Vec<usize> =
                    splits.iter().map(|s| s % (data.len() + 1)).collect();
                points.sort_unstable();
                let mut h = Sha256::new();
                let mut prev = 0usize;
                for p in points {
                    h.update(&data[prev..p]);
                    prev = p;
                }
                h.update(&data[prev..]);
                prop_assert_eq!(h.finalize(), reference);
            }

            /// Distinct short inputs virtually never collide; more usefully,
            /// hashing is deterministic.
            #[test]
            fn deterministic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
                prop_assert_eq!(Sha256::digest(&data), Sha256::digest(&data));
            }

            /// leading_zero_bits is consistent with a bit-by-bit scan.
            #[test]
            fn lzb_matches_naive(data in proptest::collection::vec(any::<u8>(), 0..64)) {
                let d = Sha256::digest(&data);
                let naive = d.0.iter()
                    .flat_map(|byte| (0..8).rev().map(move |i| (byte >> i) & 1))
                    .take_while(|&bit| bit == 0)
                    .count() as u32;
                prop_assert_eq!(d.leading_zero_bits(), naive);
            }
        }
    }
}
